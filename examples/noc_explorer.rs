//! Standalone fNoC exploration: drive the flit-level network with
//! synthetic traffic and compare topologies, patterns and loads —
//! without the rest of the SSD.
//!
//! ```sh
//! cargo run --release --example noc_explorer
//! ```

use dssd::kernel::{Rng, SimSpan};
use dssd::noc::traffic::{schedule, Pattern};
use dssd::noc::{drive, Network, NocConfig, TopologyKind};

fn run(kind: TopologyKind, pattern: Pattern, load_mbps: u64) -> (f64, f64, f64) {
    let config = NocConfig::new(kind, 8).with_bisection_bandwidth(2_000_000_000);
    let mut rng = Rng::new(7);
    let packets = schedule(
        8,
        pattern,
        load_mbps * 1_000_000,
        4096,
        SimSpan::from_ms(2),
        &mut rng,
    );
    let offered = packets.len();
    let mut net = Network::new(config);
    let delivered = drive(&mut net, packets);
    assert_eq!(delivered.len(), offered, "network must not drop packets");
    let end = delivered.iter().map(|d| d.at).max().unwrap();
    let bytes: u64 = delivered.iter().map(|d| d.packet.bytes).sum();
    (
        bytes as f64 / end.as_secs_f64() / 1e9,
        net.stats().mean_latency().as_us_f64(),
        net.stats().mean_hops(),
    )
}

fn main() {
    println!("8-terminal fNoC, 4 KB page packets, 2 GB/s bisection\n");
    for pattern in [Pattern::UniformRandom, Pattern::Tornado, Pattern::Hotspot] {
        println!("--- {pattern:?} traffic ---");
        println!(
            "{:<9} {:>12} {:>12} {:>10}",
            "topology", "thpt GB/s", "latency us", "hops"
        );
        for kind in [
            TopologyKind::Mesh1D,
            TopologyKind::Ring,
            TopologyKind::Mesh2D { cols: 4 },
            TopologyKind::Crossbar,
        ] {
            // Offered load: 150 MB/s per node (1.2 GB/s aggregate).
            let (thpt, lat, hops) = run(kind, pattern, 150);
            println!("{:<9} {thpt:>12.2} {lat:>12.1} {hops:>10.2}", format!("{kind:?}"));
        }
        println!();
    }
    println!("the ring pays for its thin channels in serialization latency;");
    println!("the mesh matches the crossbar once bisection bandwidth suffices.");
}
