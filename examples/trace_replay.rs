//! Replay an MSR-Cambridge-style enterprise trace on all five Table 2
//! architectures and compare mean and tail latency.
//!
//! ```sh
//! cargo run --release --example trace_replay           # prn_0
//! cargo run --release --example trace_replay usr_2     # another volume
//! ```

use dssd::kernel::SimSpan;
use dssd::ssd::{Architecture, SsdConfig, SsdSim};
use dssd::workload::msr;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "prn_0".to_string());
    let Some(profile) = msr::profile(&name) else {
        eprintln!("unknown volume `{name}`; available:");
        for p in msr::PROFILES {
            eprintln!("  {} (read ratio {:.2})", p.name, p.read_ratio);
        }
        std::process::exit(1);
    };
    println!(
        "volume {} — read ratio {:.2}, ~{:.0} IOPS, replayed at 10x\n",
        profile.name, profile.read_ratio, profile.iops
    );

    let duration = SimSpan::from_ms(40);
    let speedup = 10.0;
    println!(
        "{:<9} {:>10} {:>10} {:>10} {:>9}",
        "config", "mean", "p99", "p99.9", "requests"
    );
    for arch in Architecture::all() {
        let mut config = SsdConfig::test_tiny(arch);
        config.gc_continuous = true;
        let page_bytes = config.geometry.page_bytes;
        let mut sim = SsdSim::new(config);
        sim.prefill();
        let trace = profile
            .synthesize(
                SimSpan::from_ns((duration.as_ns() as f64 * speedup) as u64),
                42,
            )
            .accelerate(speedup);
        let requests = trace.to_requests(page_bytes, sim.ftl().lpn_count());
        sim.run_trace(requests, duration);
        let p99 = sim.report_mut().latency_percentile(0.99);
        let p999 = sim.report_mut().latency_percentile(0.999);
        let report = sim.report();
        println!(
            "{:<9} {:>10} {:>10} {:>10} {:>9}",
            arch.label(),
            format!("{}", report.mean_latency()),
            format!("{p99}"),
            format!("{p999}"),
            report.requests_completed,
        );
    }
}
