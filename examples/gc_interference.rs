//! GC interference, side by side: the same saturating write workload on
//! a conventional SSD and on a decoupled SSD with an fNoC, with a
//! millisecond-resolution I/O bandwidth timeline (the paper's Fig 2
//! experiment, extended to both architectures).
//!
//! ```sh
//! cargo run --release --example gc_interference
//! ```

use dssd::kernel::SimSpan;
use dssd::ssd::{Architecture, SsdConfig, SsdSim};
use dssd::workload::{AccessPattern, SyntheticWorkload};

fn timeline(arch: Architecture) -> (Vec<f64>, f64, f64) {
    let mut config = SsdConfig::test_tiny(arch);
    // Leave headroom so the run starts with a clean, GC-free phase.
    config.prefill_target_free = 12;
    let mut sim = SsdSim::new(config);
    sim.prefill();
    let workload = SyntheticWorkload::writes(AccessPattern::Random, 8);
    let report = sim.run_closed_loop(workload, SimSpan::from_ms(40));
    let series: Vec<f64> = report.io_bw.series().iter().map(|&(_, b)| b / 1e9).collect();
    (
        series,
        report.io_bandwidth_gbps(),
        report.gc_bandwidth_gbps(),
    )
}

fn spark(v: f64, max: f64) -> &'static str {
    const BARS: [&str; 8] = ["▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"];
    let i = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
    BARS[i]
}

fn main() {
    println!("32 KB random writes, QD 64, GC triggered mid-run\n");
    let mut means = Vec::new();
    for arch in [Architecture::Baseline, Architecture::DssdFnoc] {
        let (series, io, gc) = timeline(arch);
        let max = series.iter().cloned().fold(0.1, f64::max);
        let bars: String = series.iter().map(|&v| spark(v, max)).collect();
        println!("{:<9} |{bars}| mean {io:.2} GB/s (gc {gc:.2} GB/s)", arch.label());
        means.push(io);
    }
    println!("\n(one cell per simulated millisecond; taller = more I/O bandwidth)");
    println!(
        "decoupling recovers {:.0}% of the I/O bandwidth lost to GC interference",
        (means[1] / means[0] - 1.0) * 100.0
    );
}
