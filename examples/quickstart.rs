//! Quickstart: build one decoupled SSD, run a saturating write workload
//! while garbage collection is active, and print the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dssd::kernel::SimSpan;
use dssd::ssd::{Architecture, SsdConfig, SsdSim, StageKind};
use dssd::workload::{AccessPattern, SyntheticWorkload};

fn main() {
    // The paper's Table 1 ULL organization (8 channels x 8 ways x 8
    // planes), capacity-scaled so the run finishes in seconds.
    let mut config = SsdConfig::test_tiny(Architecture::DssdFnoc);
    config.gc_continuous = true; // measure *while GC is performed*

    let mut sim = SsdSim::new(config);
    sim.prefill(); // fill + fragment the drive (Sec 6.1 preconditioning)

    // 32 KB random writes, queue depth 64 — the "high bandwidth" scenario.
    let workload = SyntheticWorkload::writes(AccessPattern::Random, 8);
    sim.run_closed_loop(workload, SimSpan::from_ms(30));

    let p99 = sim.report_mut().latency_percentile(0.99);
    let report = sim.report();
    println!("architecture : {}", sim.config().architecture.label());
    println!("host I/O     : {:.2} GB/s", report.io_bandwidth_gbps());
    println!("GC copyback  : {:.2} GB/s", report.gc_bandwidth_gbps());
    println!("requests     : {}", report.requests_completed);
    println!("GC rounds    : {}", report.gc_rounds);
    println!("mean latency : {}", report.mean_latency());
    println!("p99 latency  : {p99}");
    println!();
    println!("copyback latency breakdown (mean us per stage):");
    for stage in StageKind::all() {
        let us = report.copyback_breakdown.mean_us(stage);
        if us > 0.01 {
            println!("  {:<11}: {us:>8.1}", stage.label());
        }
    }
    println!();
    println!(
        "note how the copyback path never touches the system bus: \
         that is the decoupling."
    );
}
