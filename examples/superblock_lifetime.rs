//! Superblock lifetime under the four management policies of Sec 6.4:
//! static superblocks, dSSD recycled blocks, reservation-based recycling,
//! and WAS-style software regrouping.
//!
//! ```sh
//! cargo run --release --example superblock_lifetime
//! ```

use dssd::reliability::{EnduranceConfig, EnduranceSim, SuperblockPolicy};

fn main() {
    let config = EnduranceConfig::paper_tlc();
    println!(
        "8 channels x 16 sub-blocks, {} superblocks, P/E ~ N({}, {}^2)\n",
        config.superblocks, config.pe_mean, config.pe_sigma
    );
    println!(
        "{:<9} {:>14} {:>14} {:>14} {:>8}",
        "policy", "first bad", "at 5% bad", "total written", "remaps"
    );
    let mut baseline_at5 = None;
    for policy in SuperblockPolicy::all() {
        let report = EnduranceSim::new(config).run(policy);
        let tb = |b: u64| format!("{:.2} TB", b as f64 / 1e12);
        let at5 = report
            .written_at_bad_fraction(0.05)
            .unwrap_or(report.total_written);
        if policy == SuperblockPolicy::Baseline {
            baseline_at5 = Some(at5 as f64);
        }
        let gain = baseline_at5
            .map(|b| format!(" ({:+.0}%)", (at5 as f64 / b - 1.0) * 100.0))
            .unwrap_or_default();
        println!(
            "{:<9} {:>14} {:>14}{gain} {:>14} {:>8}",
            policy.label(),
            report
                .first_bad_bytes()
                .map(tb)
                .unwrap_or_else(|| "-".into()),
            tb(at5),
            tb(report.total_written),
            report.remap_events,
        );
    }
    println!();
    println!("RECYCLED sacrifices the first superblock to seed the recycle bins;");
    println!("RESERV provisions 7% of blocks up front and delays it instead.");
}
