//! Prints a determinism fingerprint of the simulator for every
//! architecture: a compact tuple of order-sensitive run measurements.
//! Used to assert that performance refactors stay bit-identical.

use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, FaultConfig, SsdConfig, SsdSim};
use dssd_workload::{AccessPattern, SyntheticWorkload};

fn fingerprint(mut sim: SsdSim, reads: bool, ms: u64) -> String {
    sim.prefill();
    let wl = if reads {
        SyntheticWorkload::reads(AccessPattern::Random, 4)
    } else {
        SyntheticWorkload::writes(AccessPattern::Random, 8)
    };
    sim.run_closed_loop(wl, SimSpan::from_ms(ms));
    let p99 = sim.report_mut().latency_percentile(0.99).as_ns();
    let r = sim.report();
    format!(
        "req={} gc_pages={} gc_rounds={} io_bytes={} gc_bytes={} mean_ns={} p99_ns={} first_gc={:?} remaps={} bad_sb={}",
        r.requests_completed,
        r.gc_pages_copied,
        r.gc_rounds,
        r.io_bw.total_bytes(),
        r.gc_bw.total_bytes(),
        r.mean_latency().as_ns(),
        p99,
        r.first_gc_at.map(|t| t.as_ns()),
        r.dynamic_remaps,
        r.bad_superblocks,
    )
}

fn main() {
    for arch in Architecture::all() {
        let mut cfg = SsdConfig::test_tiny(arch);
        cfg.gc_continuous = true;
        println!("{}/writes: {}", arch.label(), fingerprint(SsdSim::new(cfg), false, 10));
    }
    for arch in Architecture::all() {
        let cfg = SsdConfig::test_tiny(arch);
        println!("{}/reads: {}", arch.label(), fingerprint(SsdSim::new(cfg), true, 5));
    }
    // Fault-injection paths exercised (retries, remaps, retirement).
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.1;
    f.read_hard_prob = 0.001;
    f.program_fail_prob = 0.005;
    f.erase_fail_prob = 0.02;
    f.noc_degrade_prob = 0.02;
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.gc_continuous = true;
    cfg.faults = f;
    println!("dssd_f/faults: {}", fingerprint(SsdSim::new(cfg), false, 10));
    // SRT remap path.
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.srt_active_remaps = 256;
    println!("dssd_f/remap: {}", fingerprint(SsdSim::new(cfg), false, 10));
}
