//! Profiling driver: one fig08-style sweep point, run repeatedly.
//! `cargo run --release --example prof_fig08 [iters]`

use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, SsdConfig, SsdSim};
use dssd_workload::{AccessPattern, SyntheticWorkload};

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    for _ in 0..iters {
        let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc).with_onchip_factor(2.0);
        cfg.gc_continuous = true;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::mixed(AccessPattern::Random, 8, 0.0);
        sim.run_closed_loop(wl, SimSpan::from_ms(3));
        println!("events {}", sim.report().events_delivered);
    }
}
