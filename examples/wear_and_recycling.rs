//! Watch an SSD wear out — twice. The same accelerated-aging wear
//! distribution is applied to a conventional SSD (whole superblocks
//! retire on the first uncorrectable error) and to a decoupled SSD whose
//! controllers recycle the still-good sub-blocks through their SRT/RBT
//! hardware (Sec 5), entirely invisibly to the FTL.
//!
//! ```sh
//! cargo run --release --example wear_and_recycling
//! ```

use dssd::kernel::SimSpan;
use dssd::ssd::{Architecture, DynamicSbConfig, SsdConfig, SsdSim};
use dssd::workload::{AccessPattern, SyntheticWorkload};

fn main() {
    println!("accelerated aging: P/E limits ~ N(5, 2.5^2), 5 cycles per erase\n");
    println!(
        "{:<9} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "config", "bad SBs", "remaps", "end of life", "host data", "GC copied"
    );
    let mut written = Vec::new();
    for arch in [Architecture::Baseline, Architecture::DssdFnoc] {
        let mut config = SsdConfig::test_tiny(arch);
        config.gc_continuous = true;
        config.dynamic_sb = Some(DynamicSbConfig {
            pe_mean: 5.0,
            pe_sigma: 2.5,
            wear_acceleration: 5,
            ..DynamicSbConfig::default()
        });
        let mut sim = SsdSim::new(config);
        sim.prefill();
        let workload = SyntheticWorkload::writes(AccessPattern::Random, 8);
        let report = sim.run_closed_loop(workload, SimSpan::from_ms(250));
        println!(
            "{:<9} {:>8} {:>8} {:>12} {:>12} {:>12}",
            arch.label(),
            report.bad_superblocks,
            report.dynamic_remaps,
            report
                .end_of_life
                .map(|t| format!("{:.0} ms", t.as_ms_f64()))
                .unwrap_or_else(|| "survived".into()),
            format!("{:.0} MB", report.io_bw.total_bytes() as f64 / 1e6),
            format!("{:.0} MB", report.gc_bw.total_bytes() as f64 / 1e6),
        );
        written.push(report.io_bw.total_bytes() as f64);
    }
    println!();
    println!(
        "lifetime data written: {:+.0}% for the decoupled SSD — the paper's",
        (written[1] / written[0] - 1.0) * 100.0
    );
    println!("dynamic-superblock claim, reproduced live in the event simulator.");
}
