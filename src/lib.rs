//! # dSSD — a reproduction of *Decoupled SSD* (ISCA '23)
//!
//! This crate is the façade of a from-scratch Rust reproduction of
//! *"Decoupled SSD: Rethinking SSD Architecture through Network-based
//! Flash Controllers"* (Kim, Jung & Kim, ISCA 2023): an event-driven SSD
//! simulator in which the flash controllers are interconnected by a
//! flit-level network-on-chip (the **fNoC**) so garbage-collection data
//! movement (**global copyback**) never touches the shared system bus or
//! DRAM, plus the paper's **dynamic superblock** reliability mechanism
//! (recycle block table + superblock remapping table).
//!
//! The subsystem crates are re-exported here under short module names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`kernel`] | `dssd-kernel` | event queue, sim time, RNG, stats, bandwidth servers |
//! | [`flash`] | `dssd-flash` | NAND geometry/timing/state, wear model |
//! | [`noc`] | `dssd-noc` | flit-level wormhole NoC (mesh/ring/crossbar) |
//! | [`ctrl`] | `dssd-ctrl` | decoupled-controller parts: queues, dBUF, ECC, SRT/RBT |
//! | [`ftl`] | `dssd-ftl` | mapping, superblocks, allocator, GC policies |
//! | [`ssd`] | `dssd-ssd` | the five Table 2 architectures, end to end |
//! | [`workload`] | `dssd-workload` | synthetic + MSR-style trace workloads |
//! | [`reliability`] | `dssd-reliability` | superblock endurance simulation |
//!
//! # Quickstart
//!
//! ```no_run
//! use dssd::ssd::{Architecture, SsdConfig, SsdSim};
//! use dssd::workload::{AccessPattern, SyntheticWorkload};
//! use dssd::kernel::SimSpan;
//!
//! // A decoupled SSD with an 8-node fNoC, pre-conditioned so GC is live.
//! let mut sim = SsdSim::new(SsdConfig::scaled_ull(Architecture::DssdFnoc));
//! sim.prefill();
//!
//! // 32 KB random writes at queue depth 64, for 50 simulated ms.
//! let workload = SyntheticWorkload::writes(AccessPattern::Random, 8);
//! let report = sim.run_closed_loop(workload, SimSpan::from_ms(50));
//!
//! println!("I/O: {:.2} GB/s, GC: {:.2} GB/s, p99: {}",
//!          report.io_bandwidth_gbps(),
//!          report.gc_bandwidth_gbps(),
//!          report.io_latency.mean());
//! ```
//!
//! See the repository's `examples/` for runnable scenarios and
//! `crates/bench` for the binaries that regenerate every figure of the
//! paper's evaluation.

#![warn(missing_docs)]

pub use dssd_ctrl as ctrl;
pub use dssd_flash as flash;
pub use dssd_ftl as ftl;
pub use dssd_kernel as kernel;
pub use dssd_noc as noc;
pub use dssd_reliability as reliability;
pub use dssd_ssd as ssd;
pub use dssd_workload as workload;
