//! End-to-end integration tests across the five Table 2 architectures.

use dssd::kernel::SimSpan;
use dssd::ssd::{Architecture, SsdConfig, SsdSim, StageKind};
use dssd::workload::{AccessPattern, SyntheticWorkload};

fn gc_run(arch: Architecture, ms: u64) -> SsdSim {
    let mut config = SsdConfig::test_tiny(arch);
    config.gc_continuous = true;
    let mut sim = SsdSim::new(config);
    sim.prefill();
    let workload = SyntheticWorkload::writes(AccessPattern::Random, 8);
    sim.run_closed_loop(workload, SimSpan::from_ms(ms));
    sim
}

#[test]
fn every_architecture_completes_io_and_gc() {
    for arch in Architecture::all() {
        let sim = gc_run(arch, 10);
        let r = sim.report();
        assert!(
            r.requests_completed > 500,
            "{}: {} requests",
            arch.label(),
            r.requests_completed
        );
        assert!(r.gc_pages_copied > 0, "{}: GC never copied", arch.label());
        assert!(r.io_bandwidth_gbps() > 0.5, "{}: io too low", arch.label());
    }
}

#[test]
fn copyback_datapath_matches_architecture() {
    // The defining property of each architecture is *where* copyback
    // data moves. Verify via the per-stage breakdown and bus accounting.
    let base = gc_run(Architecture::Baseline, 10);
    let b = &base.report().copyback_breakdown;
    assert!(b.mean_us(StageKind::SystemBus) > 0.0, "baseline uses the bus");
    assert!(b.mean_us(StageKind::Dram) > 0.0, "baseline stages in DRAM");
    assert_eq!(b.mean_us(StageKind::Noc), 0.0);

    let dssd = gc_run(Architecture::Dssd, 10);
    let b = &dssd.report().copyback_breakdown;
    assert!(b.mean_us(StageKind::SystemBus) > 0.0, "dSSD crosses the bus once");
    assert_eq!(b.mean_us(StageKind::Dram), 0.0, "dSSD skips DRAM");

    let dssd_b = gc_run(Architecture::DssdBus, 10);
    let b = &dssd_b.report().copyback_breakdown;
    assert_eq!(b.mean_us(StageKind::SystemBus), 0.0, "dSSD_b has its own bus");
    assert!(b.mean_us(StageKind::Noc) > 0.0, "dedicated-bus transit recorded");

    let fnoc = gc_run(Architecture::DssdFnoc, 10);
    let b = &fnoc.report().copyback_breakdown;
    assert_eq!(b.mean_us(StageKind::SystemBus), 0.0, "dSSD_f never uses the bus");
    assert_eq!(b.mean_us(StageKind::Dram), 0.0);
    assert!(b.mean_us(StageKind::Noc) > 0.0, "fNoC transit recorded");
    assert!(fnoc.report().sysbus_gc_utilization() == 0.0);
}

#[test]
fn decoupling_beats_bandwidth_on_both_metrics() {
    let base = gc_run(Architecture::Baseline, 20);
    let bw = gc_run(Architecture::ExtraBandwidth, 20);
    let fnoc = gc_run(Architecture::DssdFnoc, 20);
    let io = |s: &SsdSim| s.report().io_bandwidth_gbps();
    let gc = |s: &SsdSim| s.report().gc_bandwidth_gbps();
    assert!(io(&bw) > io(&base), "extra bandwidth helps I/O");
    assert!(
        io(&fnoc) > io(&bw),
        "decoupling beats raw bandwidth on I/O: {} vs {}",
        io(&fnoc),
        io(&bw)
    );
    assert!(
        gc(&fnoc) > gc(&base),
        "decoupling beats baseline GC: {} vs {}",
        gc(&fnoc),
        gc(&base)
    );
}

#[test]
fn dram_hit_isolation_is_architectural() {
    // With 100% DRAM-cached I/O, only the decoupled-interconnect
    // variants fully isolate the host from GC.
    let run = |arch| {
        let mut config = SsdConfig::test_tiny(arch);
        config.gc_continuous = true;
        let mut sim = SsdSim::new(config);
        sim.prefill();
        let workload =
            SyntheticWorkload::writes(AccessPattern::Random, 8).with_dram_hit_fraction(1.0);
        sim.run_closed_loop(workload, SimSpan::from_ms(10));
        sim.report().io_bandwidth_gbps()
    };
    let bw = run(Architecture::ExtraBandwidth);
    let fnoc = run(Architecture::DssdFnoc);
    assert!(
        fnoc > bw * 1.3,
        "isolated DRAM-hit I/O must far exceed shared-bus: {fnoc} vs {bw}"
    );
    assert!(fnoc > 7.0, "dSSD_f must approach the 8 GB/s bus: {fnoc}");
}

#[test]
fn runs_are_deterministic_across_full_stack() {
    let a = gc_run(Architecture::DssdFnoc, 8);
    let b = gc_run(Architecture::DssdFnoc, 8);
    assert_eq!(a.report().requests_completed, b.report().requests_completed);
    assert_eq!(a.report().gc_pages_copied, b.report().gc_pages_copied);
    assert_eq!(a.report().io_bw.total_bytes(), b.report().io_bw.total_bytes());
    assert_eq!(a.ftl().stats(), b.ftl().stats());
}

#[test]
fn seeds_change_outcomes() {
    let mut c1 = SsdConfig::test_tiny(Architecture::DssdFnoc);
    c1.gc_continuous = true;
    let mut c2 = c1.clone().with_seed(999);
    c2.gc_continuous = true;
    let run = |config| {
        let mut sim = SsdSim::new(config);
        sim.prefill();
        let w = SyntheticWorkload::writes(AccessPattern::Random, 8);
        sim.run_closed_loop(w, SimSpan::from_ms(5));
        sim.report().io_bw.total_bytes()
    };
    assert_ne!(run(c1), run(c2));
}

#[test]
fn no_data_is_lost_through_sustained_gc() {
    let sim = gc_run(Architecture::DssdFnoc, 20);
    let ftl = sim.ftl();
    assert!(ftl.stats().gc_rounds > 0, "GC must have cycled");
    // Every mapped logical page still resolves to a valid physical page.
    let mut mapped = 0u64;
    for lpn in 0..ftl.lpn_count() {
        if let Some(addr) = ftl.translate(lpn) {
            let geo = ftl.layout().geometry();
            let ppn = geo.page_index(addr);
            assert_eq!(
                ftl.mapping().lpn_of(ppn),
                Some(lpn),
                "LPN {lpn} mapping corrupted by GC"
            );
            mapped += 1;
        }
    }
    assert!(mapped > ftl.lpn_count() / 3, "most of the space stays mapped");
}
