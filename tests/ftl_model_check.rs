// Gated: requires the `proptest` dev-dependency, which is not
// vendored for offline builds. Enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property-based model checking of the FTL against a reference map.
//!
//! A plain `HashMap<Lpn, u64>` (LPN → write version) acts as the model;
//! the FTL runs the same operation sequence with GC interleaved. After
//! every sequence the two must agree on which pages exist, and the FTL's
//! internal structures must be consistent.

use std::collections::HashMap;

use dssd::flash::FlashGeometry;
use dssd::ftl::{Ftl, FtlConfig, GcPolicy};
use dssd::kernel::Rng;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Gc,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..200).prop_map(Op::Write),
        1 => (0u64..200).prop_map(Op::Trim),
        1 => Just(Op::Gc),
    ]
}

fn small_ftl() -> Ftl {
    let config = FtlConfig {
        overprovision: 0.3,
        gc_threshold_free: 3,
        gc_hard_free: 1,
        policy: GcPolicy::Parallel,
    };
    Ftl::new(FlashGeometry::tiny(), config)
}

/// Runs one full, synchronous GC round.
fn run_gc(ftl: &mut Ftl) {
    let Some(round) = ftl.start_gc_round() else { return };
    for group in &round.groups {
        let mut pages = group.pages.clone();
        while !pages.is_empty() {
            let dst = ftl.alloc_gc_group(pages.len() as u32);
            let take = dst.len().min(pages.len());
            for ((lpn, src), d) in pages.drain(..take).zip(dst.addrs.iter()) {
                ftl.complete_copy(lpn, src, *d);
            }
        }
    }
    ftl.finish_gc_round(&round);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ftl_agrees_with_reference_model(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let mut ftl = small_ftl();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut version = 0u64;
        let lpns = ftl.lpn_count();

        for op in ops {
            match op {
                Op::Write(raw) => {
                    let lpn = raw % lpns;
                    if ftl.write_pages(&[lpn]).is_none() {
                        // Out of space: reclaim synchronously and retry.
                        run_gc(&mut ftl);
                        prop_assert!(
                            ftl.write_pages(&[lpn]).is_some(),
                            "write still blocked after GC"
                        );
                    }
                    version += 1;
                    model.insert(lpn, version);
                }
                Op::Trim(raw) => {
                    let lpn = raw % lpns;
                    let ftl_had = ftl.trim(lpn).is_some();
                    let model_had = model.remove(&lpn).is_some();
                    prop_assert_eq!(ftl_had, model_had, "trim disagreement on {}", lpn);
                }
                Op::Gc => run_gc(&mut ftl),
            }
        }

        // Agreement: exactly the model's pages are mapped.
        for lpn in 0..lpns {
            prop_assert_eq!(
                ftl.translate(lpn).is_some(),
                model.contains_key(&lpn),
                "existence disagreement on LPN {}",
                lpn
            );
        }

        // Internal consistency: forward and reverse map are a bijection.
        let geo = *ftl.layout().geometry();
        for lpn in 0..lpns {
            if let Some(addr) = ftl.translate(lpn) {
                prop_assert_eq!(ftl.mapping().lpn_of(geo.page_index(addr)), Some(lpn));
            }
        }
    }

    #[test]
    fn gc_preserves_every_mapping_under_pressure(seed in 0u64..500) {
        let mut ftl = small_ftl();
        let mut rng = Rng::new(seed);
        ftl.prefill_with(&mut rng, 1, 0.4);
        let before: Vec<bool> =
            (0..ftl.lpn_count()).map(|l| ftl.translate(l).is_some()).collect();
        for _ in 0..4 {
            run_gc(&mut ftl);
        }
        for (lpn, had) in before.iter().enumerate() {
            prop_assert_eq!(
                ftl.translate(lpn as u64).is_some(),
                *had,
                "GC changed existence of LPN {}",
                lpn
            );
        }
    }
}
