//! A step-by-step re-enactment of the paper's Fig 6 walk-through
//! (Sec 5.2) using the hardware-table types the decoupled controller
//! carries: the first bad superblock seeds the recycle block tables, the
//! second is silently repaired through the superblock remapping table.

use dssd::ctrl::{RecycleBlockTable, SubBlockId, SuperblockRemapTable};

/// Four flash channels, each with one decoupled controller holding its
/// own SRT and RBT (the tables are "maintained individually by each
/// controller").
struct Controllers {
    srt: Vec<SuperblockRemapTable>,
    rbt: Vec<RecycleBlockTable>,
}

impl Controllers {
    fn new(channels: usize) -> Self {
        Controllers {
            srt: (0..channels).map(|_| SuperblockRemapTable::new(1024)).collect(),
            rbt: (0..channels).map(|_| RecycleBlockTable::new(64)).collect(),
        }
    }
}

#[test]
fn fig6_walkthrough() {
    // Superblock s = block s on every channel; sub-block ids are
    // (die 0, block s) within each channel in this simplified view.
    let channels = 4;
    let mut c = Controllers::new(channels);
    let sub = |sb: u16| SubBlockId::new(0, sb);

    // Initially both tables are empty and no command consults the SRT.
    for ch in 0..channels {
        assert!(c.srt[ch].is_empty());
        assert!(c.rbt[ch].is_empty());
    }

    // (a) Superblock 0 suffers an uncorrectable error in channel 0's
    // sub-block. The FTL moves the valid pages and retires the
    // superblock — but the *other* channels' sub-blocks are still good,
    // so each controller deposits its own sub-block into its RBT
    // ("notifies the other flash controllers").
    let bad_channel = 0;
    for ch in 0..channels {
        if ch != bad_channel {
            c.rbt[ch].deposit(sub(0)).unwrap();
        }
    }
    assert!(c.rbt[bad_channel].is_empty(), "the dead sub-block is not recycled");
    assert_eq!(
        c.rbt.iter().map(RecycleBlockTable::len).sum::<usize>(),
        channels - 1
    );

    // (b) Later, superblock 3 goes bad at channel 1 (sub-block "D" in
    // the figure). This time the controller does NOT notify the FTL:
    // channel 1's RBT has a spare ("A" — its recycled sub-block of
    // superblock 0).
    let spare = c.rbt[1].take().expect("a recycled block is available");
    assert_eq!(spare, sub(0));

    // (c) The remapping D -> A is inserted into channel 1's SRT and the
    // valid pages of D are moved to A by a global copyback (modeled
    // elsewhere); from now on every command for superblock 3's sub-block
    // on channel 1 is silently redirected.
    c.srt[1].insert(sub(3), spare).unwrap();
    assert_eq!(c.srt[1].resolve(sub(3)), sub(0), "access is remapped");
    assert_eq!(c.srt[1].resolve(sub(2)), sub(2), "other superblocks untouched");
    assert_eq!(c.srt[1].active_entries(), 1);

    // The FTL-visible picture: superblock 0 is dead, superblock 3 is
    // alive — even though physically one of 3's sub-blocks is 0's.
    // Other channels' controllers were never involved.
    for ch in (0..channels).filter(|&ch| ch != 1) {
        assert!(c.srt[ch].is_empty(), "channel {ch} has no remapping");
    }

    // If A later wears out too and another spare exists, the entry is
    // updated in place (same FTL-visible source).
    c.rbt[2].take().unwrap(); // channel 2's spare is taken cross-channel
    c.srt[1].insert(sub(3), sub(9)).unwrap();
    assert_eq!(c.srt[1].active_entries(), 1, "in-place update, no new entry");
    assert_eq!(c.srt[1].resolve(sub(3)), sub(9));
}

#[test]
fn srt_exhaustion_forces_visible_death() {
    // With a 1-entry SRT, the second distinct remapping cannot be
    // recorded: the hardware must fall back to reporting the superblock
    // bad (the Fig 16a endurance-vs-SRT-size trade-off at its extreme).
    let mut srt = SuperblockRemapTable::new(1);
    srt.insert(SubBlockId::new(0, 1), SubBlockId::new(0, 7)).unwrap();
    let err = srt
        .insert(SubBlockId::new(0, 2), SubBlockId::new(0, 8))
        .unwrap_err();
    assert_eq!(err.capacity, 1);
}

#[test]
fn reservation_prefill_skips_the_sacrifice() {
    // RESERV (Sec 5.3): the RBT starts non-empty, so the *first* failure
    // is already repairable — no superblock needs to die to seed the bin.
    let mut rbt =
        RecycleBlockTable::with_reserved(64, (100..104).map(|b| SubBlockId::new(0, b)));
    let mut srt = SuperblockRemapTable::new(1024);
    let spare = rbt.take().expect("reserved spare available at first failure");
    srt.insert(SubBlockId::new(0, 5), spare).unwrap();
    assert_eq!(srt.resolve(SubBlockId::new(0, 5)), SubBlockId::new(0, 100));
}
