//! Cross-crate endurance scenarios at configurations different from the
//! unit tests, including SRT/RBT invariants maintained by the simulator.

use dssd::reliability::{EnduranceConfig, EnduranceSim, SuperblockPolicy};

fn cfg() -> EnduranceConfig {
    EnduranceConfig {
        channels: 4,
        subs_per_channel: 8,
        superblocks: 96,
        pe_mean: 300.0,
        pe_sigma: 45.0,
        ..EnduranceConfig::paper_tlc()
    }
}

#[test]
fn full_policy_sweep_is_ordered_at_small_bad_counts() {
    let at = |p| {
        let r = EnduranceSim::new(cfg()).run(p);
        r.written_at_bad_fraction(0.04).unwrap_or(r.total_written)
    };
    let base = at(SuperblockPolicy::Baseline);
    let rec = at(SuperblockPolicy::Recycled);
    let res = at(SuperblockPolicy::Reserved);
    let was = at(SuperblockPolicy::WearAware);
    assert!(rec > base, "RECYCLED {rec} vs BASELINE {base}");
    assert!(res >= rec, "RESERV {res} vs RECYCLED {rec}");
    assert!(was >= res, "WAS {was} vs RESERV {res}");
}

#[test]
fn srt_capacity_sweep_is_monotone() {
    let mut last = 0u64;
    for entries in [1usize, 8, 64, 1 << 20] {
        let c = EnduranceConfig { srt_entries: entries, ..cfg() };
        let total = EnduranceSim::new(c).run(SuperblockPolicy::Recycled).total_written;
        assert!(
            total + total / 10 >= last,
            "endurance should not collapse as SRT grows: {entries} entries -> {total}"
        );
        last = last.max(total);
    }
}

#[test]
fn remap_events_only_occur_with_recycling() {
    let base = EnduranceSim::new(cfg()).run(SuperblockPolicy::Baseline);
    assert_eq!(base.remap_events, 0);
    assert!(base.remap_curve.is_empty());
    let rec = EnduranceSim::new(cfg()).run(SuperblockPolicy::Recycled);
    assert!(rec.remap_events > 0);
    assert_eq!(rec.remap_curve.len() as u64, rec.remap_events);
}

#[test]
fn reservation_ratio_scales_first_bad_delay() {
    let first_bad = |ratio: f64| {
        let c = EnduranceConfig { reserved_fraction: ratio, ..cfg() };
        EnduranceSim::new(c)
            .run(SuperblockPolicy::Reserved)
            .first_bad_bytes()
            .unwrap_or(0)
    };
    let low = first_bad(0.02);
    let high = first_bad(0.15);
    assert!(
        high > low,
        "more reservation must delay the first bad superblock: {low} vs {high}"
    );
}

#[test]
fn reports_are_internally_consistent() {
    for policy in SuperblockPolicy::all() {
        let r = EnduranceSim::new(cfg()).run(policy);
        // Bytes accounting matches fills.
        let sb_bytes = 4 * 8 * 32 * 16384u64; // channels*subs*pages*page_bytes
        assert_eq!(r.total_written, r.fills * sb_bytes, "{policy:?}");
        // Curve never exceeds the visible population.
        assert!(r.bad_superblocks() <= r.initial_visible, "{policy:?}");
        // Curve points lie within the run.
        for &(w, _) in &r.curve {
            assert!(w <= r.total_written, "{policy:?}");
        }
    }
}
