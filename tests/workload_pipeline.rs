//! Integration of the workload layer with the SSD: trace synthesis, CSV
//! round-trips, replay, and the read/write intensity split.

use dssd::kernel::SimSpan;
use dssd::ssd::{Architecture, SsdConfig, SsdSim};
use dssd::workload::{msr, Trace};

#[test]
fn all_fifteen_volumes_replay_end_to_end() {
    for profile in msr::PROFILES {
        let config = SsdConfig::test_tiny(Architecture::Baseline);
        let page_bytes = config.geometry.page_bytes;
        let mut sim = SsdSim::new(config);
        sim.prefill();
        let trace = profile.synthesize(SimSpan::from_ms(100), 3).accelerate(10.0);
        let requests = trace.to_requests(page_bytes, sim.ftl().lpn_count());
        let n = requests.len();
        let report = sim.run_trace(requests, SimSpan::from_ms(20));
        assert!(
            report.requests_completed as usize >= n * 9 / 10,
            "{}: completed {}/{n}",
            profile.name,
            report.requests_completed
        );
        assert!(report.mean_latency().as_ns() > 0, "{}", profile.name);
    }
}

#[test]
fn csv_round_trip_preserves_replay_behaviour() {
    let profile = msr::profile("hm_0").unwrap();
    let trace = profile.synthesize(SimSpan::from_ms(50), 11);
    let parsed: Trace = trace.to_csv().parse().unwrap();
    assert_eq!(parsed, trace);

    // Same requests, same simulation outcome.
    let run = |t: &Trace| {
        let config = SsdConfig::test_tiny(Architecture::DssdFnoc);
        let page_bytes = config.geometry.page_bytes;
        let mut sim = SsdSim::new(config);
        sim.prefill();
        let reqs = t.to_requests(page_bytes, sim.ftl().lpn_count());
        sim.run_trace(reqs, SimSpan::from_ms(50));
        (
            sim.report().requests_completed,
            sim.report().io_bw.total_bytes(),
        )
    };
    assert_eq!(run(&trace), run(&parsed));
}

#[test]
fn read_intensity_shows_in_simulation() {
    // A read-intensive volume must drive more read than write requests
    // through the SSD, and vice versa.
    let measure = |name: &str| {
        let profile = msr::profile(name).unwrap();
        let config = SsdConfig::test_tiny(Architecture::Baseline);
        let page_bytes = config.geometry.page_bytes;
        let mut sim = SsdSim::new(config);
        sim.prefill();
        let trace = profile.synthesize(SimSpan::from_ms(200), 5).accelerate(10.0);
        let reqs = trace.to_requests(page_bytes, sim.ftl().lpn_count());
        sim.run_trace(reqs, SimSpan::from_ms(20));
        let r = sim.report();
        (r.read_latency.count(), r.write_latency.count())
    };
    let (hm1_reads, hm1_writes) = measure("hm_1"); // 95% reads
    assert!(hm1_reads > hm1_writes * 5, "{hm1_reads} vs {hm1_writes}");
    let (rsrch_reads, rsrch_writes) = measure("rsrch_0"); // 9% reads
    assert!(rsrch_writes > rsrch_reads * 5, "{rsrch_writes} vs {rsrch_reads}");
}
