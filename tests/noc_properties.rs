// Gated: requires the `proptest` dev-dependency, which is not
// vendored for offline builds. Enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of the fNoC: exactly-once delivery, flow
//! ordering, and conservation under arbitrary loads and topologies.

use dssd::kernel::{Rng, SimSpan, SimTime};
use dssd::noc::traffic::{schedule, Pattern};
use dssd::noc::{drive, Network, NocConfig, Packet, TopologyKind};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Mesh1D),
        Just(TopologyKind::Ring),
        Just(TopologyKind::Crossbar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected packet is delivered exactly once to its destination,
    /// regardless of topology, buffer depth, and injection pattern.
    #[test]
    fn exactly_once_delivery(
        kind in arb_kind(),
        terminals in 2usize..10,
        buffer in 1usize..8,
        packets in proptest::collection::vec(
            (0u64..500_000, 0usize..10, 0usize..10, 1u64..16_384),
            1..120,
        ),
    ) {
        let config = NocConfig::new(kind, terminals).with_input_buffer_flits(buffer);
        let mut net = Network::new(config);
        let injected: Vec<(SimTime, Packet)> = packets
            .iter()
            .enumerate()
            .map(|(id, &(t, src, dst, bytes))| {
                (
                    SimTime::from_ns(t),
                    Packet::new(id as u64, src % terminals, dst % terminals, bytes),
                )
            })
            .collect();
        let expect: Vec<(u64, usize)> =
            injected.iter().map(|(_, p)| (p.id, p.dst)).collect();
        let delivered = drive(&mut net, injected);
        prop_assert_eq!(delivered.len(), expect.len(), "lost or duplicated packets");
        prop_assert!(net.is_idle(), "flits left in the network");
        let mut got: Vec<(u64, usize)> =
            delivered.iter().map(|d| (d.packet.id, d.packet.dst)).collect();
        got.sort_unstable();
        let mut want = expect.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Packets of one (src, dst) flow are delivered in injection order
    /// (wormhole + deterministic routing never reorders a flow).
    #[test]
    fn per_flow_ordering(kind in arb_kind(), n in 2usize..30) {
        let mut net = Network::new(NocConfig::new(kind, 6));
        let injected: Vec<(SimTime, Packet)> = (0..n)
            .map(|i| (SimTime::from_ns(i as u64), Packet::new(i as u64, 1, 4, 4096)))
            .collect();
        let delivered = drive(&mut net, injected);
        let ids: Vec<u64> = delivered.iter().map(|d| d.packet.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted);
    }

    /// Hop counts of delivered packets match the topology's minimal
    /// routes.
    #[test]
    fn hops_are_minimal(kind in arb_kind(), src in 0usize..8, dst in 0usize..8) {
        let mut net = Network::new(NocConfig::new(kind, 8));
        let delivered = drive(
            &mut net,
            vec![(SimTime::ZERO, Packet::new(0, src, dst, 4096))],
        );
        prop_assert_eq!(delivered.len(), 1);
        prop_assert_eq!(
            delivered[0].hops as usize,
            net.topology().hops(src, dst)
        );
    }
}

#[test]
fn sustained_saturation_drains_on_every_topology() {
    for kind in [TopologyKind::Mesh1D, TopologyKind::Ring, TopologyKind::Crossbar] {
        let config = NocConfig::new(kind, 8)
            .with_input_buffer_flits(2)
            .with_bisection_bandwidth(500_000_000);
        let mut rng = Rng::new(99);
        let packets = schedule(
            8,
            Pattern::Tornado,
            400_000_000,
            4096,
            SimSpan::from_ms(2),
            &mut rng,
        );
        let n = packets.len();
        let mut net = Network::new(config);
        let delivered = drive(&mut net, packets);
        assert_eq!(delivered.len(), n, "{kind:?} dropped under saturation");
        assert!(net.is_idle(), "{kind:?} failed to drain");
    }
}
