//! Garbage-collection work units and scheduling policies.

use dssd_flash::{BlockAddr, DieAddr, PageAddr};

use crate::Lpn;

/// How GC page copies are scheduled relative to host I/O — the prior-work
/// spectrum the paper compares against (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// PaGC: "perform GC in parallel across all flash memory". The
    /// paper's baseline; copies are issued on every channel at once.
    Parallel,
    /// Semi-preemptive GC: copies yield to pending host I/O until the
    /// free-superblock pool drops to `hard_free_superblocks`, after which
    /// GC can no longer be postponed and runs unconditionally.
    Preemptive {
        /// Free-superblock count at which GC becomes non-preemptible.
        hard_free_superblocks: usize,
    },
    /// TinyTail-style partial GC: copies are confined to at most
    /// `concurrent_channels` flash channels at a time so the remaining
    /// channels serve I/O unobstructed (the RAIN-parity reconstruction of
    /// reads is modeled by the embedding simulator).
    TinyTail {
        /// Channels allowed to run GC simultaneously.
        concurrent_channels: usize,
    },
}

impl GcPolicy {
    /// Whether a GC copy may be issued right now.
    ///
    /// * `host_idle` — no host I/O is waiting.
    /// * `must_gc` — the free pool is at or below the hard threshold.
    #[must_use]
    pub fn allows_issue(&self, host_idle: bool, must_gc: bool) -> bool {
        match self {
            GcPolicy::Parallel | GcPolicy::TinyTail { .. } => true,
            GcPolicy::Preemptive { .. } => host_idle || must_gc,
        }
    }

    /// How many channels may run GC copies at once, out of `channels`.
    #[must_use]
    pub fn channel_limit(&self, channels: usize) -> usize {
        match self {
            GcPolicy::Parallel | GcPolicy::Preemptive { .. } => channels,
            GcPolicy::TinyTail { concurrent_channels } => {
                (*concurrent_channels).clamp(1, channels)
            }
        }
    }
}

/// One multi-plane read's worth of GC copy work: valid pages from one
/// page row of one die of the victim superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyGroup {
    /// The die the pages are read from.
    pub src_die: DieAddr,
    /// `(LPN, source page)` pairs — distinct planes, same page row.
    pub pages: Vec<(Lpn, PageAddr)>,
}

impl CopyGroup {
    /// Pages in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if the group carries no pages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// One round of garbage collection: a victim superblock, its live data
/// organized into multi-plane copy groups, and the erases to perform
/// once the copies land.
#[derive(Debug, Clone)]
pub struct GcRound {
    /// The victim superblock id.
    pub victim: u32,
    /// Multi-plane copy groups (may be empty if the victim is all-invalid).
    pub groups: Vec<CopyGroup>,
    /// Every sub-block of the victim, to erase after the copies.
    pub erases: Vec<BlockAddr>,
    /// Total valid pages to move.
    pub valid_pages: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_always_issues_on_all_channels() {
        let p = GcPolicy::Parallel;
        assert!(p.allows_issue(false, false));
        assert!(p.allows_issue(true, true));
        assert_eq!(p.channel_limit(8), 8);
    }

    #[test]
    fn preemptive_yields_until_forced() {
        let p = GcPolicy::Preemptive { hard_free_superblocks: 2 };
        assert!(!p.allows_issue(false, false)); // host busy, not forced
        assert!(p.allows_issue(true, false)); // host idle
        assert!(p.allows_issue(false, true)); // forced
        assert_eq!(p.channel_limit(8), 8);
    }

    #[test]
    fn tinytail_limits_channels() {
        let p = GcPolicy::TinyTail { concurrent_channels: 1 };
        assert!(p.allows_issue(false, false));
        assert_eq!(p.channel_limit(8), 1);
        let wide = GcPolicy::TinyTail { concurrent_channels: 99 };
        assert_eq!(wide.channel_limit(8), 8);
        let zero = GcPolicy::TinyTail { concurrent_channels: 0 };
        assert_eq!(zero.channel_limit(8), 1);
    }
}
