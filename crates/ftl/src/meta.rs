//! FTL metadata durability model: per-page P2L-in-OOB, a write-ahead
//! mapping journal, and periodic L2P checkpoints.
//!
//! Real FTLs survive power loss because the mapping is reconstructible
//! from three durable artifacts: each flash page's out-of-band (OOB)
//! area carries the LPN (and a version stamp) of the data it holds; a
//! write-ahead journal records mapping mutations in batches; and a full
//! L2P checkpoint is flushed periodically so mount never replays an
//! unbounded journal. This module models all three *logically* — which
//! entries exist and *when they became durable* — while the event-driven
//! simulator charges the journal/checkpoint writes as real flash traffic
//! and stamps their durability times.
//!
//! Versioning: every mapping mutation (host write, GC relocation, TRIM)
//! gets a globally unique, monotonically increasing version. Recovery is
//! then "max durable version wins" per LPN:
//!
//! 1. load the newest durable checkpoint (versions + P2L as of entry
//!    `upto_entry`);
//! 2. replay durable journal pages in order, applying ops whose version
//!    is newer than the recovered one;
//! 3. scan the OOB of durable pages programmed *after* the journal tip
//!    (the open, not-yet-journaled region) and apply newer versions.
//!
//! Because journal ops are appended in program-completion order and
//! flushes become durable in order, the durable journal is always a
//! prefix — which makes the "programmed after the tip" scan set exact.
//!
//! The module also keeps the *acknowledgement oracle* used to verify the
//! two crash-consistency invariants: no acknowledged write may be lost,
//! and no trimmed data may be resurrected. The simulator reports each
//! host-visible completion; [`MetaState::recover`] checks the recovered
//! state against the oracle.

use dssd_kernel::{SimSpan, SimTime};

use crate::{Lpn, MappingTable, Ppn};

/// Sentinel for "no physical page" in recovered mappings.
pub const META_UNMAPPED: u64 = u64::MAX;

/// Ticket sentinel for "no durability tracking" (model disabled or
/// prefill-time instant durability).
pub const META_NO_TICKET: u32 = u32::MAX;

/// Durability-model knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaConfig {
    /// Mapping-journal entries packed into one flash page. The pending
    /// buffer flushes (as one charged page program) when it fills.
    pub journal_entries_per_page: u32,
    /// Data-page programs between L2P checkpoints (0 = never
    /// checkpoint after the mount baseline).
    pub checkpoint_interval_pages: u64,
    /// Flash page size in bytes (for sizing checkpoint traffic).
    pub page_bytes: u32,
}

/// Bytes per serialized checkpoint entry (packed PPN + version).
pub const CHECKPOINT_ENTRY_BYTES: u64 = 16;

/// One OOB record: what the media remembers about a programmed page.
#[derive(Debug, Clone, Copy)]
struct OobRec {
    lpn: Lpn,
    version: u64,
    /// Global program-order stamp (strictly increasing).
    programmed: u64,
    /// Simulated instant the program completed (data on media).
    durable_at: SimTime,
}

/// One write-ahead journal operation.
#[derive(Debug, Clone, Copy)]
enum JournalOp {
    /// `lpn` now maps to `ppn` at `version`; the data page carries
    /// program stamp `programmed`.
    Map { lpn: Lpn, version: u64, ppn: Ppn, programmed: u64 },
    /// `lpn` was trimmed at `version`.
    Trim { lpn: Lpn, version: u64 },
}

/// A flushed (or in-flight) journal page.
#[derive(Debug, Clone)]
struct JournalPage {
    ops: Vec<JournalOp>,
    /// Journal-entry index of `ops[0]`.
    first_entry: u64,
    /// When the page program completed; `None` while the flush is in
    /// flight (volatile from the crash model's point of view).
    durable_at: Option<SimTime>,
}

/// A captured L2P checkpoint.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// Per-LPN version at capture.
    versions: Vec<u64>,
    /// Per-LPN physical page at capture ([`META_UNMAPPED`] = unmapped).
    ppns: Vec<u64>,
    /// Journal entries `< upto_entry` are covered by this checkpoint.
    upto_entry: u64,
    /// Highest program stamp covered by this checkpoint.
    tip_programmed: u64,
    /// When the checkpoint finished flushing; `None` while in flight.
    durable_at: Option<SimTime>,
}

/// Metadata I/O the simulator must charge as flash traffic. Drained via
/// [`MetaState::take_io`]; the simulator computes each transfer's
/// completion time and reports it back through
/// [`MetaState::journal_durable`] / [`MetaState::checkpoint_durable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaIo {
    /// One journal-page program of `bytes` bytes; `page` identifies the
    /// flush for the durability callback.
    JournalFlush {
        /// Flush sequence number (argument to [`MetaState::journal_durable`]).
        page: u64,
        /// Payload size.
        bytes: u32,
    },
    /// A full L2P checkpoint flush of `pages` flash pages.
    Checkpoint {
        /// Number of flash-page programs.
        pages: u64,
        /// Total payload size.
        bytes: u64,
    },
}

/// Durability-model activity counters (for reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaStats {
    /// Journal pages flushed.
    pub journal_pages: u64,
    /// Journal entries written (ops across all flushed pages).
    pub journal_entries: u64,
    /// Checkpoints flushed (excluding the mount baseline).
    pub checkpoints: u64,
    /// Flash pages consumed by checkpoint flushes.
    pub checkpoint_pages: u64,
}

/// Result of a simulated mount after power loss at `t_loss`.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Recovered per-LPN version (0 = never written).
    pub versions: Vec<u64>,
    /// Recovered per-LPN physical page ([`META_UNMAPPED`] = unmapped).
    pub ppns: Vec<u64>,
    /// Flash pages read to load the checkpoint.
    pub checkpoint_pages: u64,
    /// Durable journal pages replayed.
    pub journal_pages_replayed: u64,
    /// Journal ops applied-or-examined during replay.
    pub journal_entries_replayed: u64,
    /// OOB records examined in the post-tip scan.
    pub oob_pages_scanned: u64,
    /// Programs whose completion the crash tore (OOB records dropped).
    pub torn_pages: u64,
    /// Invariant violations: acknowledged writes the recovered mapping
    /// lost (stale or missing version).
    pub lost_acked_writes: u64,
    /// Invariant violations: trimmed LPNs that came back mapped to
    /// stale data.
    pub resurrected_trims: u64,
    /// Total flash-page reads the mount performed.
    pub pages_read: u64,
}

/// The full durability model (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct MetaState {
    config: MetaConfig,
    lpn_count: u64,
    /// Current (volatile) per-LPN version.
    versions: Vec<u64>,
    next_version: u64,
    /// OOB records per physical page (`None` = erased).
    oob: Vec<Option<OobRec>>,
    next_programmed: u64,
    /// Pending (volatile) journal ops.
    pending: Vec<JournalOp>,
    pending_first_entry: u64,
    next_entry: u64,
    /// Flushed journal pages, oldest first.
    journal: Vec<JournalPage>,
    next_flush: u64,
    /// Base flush number of `journal[0]` (earlier pages were truncated).
    journal_base_flush: u64,
    /// Last durable checkpoint.
    checkpoint: Option<Checkpoint>,
    /// Checkpoint currently being flushed.
    checkpoint_inflight: Option<Checkpoint>,
    pages_since_checkpoint: u64,
    /// Issued-but-not-yet-programmed write groups: (lpn, version, ppn).
    tickets: Vec<Option<Vec<(Lpn, u64, Ppn)>>>,
    free_tickets: Vec<u32>,
    issued_order: Vec<u32>,
    /// Metadata I/O awaiting the simulator's traffic charge.
    io: Vec<MetaIo>,
    /// Acknowledgement oracle: highest version acked to the host per
    /// LPN, and whether that ack was a trim (unmapped) state.
    acked_version: Vec<u64>,
    acked_trim: Vec<bool>,
    /// True once the mount baseline (checkpoint 0) has been taken.
    baseline_done: bool,
    stats: MetaStats,
}

impl MetaState {
    /// Creates the model for a device of `lpn_count` logical and
    /// `total_pages` physical pages.
    ///
    /// # Panics
    ///
    /// Panics if `journal_entries_per_page` is zero.
    #[must_use]
    pub fn new(config: MetaConfig, lpn_count: u64, total_pages: u64) -> Self {
        assert!(
            config.journal_entries_per_page > 0,
            "journal entries per page must be non-zero"
        );
        MetaState {
            config,
            lpn_count,
            versions: vec![0; lpn_count as usize],
            next_version: 1,
            oob: vec![None; total_pages as usize],
            next_programmed: 1,
            pending: Vec::new(),
            pending_first_entry: 0,
            next_entry: 0,
            journal: Vec::new(),
            next_flush: 0,
            journal_base_flush: 0,
            checkpoint: None,
            checkpoint_inflight: None,
            pages_since_checkpoint: 0,
            tickets: Vec::new(),
            free_tickets: Vec::new(),
            issued_order: Vec::new(),
            io: Vec::new(),
            acked_version: vec![0; lpn_count as usize],
            acked_trim: vec![false; lpn_count as usize],
            baseline_done: false,
            stats: MetaStats::default(),
        }
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> MetaStats {
        self.stats
    }

    /// True once [`MetaState::mount_baseline`] has run.
    #[must_use]
    pub fn baseline_done(&self) -> bool {
        self.baseline_done
    }

    /// Journal entries currently buffered in volatile memory.
    #[must_use]
    pub fn pending_entries(&self) -> usize {
        self.pending.len()
    }

    fn alloc_ticket(&mut self, entries: Vec<(Lpn, u64, Ppn)>) -> u32 {
        let id = if let Some(id) = self.free_tickets.pop() {
            self.tickets[id as usize] = Some(entries);
            id
        } else {
            self.tickets.push(Some(entries));
            (self.tickets.len() - 1) as u32
        };
        self.issued_order.push(id);
        id
    }

    /// Records one allocation group of host writes: bumps each LPN's
    /// version and returns a ticket the simulator redeems when the
    /// program completes ([`MetaState::mark_programmed`]) or tears
    /// ([`MetaState::mark_torn`]).
    ///
    /// Before the mount baseline (prefill), writes are applied with
    /// instant durability and no ticket is issued.
    pub fn note_host_writes(&mut self, pairs: &[(Lpn, Ppn)]) -> u32 {
        if !self.baseline_done {
            for &(lpn, ppn) in pairs {
                let version = self.next_version;
                self.next_version += 1;
                self.versions[lpn as usize] = version;
                let programmed = self.next_programmed;
                self.next_programmed += 1;
                self.oob[ppn as usize] = Some(OobRec {
                    lpn,
                    version,
                    programmed,
                    durable_at: SimTime::ZERO,
                });
            }
            return META_NO_TICKET;
        }
        let mut entries = Vec::with_capacity(pairs.len());
        for &(lpn, ppn) in pairs {
            let version = self.next_version;
            self.next_version += 1;
            self.versions[lpn as usize] = version;
            entries.push((lpn, version, ppn));
        }
        self.alloc_ticket(entries)
    }

    /// Tickets issued (in order) since the last drain.
    pub fn drain_tickets(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.issued_order)
    }

    /// The program behind `ticket` completed at `at`: its pages' OOB
    /// becomes durable and their mapping ops enter the journal.
    pub fn mark_programmed(&mut self, ticket: u32, at: SimTime) {
        if ticket == META_NO_TICKET {
            return;
        }
        let entries = self.tickets[ticket as usize]
            .as_ref()
            .expect("live ticket")
            .clone();
        for (lpn, version, ppn) in entries {
            let programmed = self.next_programmed;
            self.next_programmed += 1;
            self.oob[ppn as usize] = Some(OobRec { lpn, version, programmed, durable_at: at });
            self.append_op(JournalOp::Map { lpn, version, ppn, programmed });
        }
        self.note_data_programs();
    }

    /// The program behind `ticket` failed: no OOB record, no journal op.
    /// The caller re-allocates, which issues a fresh ticket.
    pub fn mark_torn(&mut self, ticket: u32) {
        if ticket == META_NO_TICKET {
            return;
        }
        self.tickets[ticket as usize] = None;
        self.free_tickets.push(ticket);
    }

    /// The host was acknowledged for the request that owned `ticket`:
    /// its versions join the oracle, and the ticket is retired.
    pub fn ack(&mut self, ticket: u32) {
        if ticket == META_NO_TICKET {
            return;
        }
        let entries = self.tickets[ticket as usize].take().expect("live ticket");
        self.free_tickets.push(ticket);
        for (lpn, version, _) in entries {
            if version > self.acked_version[lpn as usize] {
                self.acked_version[lpn as usize] = version;
                self.acked_trim[lpn as usize] = false;
            }
        }
    }

    /// Retires `ticket` without acknowledging (the owning request
    /// failed).
    pub fn discard(&mut self, ticket: u32) {
        if ticket == META_NO_TICKET {
            return;
        }
        if self.tickets[ticket as usize].take().is_some() {
            self.free_tickets.push(ticket);
        }
    }

    /// Records a completed GC relocation of `lpn` from `src` to `dst` at
    /// `at`. `live` is false when the copy arrived stale (the host
    /// overwrote the LPN in flight): the destination page still exists
    /// on media — its OOB keeps the *old* version, which recovery must
    /// ignore — but no mapping op is journaled.
    pub fn note_copy(&mut self, lpn: Lpn, src: Ppn, dst: Ppn, live: bool, at: SimTime) {
        let programmed = self.next_programmed;
        self.next_programmed += 1;
        if live {
            let version = self.next_version;
            self.next_version += 1;
            self.versions[lpn as usize] = version;
            self.oob[dst as usize] = Some(OobRec { lpn, version, programmed, durable_at: at });
            if self.baseline_done {
                self.append_op(JournalOp::Map { lpn, version, ppn: dst, programmed });
            }
        } else {
            // Stale media content: carry the source page's version.
            let version = self.oob[src as usize].map_or(0, |r| r.version);
            self.oob[dst as usize] = Some(OobRec { lpn, version, programmed, durable_at: at });
        }
        self.note_data_programs();
    }

    /// Records a TRIM of `lpn`.
    pub fn note_trim(&mut self, lpn: Lpn) {
        let version = self.next_version;
        self.next_version += 1;
        self.versions[lpn as usize] = version;
        if self.baseline_done {
            self.append_op(JournalOp::Trim { lpn, version });
        }
    }

    /// Clears the OOB records of an erased block (`first_ppn` ..
    /// `first_ppn + pages`).
    pub fn note_erase(&mut self, first_ppn: u64, pages: u64) {
        for ppn in first_ppn..first_ppn + pages {
            self.oob[ppn as usize] = None;
        }
    }

    /// Takes the mount baseline: an always-durable checkpoint of the
    /// current mapping (checkpoint 0, covering prefill state, including
    /// prefill trims), and seeds the acknowledgement oracle — everything
    /// the device held at mount is implicitly acknowledged.
    pub fn mount_baseline(&mut self, map: &MappingTable) {
        assert!(!self.baseline_done, "baseline already taken");
        let ckpt = self.capture_checkpoint(map);
        self.checkpoint = Some(Checkpoint { durable_at: Some(SimTime::ZERO), ..ckpt });
        for lpn in 0..self.lpn_count as usize {
            self.acked_version[lpn] = self.versions[lpn];
            self.acked_trim[lpn] = map.lookup(lpn as Lpn).is_none();
        }
        self.baseline_done = true;
    }

    fn capture_checkpoint(&self, map: &MappingTable) -> Checkpoint {
        let mut ppns = vec![META_UNMAPPED; self.lpn_count as usize];
        for (lpn, slot) in ppns.iter_mut().enumerate() {
            if let Some(ppn) = map.lookup(lpn as Lpn) {
                *slot = ppn;
            }
        }
        Checkpoint {
            versions: self.versions.clone(),
            ppns,
            upto_entry: self.next_entry,
            tip_programmed: self.next_programmed - 1,
            durable_at: None,
        }
    }

    fn append_op(&mut self, op: JournalOp) {
        if self.pending.is_empty() {
            self.pending_first_entry = self.next_entry;
        }
        self.pending.push(op);
        self.next_entry += 1;
        if self.pending.len() >= self.config.journal_entries_per_page as usize {
            self.flush_journal();
        }
    }

    fn flush_journal(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.pending);
        self.stats.journal_pages += 1;
        self.stats.journal_entries += ops.len() as u64;
        self.journal.push(JournalPage {
            ops,
            first_entry: self.pending_first_entry,
            durable_at: None,
        });
        let page = self.next_flush;
        self.next_flush += 1;
        self.io.push(MetaIo::JournalFlush { page, bytes: self.config.page_bytes });
    }

    fn note_data_programs(&mut self) {
        if !self.baseline_done || self.config.checkpoint_interval_pages == 0 {
            return;
        }
        self.pages_since_checkpoint += 1;
        if self.pages_since_checkpoint >= self.config.checkpoint_interval_pages
            && self.checkpoint_inflight.is_none()
        {
            self.pages_since_checkpoint = 0;
            // Flush the pending journal first so the checkpoint's
            // entry coverage stays a journal-page boundary.
            self.flush_journal();
            self.io.push(MetaIo::Checkpoint {
                pages: self.checkpoint_flash_pages(),
                bytes: self.lpn_count * CHECKPOINT_ENTRY_BYTES,
            });
            // Captured lazily by the simulator via `begin_checkpoint`.
        }
    }

    /// Flash pages one checkpoint occupies.
    #[must_use]
    pub fn checkpoint_flash_pages(&self) -> u64 {
        (self.lpn_count * CHECKPOINT_ENTRY_BYTES).div_ceil(u64::from(self.config.page_bytes))
    }

    /// Captures the in-flight checkpoint content. The simulator calls
    /// this when it dequeues a [`MetaIo::Checkpoint`], *before* any
    /// further mapping mutation.
    pub fn begin_checkpoint(&mut self, map: &MappingTable) {
        assert!(self.checkpoint_inflight.is_none(), "checkpoint already in flight");
        let ckpt = self.capture_checkpoint(map);
        self.stats.checkpoints += 1;
        self.stats.checkpoint_pages += self.checkpoint_flash_pages();
        self.checkpoint_inflight = Some(ckpt);
    }

    /// Pending metadata I/O for the simulator to charge.
    pub fn take_io(&mut self) -> Vec<MetaIo> {
        std::mem::take(&mut self.io)
    }

    /// The journal flush `page` completed at `at`.
    pub fn journal_durable(&mut self, page: u64, at: SimTime) {
        let idx = (page - self.journal_base_flush) as usize;
        let slot = &mut self.journal[idx].durable_at;
        assert!(slot.is_none(), "journal page already durable");
        *slot = Some(at);
    }

    /// The in-flight checkpoint completed at `at`; journal pages it
    /// covers are truncated.
    pub fn checkpoint_durable(&mut self, at: SimTime) {
        let mut ckpt = self.checkpoint_inflight.take().expect("checkpoint in flight");
        ckpt.durable_at = Some(at);
        let upto = ckpt.upto_entry;
        self.checkpoint = Some(ckpt);
        let mut drop_n = 0;
        for page in &self.journal {
            let covered = page.first_entry + page.ops.len() as u64 <= upto;
            if covered && page.durable_at.is_some() {
                drop_n += 1;
            } else {
                break;
            }
        }
        self.journal.drain(..drop_n);
        self.journal_base_flush += drop_n as u64;
    }

    /// Simulates a mount after power loss at `t_loss`: everything not
    /// durable by then is gone. Reconstructs the L2P and verifies the
    /// two invariants against the acknowledgement oracle.
    ///
    /// # Panics
    ///
    /// Panics if [`MetaState::mount_baseline`] never ran.
    #[must_use]
    pub fn recover(&self, t_loss: SimTime) -> RecoveryOutcome {
        // 1. Newest durable checkpoint. The in-flight one qualifies only
        //    if its flush completed before the crash (it then lives in
        //    `checkpoint`), so `checkpoint` is the only candidate.
        let ckpt = self
            .checkpoint
            .as_ref()
            .filter(|c| c.durable_at.expect("stored checkpoints are durable") <= t_loss)
            .expect("mount baseline must pre-date any crash");
        let mut versions = ckpt.versions.clone();
        let mut ppns = ckpt.ppns.clone();
        let mut tip_programmed = ckpt.tip_programmed;
        let checkpoint_pages = self.checkpoint_flash_pages();

        // 2. Replay durable journal pages past the checkpoint coverage.
        let mut journal_pages_replayed = 0;
        let mut journal_entries_replayed = 0;
        for page in &self.journal {
            let Some(durable_at) = page.durable_at else { break };
            if durable_at > t_loss {
                break;
            }
            if page.first_entry + page.ops.len() as u64 <= ckpt.upto_entry {
                continue;
            }
            journal_pages_replayed += 1;
            for (i, op) in page.ops.iter().enumerate() {
                if page.first_entry + (i as u64) < ckpt.upto_entry {
                    continue;
                }
                journal_entries_replayed += 1;
                match *op {
                    JournalOp::Map { lpn, version, ppn, programmed } => {
                        tip_programmed = tip_programmed.max(programmed);
                        if version > versions[lpn as usize] {
                            versions[lpn as usize] = version;
                            ppns[lpn as usize] = ppn;
                        }
                    }
                    JournalOp::Trim { lpn, version } => {
                        if version > versions[lpn as usize] {
                            versions[lpn as usize] = version;
                            ppns[lpn as usize] = META_UNMAPPED;
                        }
                    }
                }
            }
        }

        // 3. OOB scan of the open region: durable pages programmed after
        //    the durable journal tip.
        let mut oob_pages_scanned = 0;
        let mut torn_pages = 0;
        for (ppn, rec) in self.oob.iter().enumerate() {
            let Some(rec) = rec else { continue };
            if rec.durable_at > t_loss {
                torn_pages += 1;
                continue;
            }
            if rec.programmed <= tip_programmed {
                continue;
            }
            oob_pages_scanned += 1;
            if rec.version > versions[rec.lpn as usize] {
                versions[rec.lpn as usize] = rec.version;
                ppns[rec.lpn as usize] = ppn as u64;
            }
        }

        // 4. Invariants vs. the acknowledgement oracle.
        let mut lost_acked_writes = 0;
        let mut resurrected_trims = 0;
        for lpn in 0..self.lpn_count as usize {
            let acked = self.acked_version[lpn];
            if acked == 0 {
                continue;
            }
            let recovered = versions[lpn];
            let mapped = ppns[lpn] != META_UNMAPPED;
            if self.acked_trim[lpn] {
                if mapped && recovered <= acked {
                    resurrected_trims += 1;
                }
            } else if recovered < acked || (recovered == acked && !mapped) {
                lost_acked_writes += 1;
            }
        }

        let pages_read = checkpoint_pages + journal_pages_replayed + oob_pages_scanned;
        RecoveryOutcome {
            versions,
            ppns,
            checkpoint_pages,
            journal_pages_replayed,
            journal_entries_replayed,
            oob_pages_scanned,
            torn_pages,
            lost_acked_writes,
            resurrected_trims,
            pages_read,
        }
    }

    /// Analytic mount latency for `pages_read` flash-page reads spread
    /// over `channels` parallel channel buses.
    #[must_use]
    pub fn recovery_time(
        &self,
        pages_read: u64,
        channels: u64,
        page_read: SimSpan,
        bus_ns_per_page: u64,
    ) -> SimSpan {
        let rounds = pages_read.div_ceil(channels.max(1));
        SimSpan::from_ns(rounds * (page_read.as_ns() + bus_ns_per_page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssd_flash::FlashGeometry;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimSpan::from_ns(ns)
    }

    fn setup(entries_per_page: u32, ckpt_interval: u64) -> (MetaState, MappingTable) {
        let geo = FlashGeometry::tiny();
        let total = geo.total_pages();
        let meta = MetaState::new(
            MetaConfig {
                journal_entries_per_page: entries_per_page,
                checkpoint_interval_pages: ckpt_interval,
                page_bytes: geo.page_bytes,
            },
            16,
            total,
        );
        let map = MappingTable::new(&geo, 16);
        (meta, map)
    }

    /// Drives one acknowledged host write of `lpn` -> `ppn` end to end:
    /// version bump, program completion at `at`, host ack.
    fn write_acked(meta: &mut MetaState, map: &mut MappingTable, lpn: Lpn, ppn: Ppn, at: SimTime) {
        let ticket = meta.note_host_writes(&[(lpn, ppn)]);
        map.map_write(lpn, ppn);
        meta.mark_programmed(ticket, at);
        meta.ack(ticket);
    }

    #[test]
    fn prefill_writes_are_instantly_durable_without_tickets() {
        let (mut meta, mut map) = setup(4, 0);
        assert_eq!(meta.note_host_writes(&[(0, 0), (1, 1)]), META_NO_TICKET);
        map.map_write(0, 0);
        map.map_write(1, 1);
        meta.mount_baseline(&map);
        let out = meta.recover(t(0));
        assert_eq!(out.ppns[0], 0);
        assert_eq!(out.ppns[1], 1);
        assert_eq!(out.lost_acked_writes, 0);
        assert_eq!(out.resurrected_trims, 0);
    }

    #[test]
    fn journal_flushes_when_page_fills_and_durable_replay_recovers() {
        let (mut meta, mut map) = setup(2, 0);
        meta.mount_baseline(&map);
        write_acked(&mut meta, &mut map, 3, 7, t(100));
        write_acked(&mut meta, &mut map, 4, 8, t(200));
        let io = meta.take_io();
        assert_eq!(io, vec![MetaIo::JournalFlush { page: 0, bytes: meta.config.page_bytes }]);
        meta.journal_durable(0, t(250));
        let out = meta.recover(t(300));
        assert_eq!(out.journal_pages_replayed, 1);
        assert_eq!(out.journal_entries_replayed, 2);
        assert_eq!(out.ppns[3], 7);
        assert_eq!(out.ppns[4], 8);
        assert_eq!(out.lost_acked_writes, 0);
    }

    #[test]
    fn unjournaled_acked_write_recovers_via_oob_scan() {
        let (mut meta, mut map) = setup(1024, 0); // journal never fills
        meta.mount_baseline(&map);
        write_acked(&mut meta, &mut map, 5, 9, t(100));
        assert_eq!(meta.pending_entries(), 1);
        let out = meta.recover(t(200));
        assert_eq!(out.journal_pages_replayed, 0);
        assert_eq!(out.oob_pages_scanned, 1);
        assert_eq!(out.ppns[5], 9);
        assert_eq!(out.lost_acked_writes, 0);
    }

    #[test]
    fn torn_program_is_invisible_and_unacked_loss_is_not_a_violation() {
        let (mut meta, mut map) = setup(1024, 0);
        meta.mount_baseline(&map);
        // Program completes at t=500, crash at t=100: the page tore.
        let ticket = meta.note_host_writes(&[(6, 10)]);
        map.map_write(6, 10);
        meta.mark_programmed(ticket, t(500));
        let out = meta.recover(t(100));
        assert_eq!(out.torn_pages, 1);
        assert_eq!(out.ppns[6], META_UNMAPPED);
        assert_eq!(out.lost_acked_writes, 0, "never acked, so no promise broken");
    }

    #[test]
    fn losing_an_acked_write_is_detected() {
        let (mut meta, mut map) = setup(1024, 0);
        meta.mount_baseline(&map);
        // Pathological: host acked, but the program lands after the
        // crash instant. The detector must flag it.
        let ticket = meta.note_host_writes(&[(6, 10)]);
        map.map_write(6, 10);
        meta.mark_programmed(ticket, t(500));
        meta.ack(ticket);
        let out = meta.recover(t(100));
        assert_eq!(out.lost_acked_writes, 1);
    }

    #[test]
    fn checkpoint_truncates_durable_covered_journal_prefix() {
        let (mut meta, mut map) = setup(1, 1); // flush every op, checkpoint every program
        meta.mount_baseline(&map);
        write_acked(&mut meta, &mut map, 1, 2, t(100));
        let io = meta.take_io();
        assert_eq!(io.len(), 2, "journal flush then checkpoint: {io:?}");
        assert!(matches!(io[1], MetaIo::Checkpoint { .. }));
        meta.journal_durable(0, t(150));
        meta.begin_checkpoint(&map);
        meta.checkpoint_durable(t(300));
        assert!(meta.journal.is_empty(), "covered durable prefix truncated");
        let out = meta.recover(t(400));
        assert_eq!(out.journal_pages_replayed, 0);
        assert_eq!(out.ppns[1], 2);
        assert_eq!(out.lost_acked_writes, 0);
        assert_eq!(meta.stats().checkpoints, 1);
    }

    #[test]
    fn stale_gc_copy_never_wins_recovery() {
        let (mut meta, mut map) = setup(1024, 0);
        meta.mount_baseline(&map);
        write_acked(&mut meta, &mut map, 2, 4, t(100));
        // Host overwrites LPN 2 while GC was copying 4 -> 7: the copy
        // lands stale, carrying the old version in its OOB.
        write_acked(&mut meta, &mut map, 2, 6, t(200));
        meta.note_copy(2, 4, 7, false, t(300));
        let out = meta.recover(t(400));
        assert_eq!(out.ppns[2], 6, "newest host write wins, not the stale copy");
        assert_eq!(out.lost_acked_writes, 0);
    }

    #[test]
    fn live_gc_copy_moves_the_mapping() {
        let (mut meta, mut map) = setup(1024, 0);
        meta.mount_baseline(&map);
        write_acked(&mut meta, &mut map, 2, 4, t(100));
        meta.note_copy(2, 4, 5, true, t(200));
        meta.note_erase(4, 1);
        let out = meta.recover(t(300));
        assert_eq!(out.ppns[2], 5);
        assert_eq!(out.lost_acked_writes, 0);
    }

    #[test]
    fn recovery_time_spreads_reads_over_channels() {
        let (meta, _) = setup(4, 0);
        let span = meta.recovery_time(10, 4, SimSpan::from_ns(2_000), 500);
        assert_eq!(span.as_ns(), 3 * 2_500); // ceil(10/4) = 3 rounds
    }

    #[test]
    #[should_panic(expected = "journal entries per page must be non-zero")]
    fn zero_entries_per_page_panics() {
        let geo = FlashGeometry::tiny();
        let _ = MetaState::new(
            MetaConfig {
                journal_entries_per_page: 0,
                checkpoint_interval_pages: 0,
                page_bytes: geo.page_bytes,
            },
            4,
            geo.total_pages(),
        );
    }
}
