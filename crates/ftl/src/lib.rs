//! Flash translation layer (FTL) for the dSSD reproduction.
//!
//! The FTL is the firmware layer the paper keeps *unmodified* across all
//! architectures (its one concession is knowing that copyback exists and
//! that a GC destination may be any flash location). This crate provides:
//!
//! * a page-level logical-to-physical [`MappingTable`] with per-block
//!   valid-page accounting;
//! * the [`SuperblockLayout`]: same block id grouped across every
//!   channel/way/die/plane (the paper's *static* superblock);
//! * a die-interleaved, plane-packing page [`allocator`](Ftl::write_pages)
//!   that reproduces the paper's low-bandwidth (4 KB → 1 plane) and
//!   high-bandwidth (32 KB → 8-plane multi-plane) scenarios;
//! * greedy victim selection and GC round construction with multi-plane
//!   copy groups ([`GcRound`], [`CopyGroup`]);
//! * the GC scheduling [`GcPolicy`] variants compared in the paper:
//!   parallel GC (PaGC, the baseline), semi-preemptive GC, and
//!   TinyTail-style partial GC;
//! * the WAS-style wear-aware regrouping helper ([`was`]).
//!
//! Timing lives in `dssd-ssd`: this crate makes *decisions* (addresses,
//! victims, copy sets); the event-driven world turns them into bus and
//! die occupancy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod ftl;
mod gc;
mod mapping;
pub mod meta;
mod superblock;
pub mod was;

pub use alloc::AllocGroup;
pub use ftl::{Ftl, FtlConfig, FtlStats};
pub use gc::{CopyGroup, GcPolicy, GcRound};
pub use mapping::{Lpn, MappingTable, Ppn};
pub use meta::{
    MetaConfig, MetaIo, MetaState, MetaStats, RecoveryOutcome, CHECKPOINT_ENTRY_BYTES,
    META_NO_TICKET, META_UNMAPPED,
};
pub use superblock::SuperblockLayout;
