//! Page allocation within an active superblock.

use dssd_flash::{DieAddr, PageAddr};

use crate::SuperblockLayout;

/// A group of freshly allocated pages on one die — the unit that becomes
/// a single (multi-plane) program operation.
///
/// All addresses share the die and page row and occupy distinct planes,
/// so a group of `n` pages is an `n`-plane program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocGroup {
    /// The die all pages live on.
    pub die: DieAddr,
    /// The allocated pages (1 ≤ len ≤ planes).
    pub addrs: Vec<PageAddr>,
}

impl AllocGroup {
    /// Number of pages in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the group is empty (never produced by the allocator).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// Allocation state of one active superblock.
///
/// Groups are handed out die-interleaved (round-robin across the stripe)
/// and plane-packed within a die, reproducing the paper's two bandwidth
/// regimes: a stream of 4 KB writes lands one page on each die in turn
/// (1 of 8 planes busy → "low bandwidth"), while one 32 KB write fills a
/// full 8-plane row of a single die (multi-plane → "high bandwidth").
#[derive(Debug, Clone)]
pub(crate) struct ActiveSuperblock {
    pub(crate) sb: u32,
    die_fill: Vec<u32>,
    allocated: u64,
    rr: u32,
}

impl ActiveSuperblock {
    pub(crate) fn new(sb: u32, layout: &SuperblockLayout) -> Self {
        ActiveSuperblock {
            sb,
            die_fill: vec![0; layout.stripe_dies() as usize],
            allocated: 0,
            rr: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn allocated(&self) -> u64 {
        self.allocated
    }

    pub(crate) fn is_full(&self, layout: &SuperblockLayout) -> bool {
        self.allocated == layout.capacity_pages()
    }

    pub(crate) fn remaining(&self, layout: &SuperblockLayout) -> u64 {
        layout.capacity_pages() - self.allocated
    }

    /// Allocates up to `want` pages as one same-row group on the next
    /// die (round-robin) with space. Returns `None` when full.
    pub(crate) fn alloc_group(
        &mut self,
        layout: &SuperblockLayout,
        want: u32,
    ) -> Option<AllocGroup> {
        debug_assert!(want > 0);
        let dies = layout.stripe_dies();
        let slots = layout.slots_per_die();
        let planes = layout.geometry().planes;
        for off in 0..dies {
            let d = (self.rr + off) % dies;
            let fill = self.die_fill[d as usize];
            if fill >= slots {
                continue;
            }
            // Stay within the current plane row so the group is one
            // multi-plane program.
            let row_left = planes - (fill % planes);
            let g = want.min(row_left).min(slots - fill);
            let addrs = (fill..fill + g)
                .map(|s| layout.page_at(self.sb, d, s))
                .collect();
            self.die_fill[d as usize] = fill + g;
            self.allocated += g as u64;
            self.rr = (d + 1) % dies;
            return Some(AllocGroup { die: layout.stripe_die(d), addrs });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssd_flash::FlashGeometry;

    fn layout() -> SuperblockLayout {
        SuperblockLayout::new(FlashGeometry::tiny()) // 2ch 2w 1die 2pl 4pg
    }

    #[test]
    fn small_writes_interleave_across_dies() {
        let l = layout();
        let mut a = ActiveSuperblock::new(0, &l);
        let g1 = a.alloc_group(&l, 1).unwrap();
        let g2 = a.alloc_group(&l, 1).unwrap();
        let g3 = a.alloc_group(&l, 1).unwrap();
        assert_ne!(g1.die, g2.die);
        assert_ne!(g2.die, g3.die);
        // consecutive dies sit on different channels (channel-major stripe)
        assert_ne!(g1.die.channel, g2.die.channel);
    }

    #[test]
    fn large_write_packs_planes_of_one_die() {
        let l = layout();
        let mut a = ActiveSuperblock::new(0, &l);
        let g = a.alloc_group(&l, 2).unwrap(); // planes = 2
        assert_eq!(g.len(), 2);
        assert_eq!(g.addrs[0].page, g.addrs[1].page); // same row
        assert_ne!(g.addrs[0].plane, g.addrs[1].plane);
        assert_eq!(g.addrs[0].die_addr(), g.die);
    }

    #[test]
    fn groups_never_span_rows() {
        let l = layout();
        let mut a = ActiveSuperblock::new(0, &l);
        a.alloc_group(&l, 1).unwrap(); // fill 1 slot on die 0
        // Ask for 2 from every die until we wrap back to die 0's
        // half-filled row: group must be clipped to the row.
        for _ in 0..3 {
            a.alloc_group(&l, 2).unwrap();
        }
        let g = a.alloc_group(&l, 2).unwrap(); // back on die 0, mid-row
        assert_eq!(g.len(), 1, "group must not cross the plane row");
    }

    #[test]
    fn fills_exactly_to_capacity() {
        let l = layout();
        let mut a = ActiveSuperblock::new(0, &l);
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        while let Some(g) = a.alloc_group(&l, 2) {
            for p in &g.addrs {
                assert!(seen.insert(l.geometry().page_index(*p)));
                assert_eq!(p.block, 0);
            }
            total += g.len() as u64;
        }
        assert_eq!(total, l.capacity_pages());
        assert_eq!(a.allocated(), l.capacity_pages());
        assert!(a.is_full(&l));
        assert_eq!(a.remaining(&l), 0);
    }

    #[test]
    fn want_larger_than_planes_is_clipped() {
        let l = layout();
        let mut a = ActiveSuperblock::new(0, &l);
        let g = a.alloc_group(&l, 100).unwrap();
        assert_eq!(g.len() as u32, l.geometry().planes);
    }
}
