//! Static superblock organization.

use dssd_flash::{BlockAddr, DieAddr, FlashGeometry, PageAddr};

/// The paper's *static* superblock: "the same block ID across multiple
/// channels (or planes) is grouped together" (Sec 5.1). Superblock `s`
/// consists of block `s` in every plane of every die of every
/// channel/way, so there are exactly `geometry.blocks` superblocks.
///
/// Page *slots* inside a superblock are organized per die: die stripe
/// index `d` (channel-major, so consecutive dies sit on consecutive
/// channels) holds `planes × pages` slots, filled plane-major — slot `k`
/// of a die is plane `k % planes`, page `k / planes`. A group of up to
/// `planes` slots in one row therefore forms one multi-plane program.
///
/// # Example
///
/// ```
/// use dssd_ftl::SuperblockLayout;
/// use dssd_flash::FlashGeometry;
///
/// let geo = FlashGeometry::tiny();
/// let sb = SuperblockLayout::new(geo);
/// assert_eq!(sb.superblock_count(), geo.blocks);
/// assert_eq!(sb.capacity_pages(),
///            sb.stripe_dies() as u64 * sb.slots_per_die() as u64);
/// let a = sb.page_at(0, 0, 0);
/// assert_eq!((a.channel, a.plane, a.page), (0, 0, 0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SuperblockLayout {
    geometry: FlashGeometry,
}

impl SuperblockLayout {
    /// Creates the layout for a geometry.
    #[must_use]
    pub fn new(geometry: FlashGeometry) -> Self {
        SuperblockLayout { geometry }
    }

    /// The underlying geometry.
    #[must_use]
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Number of superblocks (= blocks per plane).
    #[must_use]
    pub fn superblock_count(&self) -> u32 {
        self.geometry.blocks
    }

    /// Dies in a superblock's stripe.
    #[must_use]
    pub fn stripe_dies(&self) -> u32 {
        (self.geometry.total_dies()) as u32
    }

    /// Page slots per die of the stripe (`planes × pages`).
    #[must_use]
    pub fn slots_per_die(&self) -> u32 {
        self.geometry.planes * self.geometry.pages
    }

    /// Total page capacity of one superblock.
    #[must_use]
    pub fn capacity_pages(&self) -> u64 {
        self.stripe_dies() as u64 * self.slots_per_die() as u64
    }

    /// The die at stripe index `d` (channel-major order).
    #[must_use]
    pub fn stripe_die(&self, d: u32) -> DieAddr {
        let g = &self.geometry;
        DieAddr {
            channel: d % g.channels,
            way: (d / g.channels) % g.ways,
            die: d / (g.channels * g.ways),
        }
    }

    /// The sub-blocks (one per plane of each die) of superblock `sb`.
    pub fn sub_blocks(&self, sb: u32) -> impl Iterator<Item = BlockAddr> + '_ {
        let g = self.geometry;
        (0..self.stripe_dies()).flat_map(move |d| {
            let die = self.stripe_die(d);
            (0..g.planes).map(move |plane| BlockAddr {
                channel: die.channel,
                way: die.way,
                die: die.die,
                plane,
                block: sb,
            })
        })
    }

    /// The physical page at slot `slot` of stripe die `d` in
    /// superblock `sb`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `d` is out of range.
    #[must_use]
    pub fn page_at(&self, sb: u32, d: u32, slot: u32) -> PageAddr {
        assert!(slot < self.slots_per_die(), "slot {slot} out of range");
        assert!(d < self.stripe_dies(), "stripe die {d} out of range");
        let die = self.stripe_die(d);
        PageAddr {
            channel: die.channel,
            way: die.way,
            die: die.die,
            plane: slot % self.geometry.planes,
            block: sb,
            page: slot / self.geometry.planes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let sb = SuperblockLayout::new(FlashGeometry::table1_ull());
        assert_eq!(sb.superblock_count(), 1384);
        assert_eq!(sb.stripe_dies(), 64);
        assert_eq!(sb.slots_per_die(), 8 * 384);
        assert_eq!(sb.capacity_pages(), 64 * 8 * 384);
    }

    #[test]
    fn stripe_is_channel_major() {
        let sb = SuperblockLayout::new(FlashGeometry::table1_ull());
        assert_eq!(sb.stripe_die(0), DieAddr { channel: 0, way: 0, die: 0 });
        assert_eq!(sb.stripe_die(1), DieAddr { channel: 1, way: 0, die: 0 });
        assert_eq!(sb.stripe_die(8), DieAddr { channel: 0, way: 1, die: 0 });
    }

    #[test]
    fn slots_are_plane_major() {
        let sb = SuperblockLayout::new(FlashGeometry::tiny());
        let a = sb.page_at(3, 0, 0);
        let b = sb.page_at(3, 0, 1);
        let c = sb.page_at(3, 0, 2);
        assert_eq!((a.plane, a.page), (0, 0));
        assert_eq!((b.plane, b.page), (1, 0));
        assert_eq!((c.plane, c.page), (0, 1)); // next row
        assert_eq!(a.block, 3);
    }

    #[test]
    fn sub_blocks_cover_every_plane_once() {
        let geo = FlashGeometry::tiny();
        let sb = SuperblockLayout::new(geo);
        let blocks: Vec<_> = sb.sub_blocks(2).collect();
        assert_eq!(blocks.len(), geo.total_planes() as usize);
        assert!(blocks.iter().all(|b| b.block == 2));
        let mut planes: Vec<_> = blocks.iter().map(|b| b.plane_addr()).collect();
        planes.sort();
        planes.dedup();
        assert_eq!(planes.len(), geo.total_planes() as usize);
    }

    #[test]
    fn page_slots_cover_superblock_exactly() {
        let geo = FlashGeometry::tiny();
        let sb = SuperblockLayout::new(geo);
        let mut seen = std::collections::HashSet::new();
        for d in 0..sb.stripe_dies() {
            for s in 0..sb.slots_per_die() {
                let p = sb.page_at(1, d, s);
                assert!(seen.insert(geo.page_index(p)), "duplicate slot");
                assert_eq!(p.block, 1);
            }
        }
        assert_eq!(seen.len() as u64, sb.capacity_pages());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let sb = SuperblockLayout::new(FlashGeometry::tiny());
        let _ = sb.page_at(0, 0, sb.slots_per_die());
    }
}
