//! The FTL façade: address translation, allocation, and GC rounds.

use std::collections::VecDeque;

use dssd_flash::{FlashGeometry, PageAddr};
use dssd_kernel::{Rng, SimTime};

use crate::alloc::ActiveSuperblock;
use crate::meta::{MetaConfig, MetaIo, MetaState, MetaStats, RecoveryOutcome};
use crate::{AllocGroup, CopyGroup, GcPolicy, GcRound, Lpn, MappingTable, SuperblockLayout};

/// FTL configuration.
#[derive(Debug, Clone, Copy)]
pub struct FtlConfig {
    /// Fraction of physical pages hidden from the logical space
    /// (Table 1: provision ratio 7 %).
    pub overprovision: f64,
    /// Start GC when the free-superblock pool drops below this.
    pub gc_threshold_free: usize,
    /// Forced-GC threshold for the preemptive policy.
    pub gc_hard_free: usize,
    /// GC scheduling policy.
    pub policy: GcPolicy,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            overprovision: 0.07,
            gc_threshold_free: 4,
            gc_hard_free: 2,
            policy: GcPolicy::Parallel,
        }
    }
}

/// FTL activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Pages written on behalf of the host.
    pub host_pages_written: u64,
    /// Pages moved by garbage collection.
    pub gc_pages_copied: u64,
    /// GC rounds completed.
    pub gc_rounds: u64,
    /// Sub-block erases performed.
    pub erases: u64,
    /// GC copies that arrived stale (host overwrote the LPN in flight).
    pub stale_copies: u64,
}

/// The flash translation layer.
///
/// Owns the mapping table, the free-superblock pool, one active
/// superblock for host writes and one for GC destinations, and builds
/// [`GcRound`]s with greedy victim selection. Purely *decisional*: the
/// event-driven SSD world turns the returned addresses into timed flash,
/// bus and network operations.
///
/// # Example
///
/// ```
/// use dssd_ftl::{Ftl, FtlConfig};
/// use dssd_flash::FlashGeometry;
///
/// let mut ftl = Ftl::new(FlashGeometry::tiny(), FtlConfig::default());
/// let groups = ftl.write_pages(&[0, 1, 2]).unwrap();
/// assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), 3);
/// assert!(ftl.translate(1).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Ftl {
    layout: SuperblockLayout,
    map: MappingTable,
    free_sbs: VecDeque<u32>,
    sealed: Vec<u32>,
    retired: Vec<u32>,
    active_host: ActiveSuperblock,
    active_gc: ActiveSuperblock,
    config: FtlConfig,
    stats: FtlStats,
    /// Optional crash-consistency metadata model (OOB / journal /
    /// checkpoints). `None` keeps every hot path bit-identical to the
    /// pre-durability FTL.
    meta: Option<MetaState>,
}

impl Ftl {
    /// Creates an FTL over an all-erased flash array.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has fewer than 4 superblocks (two active
    /// plus a workable free pool) or the config thresholds are
    /// inconsistent.
    #[must_use]
    pub fn new(geometry: FlashGeometry, config: FtlConfig) -> Self {
        let layout = SuperblockLayout::new(geometry);
        assert!(
            layout.superblock_count() >= 4,
            "need at least 4 superblocks"
        );
        assert!(
            config.gc_hard_free <= config.gc_threshold_free,
            "hard threshold above trigger threshold"
        );
        assert!(
            (0.0..1.0).contains(&config.overprovision),
            "overprovision must be in [0, 1)"
        );
        let lpn_count =
            (geometry.total_pages() as f64 * (1.0 - config.overprovision)).floor() as u64;
        let map = MappingTable::new(&geometry, lpn_count);
        let mut free_sbs: VecDeque<u32> = (0..layout.superblock_count()).collect();
        let host_sb = free_sbs.pop_front().unwrap();
        let gc_sb = free_sbs.pop_front().unwrap();
        Ftl {
            active_host: ActiveSuperblock::new(host_sb, &layout),
            active_gc: ActiveSuperblock::new(gc_sb, &layout),
            layout,
            map,
            free_sbs,
            sealed: Vec::new(),
            retired: Vec::new(),
            config,
            stats: FtlStats::default(),
            meta: None,
        }
    }

    /// Enables the crash-consistency metadata model. Must run before any
    /// write so versions cover the whole device history.
    ///
    /// # Panics
    ///
    /// Panics if pages were already written.
    pub fn enable_meta(&mut self, config: MetaConfig) {
        assert_eq!(self.stats.host_pages_written, 0, "enable_meta before first write");
        let total = self.layout.geometry().total_pages();
        self.meta = Some(MetaState::new(config, self.map.lpn_count(), total));
    }

    /// The metadata durability model, if enabled.
    #[must_use]
    pub fn meta(&self) -> Option<&MetaState> {
        self.meta.as_ref()
    }

    /// Durability-model activity counters, if the model is enabled.
    #[must_use]
    pub fn meta_stats(&self) -> Option<MetaStats> {
        self.meta.as_ref().map(MetaState::stats)
    }

    /// Takes the mount baseline (checkpoint 0 over the current —
    /// typically prefilled — mapping). No-op when the model is disabled
    /// or the baseline is already in place.
    pub fn meta_mount_baseline(&mut self) {
        if let Some(meta) = &mut self.meta {
            if !meta.baseline_done() {
                meta.mount_baseline(&self.map);
            }
        }
    }

    /// Tickets issued by [`Ftl::write_pages`] since the last drain, in
    /// allocation-group order. Empty when the model is disabled.
    pub fn meta_drain_tickets(&mut self) -> Vec<u32> {
        self.meta.as_mut().map(MetaState::drain_tickets).unwrap_or_default()
    }

    /// Reports that the program behind `ticket` completed at `at`.
    pub fn meta_mark_programmed(&mut self, ticket: u32, at: SimTime) {
        if let Some(meta) = &mut self.meta {
            meta.mark_programmed(ticket, at);
        }
    }

    /// Reports that the program behind `ticket` failed (torn page).
    pub fn meta_mark_torn(&mut self, ticket: u32) {
        if let Some(meta) = &mut self.meta {
            meta.mark_torn(ticket);
        }
    }

    /// Acknowledges the request that owned `ticket` (host completion).
    pub fn meta_ack(&mut self, ticket: u32) {
        if let Some(meta) = &mut self.meta {
            meta.ack(ticket);
        }
    }

    /// Retires `ticket` without acknowledgement (request failed).
    pub fn meta_discard(&mut self, ticket: u32) {
        if let Some(meta) = &mut self.meta {
            meta.discard(ticket);
        }
    }

    /// Pending metadata I/O (journal flushes, checkpoints) for the
    /// simulator to charge as flash traffic.
    pub fn meta_take_io(&mut self) -> Vec<MetaIo> {
        self.meta.as_mut().map(MetaState::take_io).unwrap_or_default()
    }

    /// Captures the content of a dequeued [`MetaIo::Checkpoint`].
    pub fn meta_begin_checkpoint(&mut self) {
        if let Some(meta) = &mut self.meta {
            meta.begin_checkpoint(&self.map);
        }
    }

    /// Reports the completion time of journal flush `page`.
    pub fn meta_journal_durable(&mut self, page: u64, at: SimTime) {
        if let Some(meta) = &mut self.meta {
            meta.journal_durable(page, at);
        }
    }

    /// Reports the completion time of the in-flight checkpoint.
    pub fn meta_checkpoint_durable(&mut self, at: SimTime) {
        if let Some(meta) = &mut self.meta {
            meta.checkpoint_durable(at);
        }
    }

    /// Simulates a post-power-loss mount at `t_loss` (see
    /// [`MetaState::recover`]). `None` when the model is disabled.
    #[must_use]
    pub fn meta_recover(&self, t_loss: SimTime) -> Option<RecoveryOutcome> {
        self.meta.as_ref().map(|m| m.recover(t_loss))
    }

    /// The superblock layout.
    #[must_use]
    pub fn layout(&self) -> &SuperblockLayout {
        &self.layout
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Size of the logical space in pages.
    #[must_use]
    pub fn lpn_count(&self) -> u64 {
        self.map.lpn_count()
    }

    /// Free superblocks (excluding the two active ones).
    #[must_use]
    pub fn free_superblocks(&self) -> usize {
        self.free_sbs.len()
    }

    /// True once the free pool is below the GC trigger threshold.
    #[must_use]
    pub fn needs_gc(&self) -> bool {
        self.free_sbs.len() < self.config.gc_threshold_free
    }

    /// True once GC can no longer be postponed (preemptive policy).
    #[must_use]
    pub fn must_gc(&self) -> bool {
        self.free_sbs.len() <= self.config.gc_hard_free
    }

    /// Translates a logical page to its physical address.
    #[must_use]
    pub fn translate(&self, lpn: Lpn) -> Option<PageAddr> {
        self.map
            .lookup(lpn)
            .map(|ppn| self.layout.geometry().page_at(ppn))
    }

    /// Direct access to the mapping table (read-only).
    #[must_use]
    pub fn mapping(&self) -> &MappingTable {
        &self.map
    }

    /// Pages the host can still write before allocation would block on GC
    /// (one free superblock is held back as the GC destination reserve).
    #[must_use]
    pub fn host_headroom(&self) -> u64 {
        let reserve = 1usize;
        let free = self.free_sbs.len().saturating_sub(reserve) as u64;
        self.active_host.remaining(&self.layout) + free * self.layout.capacity_pages()
    }

    /// Writes `lpns`, committing the mapping immediately and returning
    /// the allocation groups (one flash program each) for timing.
    ///
    /// Returns `None` — with *no* state change — if the host headroom is
    /// insufficient; the caller must let GC free space and retry.
    pub fn write_pages(&mut self, lpns: &[Lpn]) -> Option<Vec<AllocGroup>> {
        if (lpns.len() as u64) > self.host_headroom() {
            return None;
        }
        let mut groups = Vec::new();
        let mut rest = lpns;
        while !rest.is_empty() {
            if self.active_host.is_full(&self.layout) {
                let sealed = std::mem::replace(
                    &mut self.active_host,
                    ActiveSuperblock::new(
                        self.free_sbs.pop_front().expect("headroom check guaranteed space"),
                        &self.layout,
                    ),
                );
                self.sealed.push(sealed.sb);
            }
            let group = self
                .active_host
                .alloc_group(&self.layout, rest.len() as u32)
                .expect("active superblock not full");
            for (lpn, addr) in rest.iter().zip(&group.addrs) {
                let ppn = self.layout.geometry().page_index(*addr);
                self.map.map_write(*lpn, ppn);
            }
            if let Some(meta) = &mut self.meta {
                let geo = self.layout.geometry();
                let pairs: Vec<(Lpn, u64)> = rest
                    .iter()
                    .zip(&group.addrs)
                    .map(|(lpn, addr)| (*lpn, geo.page_index(*addr)))
                    .collect();
                meta.note_host_writes(&pairs);
            }
            self.stats.host_pages_written += group.len() as u64;
            rest = &rest[group.len()..];
            groups.push(group);
        }
        Some(groups)
    }

    /// Starts a GC round: greedily selects the sealed superblock with the
    /// fewest valid pages and returns its copy groups and erases.
    /// Returns `None` if no sealed superblock exists.
    pub fn start_gc_round(&mut self) -> Option<GcRound> {
        let (idx, _) = self
            .sealed
            .iter()
            .enumerate()
            .min_by_key(|(_, &sb)| self.superblock_valid_pages(sb))?;
        let victim = self.sealed.swap_remove(idx);
        Some(self.build_gc_round(victim))
    }

    /// Starts a GC round against a *specific* sealed superblock — the
    /// relocation step of online retirement: a failing superblock's live
    /// pages must be moved off before [`Ftl::retire_superblock`] will
    /// accept it. Returns `None` if `sb` is not sealed (free, active, or
    /// already retired superblocks have no data to relocate).
    pub fn start_gc_round_on(&mut self, sb: u32) -> Option<GcRound> {
        let idx = self.sealed.iter().position(|&s| s == sb)?;
        let victim = self.sealed.swap_remove(idx);
        Some(self.build_gc_round(victim))
    }

    fn build_gc_round(&self, victim: u32) -> GcRound {
        let geo = *self.layout.geometry();
        let mut groups = Vec::new();
        let mut valid_pages = 0usize;
        for d in 0..self.layout.stripe_dies() {
            let die = self.layout.stripe_die(d);
            for row in 0..geo.pages {
                let mut pages = Vec::new();
                for plane in 0..geo.planes {
                    let addr = PageAddr {
                        channel: die.channel,
                        way: die.way,
                        die: die.die,
                        plane,
                        block: victim,
                        page: row,
                    };
                    let ppn = geo.page_index(addr);
                    if let Some(lpn) = self.map.lpn_of(ppn) {
                        pages.push((lpn, addr));
                    }
                }
                if !pages.is_empty() {
                    valid_pages += pages.len();
                    groups.push(CopyGroup { src_die: die, pages });
                }
            }
        }
        let erases = self.layout.sub_blocks(victim).collect();
        GcRound { victim, groups, erases, valid_pages }
    }

    /// Allocates destination pages for a GC copy group (up to `want`
    /// pages on one die).
    ///
    /// # Panics
    ///
    /// Panics if the GC destination pool is exhausted — the GC trigger
    /// threshold must keep at least one superblock in reserve. Use
    /// [`Ftl::try_alloc_gc_group`] where pool exhaustion is a modeled
    /// outcome (device end-of-life).
    pub fn alloc_gc_group(&mut self, want: u32) -> AllocGroup {
        self.try_alloc_gc_group(want)
            .expect("GC destination pool exhausted")
    }

    /// [`Ftl::alloc_gc_group`] that reports pool exhaustion instead of
    /// panicking: `None` means the device has no erased superblock left
    /// to copy into — end of life.
    pub fn try_alloc_gc_group(&mut self, want: u32) -> Option<AllocGroup> {
        if self.active_gc.is_full(&self.layout) {
            let next = self.free_sbs.pop_front()?;
            let sealed = std::mem::replace(
                &mut self.active_gc,
                ActiveSuperblock::new(next, &self.layout),
            );
            self.sealed.push(sealed.sb);
        }
        Some(
            self.active_gc
                .alloc_group(&self.layout, want)
                .expect("active GC superblock not full"),
        )
    }

    /// Completes one GC page copy; returns `false` (and counts it) if the
    /// copy arrived stale because the host overwrote the LPN in flight.
    pub fn complete_copy(&mut self, lpn: Lpn, src: PageAddr, dst: PageAddr) -> bool {
        self.complete_copy_at(lpn, src, dst, SimTime::ZERO)
    }

    /// [`Ftl::complete_copy`] with the simulated completion instant, so
    /// the durability model can stamp the destination page's OOB.
    pub fn complete_copy_at(&mut self, lpn: Lpn, src: PageAddr, dst: PageAddr, at: SimTime) -> bool {
        let geo = self.layout.geometry();
        let (src_ppn, dst_ppn) = (geo.page_index(src), geo.page_index(dst));
        let ok = self.map.complete_copy(lpn, src_ppn, dst_ppn);
        if ok {
            self.stats.gc_pages_copied += 1;
        } else {
            self.stats.stale_copies += 1;
        }
        if let Some(meta) = &mut self.meta {
            meta.note_copy(lpn, src_ppn, dst_ppn, ok, at);
        }
        ok
    }

    /// Finishes a GC round: erases the victim's sub-blocks and returns the
    /// superblock to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if any victim sub-block still holds valid pages (copies
    /// must complete first).
    pub fn finish_gc_round(&mut self, round: &GcRound) {
        let geo = *self.layout.geometry();
        for b in &round.erases {
            let idx = geo.block_index(*b);
            self.map.erase_block(idx);
            if let Some(meta) = &mut self.meta {
                meta.note_erase(idx as u64 * u64::from(geo.pages), u64::from(geo.pages));
            }
            self.stats.erases += 1;
        }
        self.free_sbs.push_back(round.victim);
        self.stats.gc_rounds += 1;
    }

    /// Finishes a relocation round started by [`Ftl::start_gc_round_on`]:
    /// the victim's sub-blocks are erased and unmapped like a normal round,
    /// but the superblock goes to the retired list instead of back to the
    /// free pool — it failed in service and must never be allocated again.
    pub fn finish_gc_round_retiring(&mut self, round: &GcRound) {
        let geo = *self.layout.geometry();
        for b in &round.erases {
            let idx = geo.block_index(*b);
            self.map.erase_block(idx);
            if let Some(meta) = &mut self.meta {
                meta.note_erase(idx as u64 * u64::from(geo.pages), u64::from(geo.pages));
            }
            self.stats.erases += 1;
        }
        self.retired.push(round.victim);
        self.stats.gc_rounds += 1;
    }

    /// Retires a bad superblock: it is removed from the free and sealed
    /// pools and never allocated again (conventional bad-superblock
    /// management — the whole superblock is lost). Live data must have
    /// been moved first; retiring a superblock that still holds valid
    /// pages is rejected.
    ///
    /// Returns `false` (no state change) if the superblock is active,
    /// already retired, or still holds valid pages.
    pub fn retire_superblock(&mut self, sb: u32) -> bool {
        if sb == self.active_host.sb || sb == self.active_gc.sb {
            return false;
        }
        if self.retired.contains(&sb) || self.superblock_valid_pages(sb) > 0 {
            return false;
        }
        self.free_sbs.retain(|&s| s != sb);
        self.sealed.retain(|&s| s != sb);
        self.retired.push(sb);
        true
    }

    /// Superblocks retired as bad.
    #[must_use]
    pub fn retired_superblocks(&self) -> &[u32] {
        &self.retired
    }

    /// Valid pages currently in superblock `sb`.
    #[must_use]
    pub fn superblock_valid_pages(&self, sb: u32) -> u64 {
        let geo = self.layout.geometry();
        self.layout
            .sub_blocks(sb)
            .map(|b| self.map.valid_in_block(geo.block_index(b)) as u64)
            .sum()
    }

    /// Pre-conditions the SSD for GC experiments: sequentially fills the
    /// whole logical space, then performs random overwrites until the
    /// free pool shrinks to `target_free` superblocks — leaving the drive
    /// full, fragmented, and one write burst away from triggering GC
    /// ("we assume SSD is fully utilized and some random fraction of the
    /// pages are invalidated such that garbage collection will be
    /// triggered", Sec 6.1).
    ///
    /// # Panics
    ///
    /// Panics if `target_free` cannot be reached (e.g. it exceeds the
    /// post-fill free pool).
    pub fn prefill(&mut self, rng: &mut Rng, target_free: usize) {
        self.prefill_with(rng, target_free, 0.0);
    }

    /// [`Ftl::prefill`] with explicit pre-invalidation: after the fill,
    /// `invalid_fraction` of all logical pages are trimmed, scattering
    /// invalid pages across every superblock *without* consuming free
    /// space — so garbage collection has steady-state work from the
    /// first round, exactly the paper's setup.
    ///
    /// # Panics
    ///
    /// Panics if `invalid_fraction` is outside `[0, 1)` or `target_free`
    /// cannot be reached.
    pub fn prefill_with(&mut self, rng: &mut Rng, target_free: usize, invalid_fraction: f64) {
        assert!(
            (0.0..1.0).contains(&invalid_fraction),
            "invalid fraction must be in [0, 1)"
        );
        let lpns = self.lpn_count();
        let mut batch = Vec::with_capacity(64);
        let mut next: Lpn = 0;
        while next < lpns {
            batch.clear();
            for _ in 0..64.min(lpns - next) {
                batch.push(next);
                next += 1;
            }
            self.write_pages(&batch)
                .expect("sequential fill must fit the logical space");
        }
        if invalid_fraction > 0.0 {
            for lpn in 0..lpns {
                if rng.chance(invalid_fraction) {
                    self.trim(lpn);
                }
            }
        }
        assert!(
            self.free_sbs.len() >= target_free,
            "target_free {target_free} unreachable (free pool {} after fill)",
            self.free_sbs.len()
        );
        while self.free_sbs.len() > target_free {
            let lpn = rng.range_u64(0..lpns);
            self.write_pages(&[lpn]).expect("overwrite within headroom");
        }
    }

    /// Unmaps a logical page (TRIM), invalidating its physical page.
    pub fn trim(&mut self, lpn: Lpn) -> Option<PageAddr> {
        let old = self.map.trim(lpn);
        if let Some(meta) = &mut self.meta {
            meta.note_trim(lpn);
        }
        old.map(|ppn| self.layout.geometry().page_at(ppn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssd_flash::FlashGeometry;

    /// The tiny test geometry has only 8 superblocks (two of which are
    /// active), so tests use a deeper overprovision than Table 1's 7 %.
    fn cfg(threshold: usize, hard: usize) -> FtlConfig {
        FtlConfig {
            overprovision: 0.3,
            gc_threshold_free: threshold,
            gc_hard_free: hard,
            policy: GcPolicy::Parallel,
        }
    }

    fn small_ftl() -> Ftl {
        Ftl::new(FlashGeometry::tiny(), cfg(2, 1))
    }

    #[test]
    fn write_then_translate() {
        let mut f = small_ftl();
        f.write_pages(&[5]).unwrap();
        let addr = f.translate(5).unwrap();
        assert_eq!(f.mapping().lookup(5), Some(f.layout().geometry().page_index(addr)));
        assert_eq!(f.translate(6), None);
    }

    #[test]
    fn overwrite_creates_invalid_page() {
        let mut f = small_ftl();
        f.write_pages(&[5]).unwrap();
        let first = f.translate(5).unwrap();
        f.write_pages(&[5]).unwrap();
        let second = f.translate(5).unwrap();
        assert_ne!(first, second);
        let geo = *f.layout().geometry();
        assert!(!f.mapping().is_valid(geo.page_index(first)));
    }

    #[test]
    fn headroom_shrinks_and_blocks() {
        let mut f = small_ftl();
        let head = f.host_headroom();
        assert!(head > 0);
        // Writing more than headroom in one call is refused atomically.
        let too_many: Vec<Lpn> = (0..head + 1).collect();
        assert!(f.write_pages(&too_many).is_none());
        assert_eq!(f.stats().host_pages_written, 0);
    }

    #[test]
    fn fill_then_gc_reclaims_space() {
        let mut f = small_ftl();
        let mut rng = Rng::new(1);
        f.prefill(&mut rng, 1);
        assert!(f.needs_gc());
        let free_before = f.free_superblocks();
        let round = f.start_gc_round().expect("sealed superblocks exist");
        // complete every copy
        for g in &round.groups {
            let mut pages = g.pages.clone();
            while !pages.is_empty() {
                let dst = f.alloc_gc_group(pages.len() as u32);
                for ((lpn, src), d) in pages.drain(..dst.len()).zip(dst.addrs.iter()) {
                    f.complete_copy(lpn, src, *d);
                }
            }
        }
        f.finish_gc_round(&round);
        assert_eq!(f.free_superblocks(), free_before + 1);
        assert_eq!(f.stats().gc_rounds, 1);
        assert!(f.stats().erases > 0);
        // every LPN still readable
        for lpn in 0..f.lpn_count() {
            assert!(f.translate(lpn).is_some(), "LPN {lpn} lost by GC");
        }
    }

    #[test]
    fn greedy_picks_most_invalid_victim() {
        let mut f = small_ftl();
        let mut rng = Rng::new(2);
        f.prefill(&mut rng, 1);
        let round = f.start_gc_round().unwrap();
        // The chosen victim must have the minimum valid count among what
        // was sealed.
        let victim_valid = round.valid_pages as u64;
        for &sb in &f.sealed {
            assert!(f.superblock_valid_pages(sb) >= victim_valid);
        }
    }

    #[test]
    fn copy_groups_are_multi_plane_shaped() {
        let mut f = small_ftl();
        let mut rng = Rng::new(3);
        f.prefill(&mut rng, 1);
        let round = f.start_gc_round().unwrap();
        let planes = f.layout().geometry().planes as usize;
        for g in &round.groups {
            assert!(!g.is_empty() && g.len() <= planes);
            // same die, same row, distinct planes
            let row = g.pages[0].1.page;
            let mut seen_planes = std::collections::HashSet::new();
            for (_, p) in &g.pages {
                assert_eq!(p.die_addr(), g.src_die);
                assert_eq!(p.page, row);
                assert_eq!(p.block, round.victim);
                assert!(seen_planes.insert(p.plane));
            }
        }
    }

    #[test]
    fn stale_copy_counted_not_applied() {
        let mut f = small_ftl();
        let mut rng = Rng::new(4);
        f.prefill(&mut rng, 1);
        let round = f.start_gc_round().unwrap();
        let (lpn, src) = round.groups[0].pages[0];
        // Host overwrites the LPN mid-copy.
        f.write_pages(&[lpn]).unwrap();
        let dst = f.alloc_gc_group(1);
        assert!(!f.complete_copy(lpn, src, dst.addrs[0]));
        assert_eq!(f.stats().stale_copies, 1);
    }

    #[test]
    fn sustained_write_loop_with_gc_never_loses_data() {
        let mut f = Ftl::new(FlashGeometry::tiny(), cfg(3, 1));
        let mut rng = Rng::new(5);
        f.prefill(&mut rng, 1);
        // Keep writing random LPNs; run a full GC round whenever needed.
        for i in 0..2000u64 {
            if f.needs_gc() {
                if let Some(round) = f.start_gc_round() {
                    for g in &round.groups {
                        let mut pages = g.pages.clone();
                        while !pages.is_empty() {
                            let dst = f.alloc_gc_group(pages.len() as u32);
                            let take = dst.len().min(pages.len());
                            for ((lpn, src), d) in
                                pages.drain(..take).zip(dst.addrs.iter())
                            {
                                f.complete_copy(lpn, src, *d);
                            }
                        }
                    }
                    f.finish_gc_round(&round);
                }
            }
            let lpn = rng.range_u64(0..f.lpn_count());
            assert!(
                f.write_pages(&[lpn]).is_some(),
                "write {i} blocked: free={} needs_gc={}",
                f.free_superblocks(),
                f.needs_gc()
            );
        }
        for lpn in 0..f.lpn_count() {
            assert!(f.translate(lpn).is_some());
        }
        assert!(f.stats().gc_rounds > 0, "GC never ran");
    }

    #[test]
    fn retire_removes_superblock_from_circulation() {
        let mut f = small_ftl();
        let free_before = f.free_superblocks();
        // Retire a free superblock (no valid pages).
        let victim = 5;
        assert!(f.retire_superblock(victim));
        assert_eq!(f.free_superblocks(), free_before - 1);
        assert_eq!(f.retired_superblocks(), &[victim]);
        // Idempotent-ish: a second retire is refused.
        assert!(!f.retire_superblock(victim));
    }

    #[test]
    fn retire_refuses_live_superblocks() {
        let mut f = small_ftl();
        let mut rng = Rng::new(9);
        f.prefill(&mut rng, 1);
        // A sealed superblock full of valid pages cannot be retired.
        let sealed_with_data = (0..f.layout().superblock_count())
            .find(|&sb| f.superblock_valid_pages(sb) > 0)
            .unwrap();
        assert!(!f.retire_superblock(sealed_with_data));
    }

    #[test]
    #[should_panic(expected = "hard threshold")]
    fn inconsistent_thresholds_rejected() {
        let bad = FtlConfig { gc_threshold_free: 1, gc_hard_free: 5, ..FtlConfig::default() };
        let _ = Ftl::new(FlashGeometry::tiny(), bad);
    }
}
