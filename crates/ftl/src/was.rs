//! WAS-style wear-aware superblock management (the software comparison
//! point of Sec 6.4 / Fig 14).
//!
//! WAS \[40\] runs in the FTL: it periodically *scans* block endurance
//! state (reading at least one page per block to refresh RBER estimates)
//! and regroups blocks of similar remaining endurance into superblocks,
//! so one weak block does not drag seven strong ones down with it.
//!
//! Two pieces are modeled here:
//!
//! * [`rank_matched_groups`] — the grouping decision: per-channel block
//!   lists are sorted by remaining endurance and superblocks are formed
//!   from rank-matched blocks (best-with-best).
//! * [`scan_reads`] — the cost side the paper charges WAS with in
//!   Fig 14(c): one page read per tracked block per refresh, all of which
//!   crosses the shared system bus and DRAM in a conventional SSD.

/// Groups per-channel candidate blocks into wear-matched superblocks.
///
/// `per_channel[c]` lists `(block id, remaining endurance)` for channel
/// `c`. Each channel's list is sorted by *descending* remaining endurance
/// and the `i`-th superblock takes every channel's `i`-th block. The
/// number of groups is the shortest channel list; surplus blocks are left
/// ungrouped (returned superblocks always span all channels).
///
/// # Example
///
/// ```
/// use dssd_ftl::was::rank_matched_groups;
/// let groups = rank_matched_groups(&[
///     vec![(0, 10), (1, 90)],
///     vec![(7, 50), (9, 40)],
/// ]);
/// // strongest with strongest: block 1 (90) pairs with block 7 (50)
/// assert_eq!(groups, vec![vec![1, 7], vec![0, 9]]);
/// ```
#[must_use]
pub fn rank_matched_groups(per_channel: &[Vec<(u32, u32)>]) -> Vec<Vec<u32>> {
    if per_channel.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<Vec<(u32, u32)>> = per_channel.to_vec();
    for ch in &mut sorted {
        // Descending remaining endurance; block id breaks ties for
        // determinism.
        ch.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }
    let groups = sorted.iter().map(Vec::len).min().unwrap_or(0);
    (0..groups)
        .map(|i| sorted.iter().map(|ch| ch[i].0).collect())
        .collect()
}

/// Page reads required for one WAS endurance-scan pass over
/// `tracked_blocks` blocks ("WAS requires endurance information for each
/// block … by reading at least one page per block", Sec 6.4).
#[must_use]
pub fn scan_reads(tracked_blocks: u64) -> u64 {
    tracked_blocks
}

/// Spread (max − min) of remaining endurance within each group — the
/// quantity WAS minimizes. Useful for comparing groupings in tests and
/// ablations.
#[must_use]
pub fn group_spread(groups: &[Vec<u32>], remaining: impl Fn(u32) -> u32) -> Vec<u32> {
    groups
        .iter()
        .map(|g| {
            let vals: Vec<u32> = g.iter().map(|&b| remaining(b)).collect();
            vals.iter().max().unwrap_or(&0) - vals.iter().min().unwrap_or(&0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_are_rank_matched() {
        let groups = rank_matched_groups(&[
            vec![(0, 5), (1, 50), (2, 100)],
            vec![(3, 70), (4, 10), (5, 40)],
        ]);
        assert_eq!(groups, vec![vec![2, 3], vec![1, 5], vec![0, 4]]);
    }

    #[test]
    fn shortest_channel_bounds_group_count() {
        let groups = rank_matched_groups(&[
            vec![(0, 1), (1, 2), (2, 3)],
            vec![(3, 1)],
        ]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(rank_matched_groups(&[]).is_empty());
        assert!(rank_matched_groups(&[vec![], vec![(1, 1)]]).is_empty());
    }

    #[test]
    fn rank_matching_minimizes_spread_vs_static() {
        // Static grouping pairs by position; rank matching pairs by wear.
        let ch0 = vec![(0, 100), (1, 10)];
        let ch1 = vec![(2, 15), (3, 95)];
        let was = rank_matched_groups(&[ch0.clone(), ch1.clone()]);
        let rem = |b: u32| match b {
            0 => 100,
            1 => 10,
            2 => 15,
            3 => 95,
            _ => unreachable!(),
        };
        let was_spread = group_spread(&was, rem);
        let static_groups = vec![vec![0, 2], vec![1, 3]];
        let static_spread = group_spread(&static_groups, rem);
        assert!(was_spread.iter().max() < static_spread.iter().max());
    }

    #[test]
    fn scan_cost_is_linear() {
        assert_eq!(scan_reads(0), 0);
        assert_eq!(scan_reads(4096), 4096);
    }

    #[test]
    fn determinism_under_ties() {
        let a = rank_matched_groups(&[vec![(5, 10), (2, 10)], vec![(9, 10), (1, 10)]]);
        assert_eq!(a, vec![vec![2, 1], vec![5, 9]]);
    }
}
