//! Page-level logical→physical mapping with valid-page accounting.

use dssd_flash::FlashGeometry;

/// Logical page number.
pub type Lpn = u64;
/// Physical page number (the geometry's linear page index).
pub type Ppn = u64;

const NONE: u32 = u32::MAX;

/// Page-level mapping table.
///
/// Tracks `LPN → PPN`, the reverse `PPN → LPN` (a physical page is valid
/// iff it has a reverse entry), and a per-block valid-page counter used
/// for greedy victim selection.
///
/// # Example
///
/// ```
/// use dssd_ftl::MappingTable;
/// use dssd_flash::FlashGeometry;
///
/// let geo = FlashGeometry::tiny();
/// let mut map = MappingTable::new(&geo, geo.total_pages() / 2);
/// assert_eq!(map.map_write(3, 10), None);       // first write of LPN 3
/// assert_eq!(map.lookup(3), Some(10));
/// assert_eq!(map.map_write(3, 11), Some(10));   // overwrite invalidates PPN 10
/// assert!(!map.is_valid(10));
/// ```
#[derive(Debug, Clone)]
pub struct MappingTable {
    /// LPN -> PPN (NONE = unmapped).
    l2p: Vec<u32>,
    /// PPN -> LPN (NONE = invalid page).
    p2l: Vec<u32>,
    /// Valid pages per physical block.
    valid_per_block: Vec<u32>,
    pages_per_block: u32,
    mapped: u64,
}

impl MappingTable {
    /// Creates an empty table for `lpn_count` logical pages over the
    /// geometry's physical space.
    ///
    /// # Panics
    ///
    /// Panics if the geometry or LPN space does not fit the 32-bit
    /// in-memory encoding, or if the logical space exceeds the physical.
    #[must_use]
    pub fn new(geometry: &FlashGeometry, lpn_count: u64) -> Self {
        let total = geometry.total_pages();
        assert!(total < NONE as u64, "geometry too large for 32-bit PPN encoding");
        assert!(lpn_count < NONE as u64, "LPN space too large for 32-bit encoding");
        assert!(lpn_count <= total, "logical space exceeds physical space");
        MappingTable {
            l2p: vec![NONE; lpn_count as usize],
            p2l: vec![NONE; total as usize],
            valid_per_block: vec![0; geometry.total_blocks() as usize],
            pages_per_block: geometry.pages,
            mapped: 0,
        }
    }

    /// Number of logical pages.
    #[must_use]
    pub fn lpn_count(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Number of currently mapped logical pages.
    #[must_use]
    pub fn mapped(&self) -> u64 {
        self.mapped
    }

    /// The physical page backing `lpn`, if mapped.
    #[must_use]
    pub fn lookup(&self, lpn: Lpn) -> Option<Ppn> {
        match self.l2p[lpn as usize] {
            NONE => None,
            p => Some(p as Ppn),
        }
    }

    /// The logical page stored at `ppn`, if the physical page is valid.
    #[must_use]
    pub fn lpn_of(&self, ppn: Ppn) -> Option<Lpn> {
        match self.p2l[ppn as usize] {
            NONE => None,
            l => Some(l as Lpn),
        }
    }

    /// True if the physical page holds live data.
    #[must_use]
    pub fn is_valid(&self, ppn: Ppn) -> bool {
        self.p2l[ppn as usize] != NONE
    }

    /// Valid pages in physical block `block` (linear block index).
    #[must_use]
    pub fn valid_in_block(&self, block: usize) -> u32 {
        self.valid_per_block[block]
    }

    /// Maps `lpn` to the freshly programmed `ppn`, returning the
    /// now-invalid previous physical page (if any).
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is already valid (two LPNs on one physical page is
    /// an allocator bug).
    pub fn map_write(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn> {
        assert!(
            self.p2l[ppn as usize] == NONE,
            "PPN {ppn} programmed twice without erase"
        );
        let old = self.l2p[lpn as usize];
        if old != NONE {
            self.p2l[old as usize] = NONE;
            self.dec_valid(old as Ppn);
        } else {
            self.mapped += 1;
        }
        self.l2p[lpn as usize] = ppn as u32;
        self.p2l[ppn as usize] = lpn as u32;
        self.inc_valid(ppn);
        if old == NONE {
            None
        } else {
            Some(old as Ppn)
        }
    }

    /// Completes a GC copy of `lpn` from `src` to `dst`.
    ///
    /// If the host overwrote `lpn` while the copy was in flight (the
    /// mapping no longer points at `src`), the destination page is dead
    /// on arrival: it stays invalid and the mapping is untouched.
    /// Returns `true` if the copy took effect.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is already valid.
    pub fn complete_copy(&mut self, lpn: Lpn, src: Ppn, dst: Ppn) -> bool {
        assert!(
            self.p2l[dst as usize] == NONE,
            "copy destination {dst} already valid"
        );
        if self.l2p[lpn as usize] != src as u32 {
            return false; // stale copy
        }
        self.p2l[src as usize] = NONE;
        self.dec_valid(src);
        self.l2p[lpn as usize] = dst as u32;
        self.p2l[dst as usize] = lpn as u32;
        self.inc_valid(dst);
        true
    }

    /// Unmaps `lpn` (TRIM), invalidating its physical page.
    pub fn trim(&mut self, lpn: Lpn) -> Option<Ppn> {
        let old = self.l2p[lpn as usize];
        if old == NONE {
            return None;
        }
        self.l2p[lpn as usize] = NONE;
        self.p2l[old as usize] = NONE;
        self.dec_valid(old as Ppn);
        self.mapped -= 1;
        Some(old as Ppn)
    }

    /// Asserts block `block` holds no valid pages and resets it (erase).
    ///
    /// # Panics
    ///
    /// Panics if the block still has valid pages — erasing live data is a
    /// GC sequencing bug.
    pub fn erase_block(&mut self, block: usize) {
        assert_eq!(
            self.valid_per_block[block], 0,
            "erasing block {block} with valid pages"
        );
        // p2l entries are already NONE for invalid pages; nothing to clear.
    }

    /// Iterates the valid `(page offset, LPN)` pairs of block `block`.
    pub fn valid_pages_in_block(
        &self,
        block: usize,
    ) -> impl Iterator<Item = (u32, Lpn)> + '_ {
        let base = block as u64 * self.pages_per_block as u64;
        (0..self.pages_per_block).filter_map(move |off| {
            match self.p2l[(base + off as u64) as usize] {
                NONE => None,
                l => Some((off, l as Lpn)),
            }
        })
    }

    fn block_of(&self, ppn: Ppn) -> usize {
        (ppn / self.pages_per_block as u64) as usize
    }

    fn inc_valid(&mut self, ppn: Ppn) {
        let b = self.block_of(ppn);
        self.valid_per_block[b] += 1;
        debug_assert!(self.valid_per_block[b] <= self.pages_per_block);
    }

    fn dec_valid(&mut self, ppn: Ppn) {
        let b = self.block_of(ppn);
        debug_assert!(self.valid_per_block[b] > 0);
        self.valid_per_block[b] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (FlashGeometry, MappingTable) {
        let geo = FlashGeometry::tiny();
        let lpns = geo.total_pages() / 2;
        (geo, MappingTable::new(&geo, lpns))
    }

    #[test]
    fn write_then_lookup() {
        let (_, mut m) = table();
        assert_eq!(m.lookup(0), None);
        m.map_write(0, 5);
        assert_eq!(m.lookup(0), Some(5));
        assert_eq!(m.lpn_of(5), Some(0));
        assert!(m.is_valid(5));
        assert_eq!(m.mapped(), 1);
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let (geo, mut m) = table();
        m.map_write(0, 0);
        let old = m.map_write(0, geo.pages as u64); // next block
        assert_eq!(old, Some(0));
        assert!(!m.is_valid(0));
        assert_eq!(m.valid_in_block(0), 0);
        assert_eq!(m.valid_in_block(1), 1);
        assert_eq!(m.mapped(), 1);
    }

    #[test]
    #[should_panic(expected = "programmed twice")]
    fn double_program_panics() {
        let (_, mut m) = table();
        m.map_write(0, 3);
        m.map_write(1, 3);
    }

    #[test]
    fn copy_moves_mapping() {
        let (geo, mut m) = table();
        m.map_write(7, 1);
        let dst = geo.pages as u64 + 1;
        assert!(m.complete_copy(7, 1, dst));
        assert_eq!(m.lookup(7), Some(dst));
        assert!(!m.is_valid(1));
        assert!(m.is_valid(dst));
    }

    #[test]
    fn stale_copy_is_dropped() {
        let (geo, mut m) = table();
        m.map_write(7, 1);
        m.map_write(7, 2); // host overwrites while copy of PPN 1 in flight
        let dst = geo.pages as u64 + 1;
        assert!(!m.complete_copy(7, 1, dst));
        assert_eq!(m.lookup(7), Some(2));
        assert!(!m.is_valid(dst), "stale copy destination must stay invalid");
    }

    #[test]
    fn trim_unmaps() {
        let (_, mut m) = table();
        m.map_write(4, 9);
        assert_eq!(m.trim(4), Some(9));
        assert_eq!(m.trim(4), None);
        assert_eq!(m.lookup(4), None);
        assert!(!m.is_valid(9));
        assert_eq!(m.mapped(), 0);
    }

    #[test]
    fn valid_pages_iterator() {
        let (_, mut m) = table();
        m.map_write(0, 0);
        m.map_write(1, 2);
        let got: Vec<_> = m.valid_pages_in_block(0).collect();
        assert_eq!(got, vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn erase_requires_no_valid_pages() {
        let (_, mut m) = table();
        m.map_write(0, 0);
        m.trim(0);
        m.erase_block(0); // fine: no valid pages
    }

    #[test]
    #[should_panic(expected = "valid pages")]
    fn erase_with_valid_pages_panics() {
        let (_, mut m) = table();
        m.map_write(0, 0);
        m.erase_block(0);
    }

    #[test]
    #[should_panic(expected = "exceeds physical")]
    fn oversized_lpn_space_rejected() {
        let geo = FlashGeometry::tiny();
        let _ = MappingTable::new(&geo, geo.total_pages() + 1);
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// After any sequence of writes/overwrites, the mapping is a
            /// bijection between mapped LPNs and valid PPNs, and the
            /// per-block counters agree with the reverse map.
            #[test]
            fn mapping_stays_bijective(ops in proptest::collection::vec((0u64..32, 0u64..64), 1..200)) {
                let geo = FlashGeometry::tiny();
                let mut m = MappingTable::new(&geo, 32);
                let mut used = std::collections::HashSet::new();
                for (lpn, ppn_raw) in ops {
                    let ppn = ppn_raw % geo.total_pages();
                    if used.contains(&ppn) {
                        continue; // a real allocator never reuses before erase
                    }
                    used.insert(ppn);
                    m.map_write(lpn, ppn);
                }
                // forward implies reverse
                let mut valid_seen = vec![0u32; geo.total_blocks() as usize];
                for lpn in 0..32u64 {
                    if let Some(ppn) = m.lookup(lpn) {
                        prop_assert_eq!(m.lpn_of(ppn), Some(lpn));
                        valid_seen[(ppn / geo.pages as u64) as usize] += 1;
                    }
                }
                for b in 0..geo.total_blocks() as usize {
                    prop_assert_eq!(m.valid_in_block(b), valid_seen[b]);
                }
                // reverse implies forward
                for ppn in 0..geo.total_pages() {
                    if let Some(lpn) = m.lpn_of(ppn) {
                        prop_assert_eq!(m.lookup(lpn), Some(ppn));
                    }
                }
            }
        }
    }
}
