//! The decoupled flash controller (C_D) of Fig 4, composed.

use crate::{
    BufferPool, CommandQueue, EccConfig, EccEngine, RecycleBlockTable, SuperblockRemapTable,
};

/// One decoupled flash controller: the conventional controller's command
/// queue plus the dSSD additions — an integrated [`EccEngine`], the
/// decoupled buffer ([`BufferPool`]), and the dynamic-superblock hardware
/// ([`SuperblockRemapTable`] and [`RecycleBlockTable`], keyed by global
/// block index).
///
/// The controller is passive state, like every resource in this
/// reproduction; the event-driven world drives it. The network interface
/// and router live in `dssd-noc` (one terminal per controller).
///
/// # Example
///
/// ```
/// use dssd_ctrl::{CommandKind, DecoupledController, EccConfig};
///
/// let mut ctrl = DecoupledController::new(EccConfig::default(), 16, 1024, 4096);
/// let cmd = ctrl.queue_mut().submit(CommandKind::Copyback { dst_node: 3 });
/// assert!(ctrl.dbuf_mut().try_reserve());
/// ctrl.queue_mut().retire(cmd);
/// ctrl.dbuf_mut().release();
/// ```
#[derive(Debug, Clone)]
pub struct DecoupledController {
    queue: CommandQueue,
    ecc: EccEngine,
    dbuf: BufferPool,
    srt: SuperblockRemapTable<u32>,
    rbt: RecycleBlockTable<u32>,
}

impl DecoupledController {
    /// Creates an idle controller.
    ///
    /// * `ecc` — integrated ECC engine configuration.
    /// * `dbuf_pages` — decoupled-buffer capacity in pages.
    /// * `srt_entries` — superblock remapping table capacity.
    /// * `rbt_entries` — recycle block table capacity.
    #[must_use]
    pub fn new(
        ecc: EccConfig,
        dbuf_pages: usize,
        srt_entries: usize,
        rbt_entries: usize,
    ) -> Self {
        DecoupledController {
            queue: CommandQueue::new(),
            ecc: EccEngine::new(ecc),
            dbuf: BufferPool::new(dbuf_pages),
            srt: SuperblockRemapTable::new(srt_entries),
            rbt: RecycleBlockTable::new(rbt_entries),
        }
    }

    /// The command queue (read-only).
    #[must_use]
    pub fn queue(&self) -> &CommandQueue {
        &self.queue
    }

    /// The command queue.
    pub fn queue_mut(&mut self) -> &mut CommandQueue {
        &mut self.queue
    }

    /// The integrated ECC engine (read-only).
    #[must_use]
    pub fn ecc(&self) -> &EccEngine {
        &self.ecc
    }

    /// The integrated ECC engine.
    pub fn ecc_mut(&mut self) -> &mut EccEngine {
        &mut self.ecc
    }

    /// The decoupled buffer (read-only).
    #[must_use]
    pub fn dbuf(&self) -> &BufferPool {
        &self.dbuf
    }

    /// The decoupled buffer.
    pub fn dbuf_mut(&mut self) -> &mut BufferPool {
        &mut self.dbuf
    }

    /// The superblock remapping table (read-only).
    #[must_use]
    pub fn srt(&self) -> &SuperblockRemapTable<u32> {
        &self.srt
    }

    /// The superblock remapping table.
    pub fn srt_mut(&mut self) -> &mut SuperblockRemapTable<u32> {
        &mut self.srt
    }

    /// The recycle block table (read-only).
    #[must_use]
    pub fn rbt(&self) -> &RecycleBlockTable<u32> {
        &self.rbt
    }

    /// The recycle block table.
    pub fn rbt_mut(&mut self) -> &mut RecycleBlockTable<u32> {
        &mut self.rbt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommandKind, CopybackStage};

    #[test]
    fn composes_all_parts() {
        let mut c = DecoupledController::new(EccConfig::default(), 16, 1024, 64);
        assert_eq!(c.dbuf().capacity(), 16);
        assert_eq!(c.srt().capacity(), 1024);
        assert_eq!(c.rbt().capacity(), 64);
        let cmd = c.queue_mut().submit(CommandKind::Copyback { dst_node: 1 });
        assert_eq!(c.queue().stage(cmd), Some(CopybackStage::Issued));
        assert_eq!(c.ecc().checked(), 0);
    }

    #[test]
    fn tables_are_independent_per_controller() {
        let mut a = DecoupledController::new(EccConfig::default(), 16, 8, 8);
        let b = DecoupledController::new(EccConfig::default(), 16, 8, 8);
        a.srt_mut().insert(1, 2).unwrap();
        a.rbt_mut().deposit(9).unwrap();
        assert_eq!(a.srt().active_entries(), 1);
        assert_eq!(b.srt().active_entries(), 0);
        assert!(b.rbt().is_empty());
    }
}
