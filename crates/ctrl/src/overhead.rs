//! Area-overhead model reproducing the Sec 6.5 arithmetic.
//!
//! The paper costs the dSSD additions against a ≈64 mm² SSD controller
//! (Marvell Bravera-class):
//!
//! * an LDPC engine is 2.56 mm² in 90 nm ≈ 0.122 mm² in 14 nm → ≈1.5 %
//!   for 8 per-controller engines;
//! * a synthesized router is ≈0.02 mm² → ≈0.25 % for the 8-node fNoC;
//! * two 32 KB dBUFs per controller (1/8 of the baseline page buffers)
//!   → ≈2.46 %;
//! * the SRT is 32 bits per entry (≈4 kB at 1 k entries), the RBT is
//!   ≈32 bits, and RESERV pre-fill state is ≈1 kB per channel at 7 %
//!   provisioning.

/// LDPC decoder area in 14 nm, scaled from the 90 nm synthesis the paper
/// cites (2.56 mm² → 0.122 mm²).
pub const LDPC_AREA_MM2: f64 = 0.122;

/// Synthesized fNoC router area (45 nm FreePDK estimate).
pub const ROUTER_AREA_MM2: f64 = 0.02;

/// Reference SSD-controller die area the paper normalizes against.
pub const CONTROLLER_AREA_MM2: f64 = 64.0;

/// SRAM density used for the dBUF estimate, back-derived from the paper's
/// own 2.46 % figure for 8 × 2 × 32 KB of buffering.
pub const SRAM_MM2_PER_KIB: f64 = CONTROLLER_AREA_MM2 * 0.0246 / 512.0;

/// Per-figure area report for a dSSD configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Channels (= decoupled controllers = fNoC nodes).
    pub channels: usize,
    /// Total per-controller ECC engine area, mm².
    pub ecc_mm2: f64,
    /// Total router area, mm².
    pub routers_mm2: f64,
    /// Total dBUF SRAM area, mm².
    pub dbuf_mm2: f64,
    /// SRT bytes per controller.
    pub srt_bytes: usize,
    /// RBT bytes per controller (including RESERV pre-fill state).
    pub rbt_bytes: usize,
}

impl OverheadReport {
    /// Builds the report for `channels` decoupled controllers, each with
    /// `dbuf_kib` KiB of decoupled buffering and an SRT of `srt_entries`
    /// 32-bit entries. `reserved_fraction` is the RESERV provisioning
    /// ratio (0.0 for plain RECYCLED → a single 32-bit RBT register).
    #[must_use]
    pub fn new(
        channels: usize,
        dbuf_kib: usize,
        srt_entries: usize,
        reserved_fraction: f64,
    ) -> Self {
        let rbt_bytes = if reserved_fraction > 0.0 {
            // ≈1 KiB per channel at 7 %; scale linearly with the ratio.
            ((reserved_fraction / 0.07) * 1024.0).round() as usize
        } else {
            4
        };
        OverheadReport {
            channels,
            ecc_mm2: channels as f64 * LDPC_AREA_MM2,
            routers_mm2: channels as f64 * ROUTER_AREA_MM2,
            dbuf_mm2: channels as f64 * dbuf_kib as f64 * SRAM_MM2_PER_KIB,
            srt_bytes: srt_entries * 4,
            rbt_bytes,
        }
    }

    /// The paper's evaluated configuration: 8 channels, 2 × 32 KB dBUFs,
    /// 1 k-entry SRT, 7 % reservation.
    #[must_use]
    pub fn paper_config() -> Self {
        Self::new(8, 64, 1024, 0.07)
    }

    /// ECC area as a fraction of the controller die.
    #[must_use]
    pub fn ecc_fraction(&self) -> f64 {
        self.ecc_mm2 / CONTROLLER_AREA_MM2
    }

    /// Router area as a fraction of the controller die.
    #[must_use]
    pub fn router_fraction(&self) -> f64 {
        self.routers_mm2 / CONTROLLER_AREA_MM2
    }

    /// dBUF area as a fraction of the controller die.
    #[must_use]
    pub fn dbuf_fraction(&self) -> f64 {
        self.dbuf_mm2 / CONTROLLER_AREA_MM2
    }

    /// Total added silicon as a fraction of the controller die.
    #[must_use]
    pub fn total_fraction(&self) -> f64 {
        self.ecc_fraction() + self.router_fraction() + self.dbuf_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce() {
        let r = OverheadReport::paper_config();
        // "approximately 1.5% overhead ... for the 8 channels"
        assert!((r.ecc_fraction() - 0.015).abs() < 0.001, "{}", r.ecc_fraction());
        // "approximately 0.25% area overhead"
        assert!((r.router_fraction() - 0.0025).abs() < 0.0005, "{}", r.router_fraction());
        // "an additional 2.46% area overhead"
        assert!((r.dbuf_fraction() - 0.0246).abs() < 0.0005, "{}", r.dbuf_fraction());
        // "the SRT table overhead is approximately 4kB"
        assert_eq!(r.srt_bytes, 4096);
        // "around 1KB per channel for 7%"
        assert_eq!(r.rbt_bytes, 1024);
    }

    #[test]
    fn recycled_only_rbt_is_tiny() {
        let r = OverheadReport::new(8, 64, 1024, 0.0);
        // "approximately 32 bits for each decoupled controller"
        assert_eq!(r.rbt_bytes, 4);
    }

    #[test]
    fn totals_scale_with_channels() {
        let r8 = OverheadReport::new(8, 64, 1024, 0.07);
        let r16 = OverheadReport::new(16, 64, 1024, 0.07);
        assert!((r16.total_fraction() / r8.total_fraction() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn total_stays_modest() {
        let r = OverheadReport::paper_config();
        assert!(r.total_fraction() < 0.05, "total {}", r.total_fraction());
    }
}
