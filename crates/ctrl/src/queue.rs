//! Controller command queue with staged copyback tracking.
//!
//! The paper (Sec 4.2): "the command queue keeps track of the commands;
//! for the copyback commands, a 'status' is also maintained to determine
//! which stage of the command is currently being executed — e.g., R
//! identifies that the read has been done, RE identifies that error
//! detection/correction has been done after the read".

use dssd_kernel::{Slab, SlabKey};

/// Identifier of a queued command, unique within one queue.
///
/// Packed [`SlabKey`] bits: the low 32 bits index the queue's slab slot
/// and the high 32 bits carry the slot generation, so a retired id never
/// aliases a later command that reuses the slot.
pub type CommandId = u64;

/// What a queued command does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Host read I/O.
    HostRead,
    /// Host write I/O.
    HostWrite,
    /// Block erase (GC).
    Erase,
    /// A (global) copyback: read at this controller, write at `dst_node`.
    Copyback {
        /// fNoC node of the destination controller (may equal the source
        /// for same-channel copies).
        dst_node: usize,
    },
}

/// Execution stage of a copyback command (the paper's status field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CopybackStage {
    /// Command accepted, read not yet complete.
    Issued,
    /// `R`: page read into the dBUF.
    ReadDone,
    /// `RE`: error detection/correction complete.
    EccDone,
    /// `N`: packetized and traversing the fNoC.
    InNetwork,
    /// `W`: write issued at the destination controller.
    WriteIssued,
    /// Copy complete; queue entry can be retired.
    Done,
}

impl CopybackStage {
    /// The stage that legally follows this one. Same-channel copies skip
    /// [`CopybackStage::InNetwork`] by advancing twice.
    #[must_use]
    pub fn next(self) -> CopybackStage {
        match self {
            CopybackStage::Issued => CopybackStage::ReadDone,
            CopybackStage::ReadDone => CopybackStage::EccDone,
            CopybackStage::EccDone => CopybackStage::InNetwork,
            CopybackStage::InNetwork => CopybackStage::WriteIssued,
            CopybackStage::WriteIssued | CopybackStage::Done => CopybackStage::Done,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    kind: CommandKind,
    stage: Option<CopybackStage>,
}

/// Per-controller command queue.
///
/// Tracks in-flight commands and, for copybacks, their execution stage.
/// The queue is bookkeeping: timing comes from the event-driven world
/// that drives it.
///
/// # Example
///
/// ```
/// use dssd_ctrl::{CommandQueue, CommandKind, CopybackStage};
///
/// let mut q = CommandQueue::new();
/// let id = q.submit(CommandKind::Copyback { dst_node: 3 });
/// assert_eq!(q.stage(id), Some(CopybackStage::Issued));
/// q.advance(id); // R
/// q.advance(id); // RE
/// assert_eq!(q.stage(id), Some(CopybackStage::EccDone));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommandQueue {
    entries: Slab<Entry>,
    submitted: u64,
    retired: u64,
}

impl CommandQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        CommandQueue::default()
    }

    /// Enqueues a command and returns its id.
    pub fn submit(&mut self, kind: CommandKind) -> CommandId {
        self.submitted += 1;
        let stage = match kind {
            CommandKind::Copyback { .. } => Some(CopybackStage::Issued),
            _ => None,
        };
        self.entries.insert(Entry { kind, stage }).to_bits()
    }

    /// The kind of a queued command.
    #[must_use]
    pub fn kind(&self, id: CommandId) -> Option<CommandKind> {
        self.entries.get(SlabKey::from_bits(id)).map(|e| e.kind)
    }

    /// The copyback stage of a queued command (`None` for non-copybacks
    /// or unknown ids).
    #[must_use]
    pub fn stage(&self, id: CommandId) -> Option<CopybackStage> {
        self.entries.get(SlabKey::from_bits(id)).and_then(|e| e.stage)
    }

    /// Advances a copyback to its next stage and returns the new stage.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a queued copyback — stage transitions on
    /// retired or non-copyback commands are simulator bugs.
    pub fn advance(&mut self, id: CommandId) -> CopybackStage {
        let e = self
            .entries
            .get_mut(SlabKey::from_bits(id))
            .expect("advance on unknown command");
        let stage = e.stage.expect("advance on non-copyback command");
        let next = stage.next();
        e.stage = Some(next);
        next
    }

    /// Removes a completed command.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not queued.
    pub fn retire(&mut self, id: CommandId) {
        self.entries
            .remove(SlabKey::from_bits(id))
            .expect("retire on unknown command");
        self.retired += 1;
    }

    /// Commands currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no command is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of in-flight copybacks at or past `stage`.
    #[must_use]
    pub fn copybacks_at_least(&self, stage: CopybackStage) -> usize {
        self.entries
            .iter()
            .filter(|(_, e)| e.stage.is_some_and(|s| s >= stage))
            .count()
    }

    /// Total commands ever submitted.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total commands retired.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copyback_walks_all_stages() {
        let mut q = CommandQueue::new();
        let id = q.submit(CommandKind::Copyback { dst_node: 1 });
        let expected = [
            CopybackStage::ReadDone,
            CopybackStage::EccDone,
            CopybackStage::InNetwork,
            CopybackStage::WriteIssued,
            CopybackStage::Done,
        ];
        for want in expected {
            assert_eq!(q.advance(id), want);
        }
        assert_eq!(q.advance(id), CopybackStage::Done); // idempotent at end
        q.retire(id);
        assert!(q.is_empty());
    }

    #[test]
    fn io_commands_have_no_stage() {
        let mut q = CommandQueue::new();
        let id = q.submit(CommandKind::HostWrite);
        assert_eq!(q.stage(id), None);
        assert_eq!(q.kind(id), Some(CommandKind::HostWrite));
        q.retire(id);
    }

    #[test]
    #[should_panic(expected = "non-copyback")]
    fn advance_io_panics() {
        let mut q = CommandQueue::new();
        let id = q.submit(CommandKind::HostRead);
        q.advance(id);
    }

    #[test]
    #[should_panic(expected = "unknown command")]
    fn retire_twice_panics() {
        let mut q = CommandQueue::new();
        let id = q.submit(CommandKind::Erase);
        q.retire(id);
        q.retire(id);
    }

    #[test]
    fn counts_in_flight_copybacks_by_stage() {
        let mut q = CommandQueue::new();
        let a = q.submit(CommandKind::Copyback { dst_node: 0 });
        let b = q.submit(CommandKind::Copyback { dst_node: 1 });
        let _c = q.submit(CommandKind::HostRead);
        q.advance(a); // R
        q.advance(a); // RE
        q.advance(b); // R
        assert_eq!(q.copybacks_at_least(CopybackStage::ReadDone), 2);
        assert_eq!(q.copybacks_at_least(CopybackStage::EccDone), 1);
        assert_eq!(q.copybacks_at_least(CopybackStage::InNetwork), 0);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn ids_are_unique() {
        let mut q = CommandQueue::new();
        let a = q.submit(CommandKind::HostRead);
        let b = q.submit(CommandKind::HostRead);
        assert_ne!(a, b);
        assert_eq!(q.submitted(), 2);
        assert_eq!(q.retired(), 0);
    }

    #[test]
    fn retired_ids_never_alias_slot_reuse() {
        let mut q = CommandQueue::new();
        let a = q.submit(CommandKind::HostRead);
        q.retire(a);
        // The new command reuses a's slab slot but carries a fresh
        // generation, so the retired id must not resolve to it.
        let b = q.submit(CommandKind::HostWrite);
        assert_ne!(a, b);
        assert_eq!(q.kind(a), None);
        assert_eq!(q.kind(b), Some(CommandKind::HostWrite));
        assert_eq!(q.retired(), 1);
    }
}
