//! Page-granular buffer pools (page buffers and the decoupled dBUF).

/// A fixed-capacity pool of page slots.
///
/// Models both the conventional per-controller page buffers (sized to one
/// page per way, ×2 for multi-plane double buffering, per the paper's
/// footnote) and the decoupled buffer (dBUF) that stages flash-to-flash
/// copyback pages. Exhaustion is the back-pressure signal: a copyback
/// read is not issued until a dBUF slot is reserved.
///
/// # Example
///
/// ```
/// use dssd_ctrl::BufferPool;
///
/// let mut dbuf = BufferPool::new(16);
/// assert!(dbuf.try_reserve());
/// assert_eq!(dbuf.in_use(), 1);
/// dbuf.release();
/// assert_eq!(dbuf.in_use(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    in_use: usize,
    high_water: usize,
    rejections: u64,
    reservations: u64,
}

impl BufferPool {
    /// Creates a pool with `capacity` page slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one slot");
        BufferPool {
            capacity,
            in_use: 0,
            high_water: 0,
            rejections: 0,
            reservations: 0,
        }
    }

    /// Total slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently reserved.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Free slots.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// True if no slot is free.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.in_use == self.capacity
    }

    /// Reserves one slot; returns false (and counts a rejection) if full.
    pub fn try_reserve(&mut self) -> bool {
        if self.is_full() {
            self.rejections += 1;
            return false;
        }
        self.in_use += 1;
        self.reservations += 1;
        self.high_water = self.high_water.max(self.in_use);
        true
    }

    /// Releases one slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is reserved (a release/reserve imbalance is a
    /// simulator bug, not a runtime condition).
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "release without reserve");
        self.in_use -= 1;
    }

    /// Highest simultaneous occupancy observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of failed reservations (back-pressure events).
    #[must_use]
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Number of successful reservations.
    #[must_use]
    pub fn reservations(&self) -> u64 {
        self.reservations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_until_full() {
        let mut p = BufferPool::new(2);
        assert!(p.try_reserve());
        assert!(p.try_reserve());
        assert!(p.is_full());
        assert!(!p.try_reserve());
        assert_eq!(p.rejections(), 1);
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn release_frees_slot() {
        let mut p = BufferPool::new(1);
        assert!(p.try_reserve());
        p.release();
        assert!(p.try_reserve());
        assert_eq!(p.reservations(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut p = BufferPool::new(4);
        p.try_reserve();
        p.try_reserve();
        p.try_reserve();
        p.release();
        p.release();
        assert_eq!(p.high_water(), 3);
        assert_eq!(p.in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "release without reserve")]
    fn unbalanced_release_panics() {
        BufferPool::new(1).release();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = BufferPool::new(0);
    }
}
