//! Dynamic-superblock hardware tables: the recycle block table (RBT) and
//! the superblock remapping table (SRT) of Sec 5.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Identity of one sub-block within a decoupled controller's channel.
///
/// Matches the paper's SRT entry layout: 7 bits select the die and 9 bits
/// the block, so one sub-block id packs into 16 bits and one remapping
/// entry (source + destination) into 32 bits.
///
/// # Example
///
/// ```
/// use dssd_ctrl::SubBlockId;
/// let id = SubBlockId::new(3, 100);
/// assert_eq!(id.die(), 3);
/// assert_eq!(id.block(), 100);
/// assert_eq!(SubBlockId::from_bits(id.to_bits()), id);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubBlockId(u16);

impl SubBlockId {
    /// Creates an id from a die (< 128) and block (< 512) number.
    ///
    /// # Panics
    ///
    /// Panics if either field exceeds its bit budget.
    #[must_use]
    pub fn new(die: u16, block: u16) -> Self {
        assert!(die < 128, "die {die} exceeds 7 bits");
        assert!(block < 512, "block {block} exceeds 9 bits");
        SubBlockId((die << 9) | block)
    }

    /// The die field.
    #[must_use]
    pub fn die(self) -> u16 {
        self.0 >> 9
    }

    /// The block field.
    #[must_use]
    pub fn block(self) -> u16 {
        self.0 & 0x1FF
    }

    /// The packed 16-bit representation.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Reconstructs an id from its packed representation.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        SubBlockId(bits)
    }
}

impl fmt::Display for SubBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}b{}", self.die(), self.block())
    }
}

/// Error returned when a bounded hardware table has no free entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull {
    /// The table's entry capacity.
    pub capacity: usize,
}

impl fmt::Display for TableFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hardware table full ({} entries)", self.capacity)
    }
}

impl Error for TableFull {}

/// The recycle block table: a per-controller pool of still-good
/// sub-blocks salvaged from dead superblocks (Sec 5.1).
///
/// "The RBT is effectively a recycling bin of blocks that can be recycled
/// and used as part of a dynamic superblock." Reservation-based operation
/// (Sec 5.3) pre-fills the bin with provisioned blocks.
///
/// # Example
///
/// ```
/// use dssd_ctrl::{RecycleBlockTable, SubBlockId};
///
/// let mut rbt = RecycleBlockTable::new(8);
/// rbt.deposit(SubBlockId::new(0, 5)).unwrap();
/// assert_eq!(rbt.len(), 1);
/// assert_eq!(rbt.take(), Some(SubBlockId::new(0, 5)));
/// assert!(rbt.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RecycleBlockTable<K = SubBlockId> {
    pool: VecDeque<K>,
    capacity: usize,
    deposited: u64,
    taken: u64,
}

impl<K: Copy + PartialEq> RecycleBlockTable<K> {
    /// Creates an empty table with room for `capacity` recycled blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RBT needs at least one entry");
        RecycleBlockTable {
            pool: VecDeque::new(),
            capacity,
            deposited: 0,
            taken: 0,
        }
    }

    /// Creates a table pre-filled with `reserved` blocks — the
    /// reservation-based recycled superblock of Sec 5.3.
    #[must_use]
    pub fn with_reserved<I: IntoIterator<Item = K>>(capacity: usize, reserved: I) -> Self {
        let mut t = Self::new(capacity);
        for b in reserved {
            t.deposit(b).expect("reserved blocks exceed RBT capacity");
        }
        t
    }

    /// Adds a salvaged sub-block to the recycling bin.
    ///
    /// # Errors
    ///
    /// Returns [`TableFull`] if the table is at capacity (the block is
    /// then simply not recycled, as real hardware would drop it).
    pub fn deposit(&mut self, block: K) -> Result<(), TableFull> {
        if self.pool.len() >= self.capacity {
            return Err(TableFull { capacity: self.capacity });
        }
        self.pool.push_back(block);
        self.deposited += 1;
        Ok(())
    }

    /// Takes the oldest recycled block, if any.
    pub fn take(&mut self) -> Option<K> {
        let b = self.pool.pop_front();
        if b.is_some() {
            self.taken += 1;
        }
        b
    }

    /// Recycled blocks currently available.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True if no recycled block is available.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of deposits.
    #[must_use]
    pub fn deposited(&self) -> u64 {
        self.deposited
    }

    /// Lifetime count of successful takes.
    #[must_use]
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// True if `block` is currently in the bin.
    #[must_use]
    pub fn contains(&self, block: K) -> bool {
        self.pool.contains(&block)
    }
}

/// The superblock remapping table: bounded hardware map from an
/// FTL-visible sub-block to the recycled sub-block actually backing it
/// (Sec 5.1–5.2).
///
/// "Any commands destined for \[the dead sub-block\] are internally
/// remapped"; the FTL never sees the table. Each entry is 32 bits
/// (16-bit source + 16-bit destination), so a 1 k-entry SRT is the
/// paper's ≈4 kB table.
///
/// # Example
///
/// ```
/// use dssd_ctrl::{SuperblockRemapTable, SubBlockId};
///
/// let mut srt = SuperblockRemapTable::new(1024);
/// let dead = SubBlockId::new(1, 3);
/// let spare = SubBlockId::new(0, 7);
/// srt.insert(dead, spare).unwrap();
/// assert_eq!(srt.resolve(dead), spare);        // remapped
/// assert_eq!(srt.resolve(spare), spare);       // untouched blocks pass through
/// assert_eq!(srt.size_bytes(), 4096);
/// ```
///
/// Backed by a sorted `Vec` of `(src, dst)` pairs with binary-search
/// lookup — the table is bounded and small (≤ a few k entries), so a
/// dense sorted array beats a hash map on the datapath and keeps
/// iteration order deterministic.
#[derive(Debug, Clone)]
pub struct SuperblockRemapTable<K = SubBlockId> {
    entries: Vec<(K, K)>,
    capacity: usize,
    lookups: u64,
    hits: u64,
}

impl<K: Copy + Ord> SuperblockRemapTable<K> {
    /// Creates an empty table with room for `capacity` remappings.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SRT needs at least one entry");
        SuperblockRemapTable {
            entries: Vec::new(),
            capacity,
            lookups: 0,
            hits: 0,
        }
    }

    fn position(&self, src: K) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&src, |&(s, _)| s)
    }

    /// Inserts (or updates) the remapping `src → dst`.
    ///
    /// # Errors
    ///
    /// Returns [`TableFull`] when inserting a *new* source into a full
    /// table. Updating an existing source always succeeds (the hardware
    /// rewrites the entry in place when a recycled destination itself
    /// dies and is replaced).
    pub fn insert(&mut self, src: K, dst: K) -> Result<(), TableFull> {
        match self.position(src) {
            Ok(i) => self.entries[i].1 = dst,
            Err(i) => {
                if self.entries.len() >= self.capacity {
                    return Err(TableFull { capacity: self.capacity });
                }
                self.entries.insert(i, (src, dst));
            }
        }
        Ok(())
    }

    /// Removes a remapping, returning its destination if present.
    pub fn remove(&mut self, src: K) -> Option<K> {
        match self.position(src) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The destination backing `src`, if remapped.
    #[must_use]
    pub fn lookup(&self, src: K) -> Option<K> {
        self.position(src).ok().map(|i| self.entries[i].1)
    }

    /// Translates an access: remapped sources go to their destination,
    /// everything else passes through unchanged. Updates hit statistics,
    /// modeling the on-datapath table consultation.
    pub fn resolve(&mut self, src: K) -> K {
        self.lookups += 1;
        match self.position(src) {
            Ok(i) => {
                self.hits += 1;
                self.entries[i].1
            }
            Err(_) => src,
        }
    }

    /// Active (valid) remapping entries — the quantity plotted in Fig 16b.
    #[must_use]
    pub fn active_entries(&self) -> usize {
        self.entries.len()
    }

    /// True if no remapping is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if no new source can be inserted.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Hardware size: 32 bits per entry of capacity.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.capacity * 4
    }

    /// Datapath lookups performed.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that hit a remapping.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Iterates over active `(src, dst)` remappings in source order.
    pub fn iter(&self) -> impl Iterator<Item = (K, K)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subblock_packs_paper_layout() {
        let id = SubBlockId::new(127, 511);
        assert_eq!(id.die(), 127);
        assert_eq!(id.block(), 511);
        assert_eq!(id.to_bits(), 0xFFFF);
        assert_eq!(format!("{}", SubBlockId::new(2, 9)), "d2b9");
    }

    #[test]
    #[should_panic(expected = "exceeds 7 bits")]
    fn oversized_die_rejected() {
        let _ = SubBlockId::new(128, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 9 bits")]
    fn oversized_block_rejected() {
        let _ = SubBlockId::new(0, 512);
    }

    #[test]
    fn rbt_is_fifo() {
        let mut rbt = RecycleBlockTable::new(4);
        rbt.deposit(SubBlockId::new(0, 1)).unwrap();
        rbt.deposit(SubBlockId::new(0, 2)).unwrap();
        assert_eq!(rbt.take(), Some(SubBlockId::new(0, 1)));
        assert_eq!(rbt.take(), Some(SubBlockId::new(0, 2)));
        assert_eq!(rbt.take(), None);
        assert_eq!(rbt.deposited(), 2);
        assert_eq!(rbt.taken(), 2);
    }

    #[test]
    fn rbt_rejects_overflow() {
        let mut rbt = RecycleBlockTable::new(1);
        rbt.deposit(SubBlockId::new(0, 1)).unwrap();
        let err = rbt.deposit(SubBlockId::new(0, 2)).unwrap_err();
        assert_eq!(err.capacity, 1);
        assert!(err.to_string().contains("full"));
    }

    #[test]
    fn rbt_reservation_prefill() {
        let reserved = (0..5).map(|b| SubBlockId::new(0, b));
        let rbt = RecycleBlockTable::with_reserved(16, reserved);
        assert_eq!(rbt.len(), 5);
        assert!(rbt.contains(SubBlockId::new(0, 3)));
    }

    #[test]
    fn srt_resolves_and_passes_through() {
        let mut srt = SuperblockRemapTable::new(4);
        let (a, b, c) = (
            SubBlockId::new(0, 1),
            SubBlockId::new(0, 2),
            SubBlockId::new(0, 3),
        );
        srt.insert(a, b).unwrap();
        assert_eq!(srt.resolve(a), b);
        assert_eq!(srt.resolve(c), c);
        assert_eq!(srt.lookups(), 2);
        assert_eq!(srt.hits(), 1);
    }

    #[test]
    fn srt_capacity_enforced_but_updates_allowed() {
        let mut srt = SuperblockRemapTable::new(1);
        let (a, b, c, d) = (
            SubBlockId::new(0, 1),
            SubBlockId::new(0, 2),
            SubBlockId::new(0, 3),
            SubBlockId::new(0, 4),
        );
        srt.insert(a, b).unwrap();
        assert!(srt.is_full());
        assert!(srt.insert(c, d).is_err());
        srt.insert(a, d).unwrap(); // in-place update
        assert_eq!(srt.lookup(a), Some(d));
        assert_eq!(srt.active_entries(), 1);
    }

    #[test]
    fn srt_remove() {
        let mut srt = SuperblockRemapTable::new(4);
        let (a, b) = (SubBlockId::new(1, 1), SubBlockId::new(1, 2));
        srt.insert(a, b).unwrap();
        assert_eq!(srt.remove(a), Some(b));
        assert_eq!(srt.remove(a), None);
        assert!(srt.is_empty());
    }

    #[test]
    fn srt_size_matches_paper() {
        // "Assuming each SRT entry is 32 bits … the SRT table overhead is
        // approximately 4kB" for 1k entries.
        assert_eq!(SuperblockRemapTable::<SubBlockId>::new(1024).size_bytes(), 4096);
    }

    #[test]
    fn srt_iter_reports_entries() {
        let mut srt = SuperblockRemapTable::new(4);
        srt.insert(SubBlockId::new(0, 1), SubBlockId::new(0, 2)).unwrap();
        srt.insert(SubBlockId::new(0, 3), SubBlockId::new(0, 4)).unwrap();
        let mut got: Vec<_> = srt.iter().collect();
        got.sort();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (SubBlockId::new(0, 1), SubBlockId::new(0, 2)));
    }
}
