//! ECC engine model (LDPC-class).

use dssd_kernel::{BandwidthServer, SimSpan, SimTime, Transfer};

/// ECC check/correction outcome for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccVerdict {
    /// No bit errors detected.
    Clean,
    /// Errors detected and corrected.
    Corrected,
    /// Raw bit error rate beyond the code's correction strength: the page
    /// (and, for superblock FTLs, its superblock) must be retired.
    Uncorrectable,
}

/// ECC engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccConfig {
    /// Decode throughput in bytes/second (pipeline rate).
    pub bytes_per_sec: u64,
    /// Fixed decode latency per page (pipeline depth).
    pub latency: SimSpan,
    /// RBER below which pages are statistically error-free.
    pub clean_rber: f64,
    /// Maximum RBER the code can correct (LDPC-class ≈ 1e-2).
    pub correctable_rber: f64,
}

impl Default for EccConfig {
    fn default() -> Self {
        // An LDPC decoder comfortably outruns a 1 GB/s flash channel; the
        // fixed latency models pipeline depth.
        EccConfig {
            bytes_per_sec: 4_000_000_000,
            latency: SimSpan::from_us(2),
            clean_rber: 1e-4,
            correctable_rber: 1e-2,
        }
    }
}

/// A per-controller ECC engine: a FIFO decode pipeline plus a
/// strength-threshold error model.
///
/// In the baseline SSD the engine sits on the system-bus side; in the
/// decoupled SSD each controller integrates one so GC pages never cross
/// the bus for checking (Fig 4 step ④).
///
/// # Example
///
/// ```
/// use dssd_ctrl::{EccEngine, EccConfig, EccVerdict};
/// use dssd_kernel::SimTime;
///
/// let mut ecc = EccEngine::new(EccConfig::default());
/// let t = ecc.decode(SimTime::ZERO, 4096);
/// assert!(t.done > t.start);
/// assert_eq!(ecc.check(1e-5), EccVerdict::Clean);
/// assert_eq!(ecc.check(1e-3), EccVerdict::Corrected);
/// assert_eq!(ecc.check(5e-2), EccVerdict::Uncorrectable);
/// ```
#[derive(Debug, Clone)]
pub struct EccEngine {
    config: EccConfig,
    pipeline: BandwidthServer,
    checked: u64,
    corrected: u64,
    uncorrectable: u64,
}

impl EccEngine {
    /// Creates an idle engine.
    #[must_use]
    pub fn new(config: EccConfig) -> Self {
        EccEngine {
            pipeline: BandwidthServer::new(config.bytes_per_sec, config.latency),
            config,
            checked: 0,
            corrected: 0,
            uncorrectable: 0,
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EccConfig {
        &self.config
    }

    /// Queues one page of `bytes` for decoding at `now`; returns the
    /// occupancy interval (FIFO with any pages already queued).
    pub fn decode(&mut self, now: SimTime, bytes: u64) -> Transfer {
        self.pipeline.enqueue(now, bytes, 0)
    }

    /// [`EccEngine::decode`] with traffic-class attribution (host I/O vs
    /// GC), matching the bus servers' accounting.
    pub fn decode_as(&mut self, now: SimTime, bytes: u64, class: usize) -> Transfer {
        self.pipeline.enqueue(now, bytes, class)
    }

    /// Decode-pipeline busy time attributed to one traffic class.
    #[must_use]
    pub fn class_busy(&self, class: usize) -> SimSpan {
        self.pipeline.class_stats(class).busy
    }

    /// Classifies a page by its raw bit error rate.
    pub fn check(&mut self, rber: f64) -> EccVerdict {
        self.checked += 1;
        if rber >= self.config.correctable_rber {
            self.uncorrectable += 1;
            EccVerdict::Uncorrectable
        } else if rber >= self.config.clean_rber {
            self.corrected += 1;
            EccVerdict::Corrected
        } else {
            EccVerdict::Clean
        }
    }

    /// Pages checked so far.
    #[must_use]
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Pages that needed correction.
    #[must_use]
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Pages beyond correction strength.
    #[must_use]
    pub fn uncorrectable(&self) -> u64 {
        self.uncorrectable
    }

    /// Total decode-pipeline busy time.
    #[must_use]
    pub fn busy_total(&self) -> SimSpan {
        self.pipeline.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_serializes_fifo() {
        let mut e = EccEngine::new(EccConfig::default());
        let a = e.decode(SimTime::ZERO, 4096);
        let b = e.decode(SimTime::ZERO, 4096);
        assert_eq!(b.start, a.done);
    }

    #[test]
    fn decode_latency_includes_pipeline_depth() {
        let cfg = EccConfig { latency: SimSpan::from_us(2), ..EccConfig::default() };
        let mut e = EccEngine::new(cfg);
        let t = e.decode(SimTime::ZERO, 4096);
        let xfer = SimSpan::for_transfer(4096, cfg.bytes_per_sec);
        assert_eq!(t.service(), SimSpan::from_us(2) + xfer);
    }

    #[test]
    fn verdict_thresholds() {
        let mut e = EccEngine::new(EccConfig::default());
        assert_eq!(e.check(0.0), EccVerdict::Clean);
        assert_eq!(e.check(9.9e-5), EccVerdict::Clean);
        assert_eq!(e.check(1e-4), EccVerdict::Corrected);
        assert_eq!(e.check(9.9e-3), EccVerdict::Corrected);
        assert_eq!(e.check(1e-2), EccVerdict::Uncorrectable);
        assert_eq!(e.checked(), 5);
        assert_eq!(e.corrected(), 2);
        assert_eq!(e.uncorrectable(), 1);
    }
}
