//! Decoupled flash controller (C_D) building blocks.
//!
//! The paper's decoupled controller (Fig 4) extends a conventional flash
//! controller with:
//!
//! * an integrated **ECC engine**, so pages read for garbage collection
//!   are checked/corrected *at the controller* instead of crossing the
//!   system bus to a shared front-end engine ([`EccEngine`]);
//! * a **decoupled buffer (dBUF)** that stages flash-to-flash pages
//!   without touching the page buffers used by host I/O ([`BufferPool`]);
//! * a **network interface + router** onto the fNoC (the network itself
//!   lives in `dssd-noc`);
//! * a **command queue** that tracks multi-stage copyback commands through
//!   their `R` (read done), `RE` (ECC done), `N` (in network) and `W`
//!   (write issued) states ([`CommandQueue`], [`CopybackStage`]);
//! * the dynamic-superblock hardware of Sec 5: the **recycle block table
//!   (RBT)** holding re-usable sub-blocks of dead superblocks and the
//!   **superblock remapping table (SRT)** holding sub-block remappings
//!   ([`RecycleBlockTable`], [`SuperblockRemapTable`]).
//!
//! The crate also reproduces the paper's Sec 6.5 area-overhead arithmetic
//! in [`overhead`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod controller;
mod ecc;
pub mod overhead;
mod queue;
mod tables;

pub use buffer::BufferPool;
pub use controller::DecoupledController;
pub use ecc::{EccConfig, EccEngine, EccVerdict};
pub use queue::{CommandId, CommandKind, CommandQueue, CopybackStage};
pub use tables::{RecycleBlockTable, SubBlockId, SuperblockRemapTable, TableFull};
