//! Zero-dependency benchmarks: one per reproduced table/figure, each
//! running a miniaturized version of that experiment's workload so
//! `cargo bench` doubles as a performance regression suite for the
//! simulator itself.
//!
//! The harness times each scenario with `std::time::Instant` (warmup +
//! fixed sample count, median/min/max reported) instead of pulling in
//! `criterion`, so the workspace resolves with no network access.
//! Benchmark names can be filtered by passing substrings:
//! `cargo bench --bench figures -- fig07 fig13`.
//!
//! Besides the console table, a machine-readable copy of every measured
//! scenario — median/min/max wall time plus events/sec where the
//! scenario reports its kernel event count — is written to
//! `results/bench.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dssd_bench::runner::{self, BenchRecord};
use dssd_bench::{perf_config, run_synthetic, run_trace};
use dssd_kernel::shard::demo;
use dssd_kernel::{Rng, SimSpan, SimTime};
use dssd_noc::traffic::{schedule, Pattern};
use dssd_noc::{drive_counted, Network, NocConfig, TopologyKind};
use dssd_reliability::{EnduranceConfig, EnduranceSim, SuperblockPolicy};
use dssd_ssd::{Architecture, SsdConfig, SsdSim};
use dssd_workload::{msr, AccessPattern, SyntheticWorkload};

const MS: u64 = 3;
const WARMUP: usize = 1;
const SAMPLES: usize = 5;

/// Event count of the most recent run, reported by scenarios that know
/// it (via [`note_events`]) so the JSON output can derive events/sec.
/// The count is deterministic across same-seed runs, so "last run" is
/// exact, not approximate.
static EVENTS: AtomicU64 = AtomicU64::new(0);

fn note_events(n: u64) {
    EVENTS.store(n, Ordering::Relaxed);
}

/// Times `f` (WARMUP discarded runs, then SAMPLES measured runs), prints
/// `name: median [min .. max]` and appends a [`BenchRecord`] to `out`.
/// A `std::hint::black_box` on the closure result keeps the work from
/// being optimized away.
fn bench<T>(out: &mut Vec<BenchRecord>, filter: &[String], name: &str, mut f: impl FnMut() -> T) {
    if !filter.is_empty() && !filter.iter().any(|p| name.contains(p.as_str())) {
        return;
    }
    EVENTS.store(0, Ordering::Relaxed);
    for _ in 0..WARMUP {
        std::hint::black_box(f());
    }
    let samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    let record = BenchRecord::from_samples(name, &samples, EVENTS.load(Ordering::Relaxed));
    println!(
        "{name:<40} {:>10.3} ms  [{:.3} .. {:.3}]",
        record.median_ms, record.min_ms, record.max_ms,
    );
    out.push(record);
}

fn synthetic(arch: Architecture, pages: u32, hit: f64) -> f64 {
    synthetic_fx(arch, pages, hit, true)
}

/// [`synthetic`] with the flash-side express path set explicitly, for
/// the A/B rows: `express = false` is the unmodified one-event-at-a-time
/// reference engine, `true` (the default everywhere else) adds the
/// flash-leg chain walk and quiet-router skips. Reports are identical
/// either way; only wall time differs.
fn synthetic_fx(arch: Architecture, pages: u32, hit: f64, express: bool) -> f64 {
    let mut cfg = perf_config(arch);
    cfg.gc_continuous = true;
    cfg.flash_express = express;
    let s = run_synthetic(cfg, AccessPattern::Random, pages, 0.0, hit, SimSpan::from_ms(MS));
    note_events(s.events);
    s.io_gbps
}

/// [`synthetic`] on the sharded engine: `shards > 1` splits the
/// future-event list across per-shard queues merged in exact global
/// order (DESIGN.md §14). Reports are byte-identical to `shards = 1`;
/// only wall time differs.
fn synthetic_sharded(arch: Architecture, pages: u32, hit: f64, shards: usize) -> f64 {
    let mut cfg = perf_config(arch).with_shards(shards);
    cfg.gc_continuous = true;
    let s = run_synthetic(cfg, AccessPattern::Random, pages, 0.0, hit, SimSpan::from_ms(MS));
    note_events(s.events);
    s.io_gbps
}

fn main() {
    // `cargo bench` forwards flags like `--bench`; keep only bare
    // substring patterns as name filters.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let f = &filter;
    let mut records: Vec<BenchRecord> = Vec::new();

    bench(&mut records, f, "table1_config_build", || {
        SsdSim::new(SsdConfig::test_tiny(Architecture::DssdFnoc))
    });

    bench(&mut records, f, "fig02_timeline_baseline", || {
        let (series, first_gc, events) =
            dssd_bench::run_timeline(perf_config(Architecture::Baseline), 8, SimSpan::from_ms(MS));
        note_events(events);
        (series, first_gc)
    });

    for arch in Architecture::all() {
        bench(&mut records, f, &format!("fig07_architectures/{}", arch.label()), || {
            synthetic(arch, 8, 0.0)
        });
    }

    // Flash-side express A/B partner for the dSSD_f row above (which
    // runs with the default `flash_express = true`): the same point on
    // the unmodified event-at-a-time engine. perf_guard gates both rows,
    // and their events/sec ratio in `results/bench.json` is the measured
    // express speedup on a flash-dominated point.
    bench(&mut records, f, "fig07_architectures/dSSD_f_no_express", || {
        synthetic_fx(Architecture::DssdFnoc, 8, 0.0, false)
    });

    // Sharded-engine A/B partners for the same point: the future-event
    // list split across 2 / 4 per-shard queues, merged in exact global
    // order (reports identical; DESIGN.md §14). Their events/sec ratio
    // against the dSSD_f row is the sharding overhead or speedup on
    // this host — on a single-core runner the engine pins parallel
    // extraction off, so the ratio records pure bookkeeping overhead.
    for shards in [2usize, 4] {
        bench(&mut records, f, &format!("fig07_architectures/dSSD_f_shards{shards}"), || {
            synthetic_sharded(Architecture::DssdFnoc, 8, 0.0, shards)
        });
    }

    // A/B pair: the same fNoC-heavy point with the express path on
    // (default) and off, so `results/bench.json` records the express
    // speedup. Both runs produce identical reports; only the wall time
    // (and where the flit-level events are simulated) differs.
    for (tag, express) in [("express", true), ("no_express", false)] {
        bench(&mut records, f, &format!("fig08_bw_sweep_point/{tag}"), || {
            let mut cfg = perf_config(Architecture::DssdFnoc).with_onchip_factor(2.0);
            cfg.gc_continuous = true;
            cfg.noc = cfg.noc.with_express(express);
            let s = run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 0.0, SimSpan::from_ms(MS));
            note_events(s.events);
            s
        });
    }

    // The Fig 8 on-chip-factor sweep fanned out through the parallel
    // runner: jobs1 vs jobsN wall times in `results/bench.json` give the
    // sweep's multicore scaling, and the per-point summaries are
    // bit-identical either way (see `runner` tests). The five-architecture
    // sweep is deliberately NOT used here: its dSSD_f point holds ~99% of
    // the events, so by Amdahl's law extra cores could never show — every
    // factor point below is a full-rate dSSD_f run of comparable weight.
    for (tag, jobs) in [("jobs1", 1), ("jobsN", dssd_kernel::parallel::default_jobs())] {
        bench(&mut records, f, &format!("sweep_runner_fig08_factors/{tag}"), || {
            let points = runner::onchip_factor_sweep(
                Architecture::DssdFnoc,
                &[1.0, 1.25, 1.5, 2.0],
                SimSpan::from_ms(MS),
            );
            let out = runner::run_sweep(&points, jobs);
            note_events(out.iter().map(|o| o.summary.events).sum());
            out.len()
        });
    }

    bench(&mut records, f, "fig09_breakdown_run", || {
        synthetic(Architecture::DssdFnoc, 8, 0.0)
    });

    // Same flash-express A/B pairing as the fig07 dSSD_f rows: the
    // all-DRAM-hit point is NoC- and DRAM-leg-heavy, so it exercises the
    // chain walk on a different event mix.
    for (tag, express) in [("express", true), ("no_express", false)] {
        bench(&mut records, f, &format!("fig10_dram_hit_tails/{tag}"), || {
            synthetic_fx(Architecture::DssdFnoc, 8, 1.0, express)
        });
    }

    // Sharded A/B rows on the DRAM-hit mix (NoC- and central-event
    // heavy, so round-robined central events dominate placement).
    for shards in [2usize, 4] {
        bench(&mut records, f, &format!("fig10_dram_hit_tails/shards{shards}"), || {
            synthetic_sharded(Architecture::DssdFnoc, 8, 1.0, shards)
        });
    }

    let profile = msr::profile("prn_0").unwrap();
    bench(&mut records, f, "fig11_trace_replay", || {
        let s = run_trace(perf_config(Architecture::Baseline), profile, 20.0, SimSpan::from_ms(MS));
        note_events(s.events);
        s
    });

    // Same A/B pairing as fig08 (see above).
    for (tag, express) in [("express", true), ("no_express", false)] {
        bench(&mut records, f, &format!("fig12_noc_bandwidth_point/{tag}"), || {
            let mut cfg = perf_config(Architecture::DssdFnoc);
            cfg.gc_continuous = true;
            cfg.noc = cfg.noc.with_link_bandwidth(2_000_000_000).with_express(express);
            let s = run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 1.0, SimSpan::from_ms(MS));
            note_events(s.events);
            s
        });
    }

    for kind in [TopologyKind::Mesh1D, TopologyKind::Ring, TopologyKind::Crossbar] {
        bench(&mut records, f, &format!("fig13_topologies/{kind:?}"), || {
            let cfg = NocConfig::new(kind, 8).with_bisection_bandwidth(1_000_000_000);
            let mut rng = Rng::new(1);
            let pkts = schedule(
                8,
                Pattern::UniformRandom,
                100_000_000,
                4096,
                SimSpan::from_ms(1),
                &mut rng,
            );
            let mut net = Network::new(cfg);
            let (delivered, events) = drive_counted(&mut net, pkts);
            note_events(events);
            delivered.len()
        });
    }

    for policy in SuperblockPolicy::all() {
        bench(&mut records, f, &format!("fig14_endurance/{}", policy.label()), || {
            let report = EnduranceSim::new(EnduranceConfig::test_small()).run(policy);
            note_events(report.erase_ops);
            report
        });
    }

    bench(&mut records, f, "fig15_srt_remap_run", || {
        let mut cfg = perf_config(Architecture::DssdFnoc);
        cfg.srt_active_remaps = 256;
        let s = run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 0.0, SimSpan::from_ms(MS));
        note_events(s.events);
        s
    });

    bench(&mut records, f, "fig16_srt_capacity_run", || {
        let cfg = EnduranceConfig { srt_entries: 64, ..EnduranceConfig::test_small() };
        let report = EnduranceSim::new(cfg).run(SuperblockPolicy::Recycled);
        note_events(report.erase_ops);
        report
    });

    bench(&mut records, f, "write_cache_hot_set", || {
        let mut cfg = perf_config(Architecture::Baseline);
        cfg.write_cache_pages = Some(8192);
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::mixed(AccessPattern::Random, 8, 0.5).with_working_set(4096);
        sim.run_closed_loop(wl, SimSpan::from_ms(MS));
        note_events(sim.report().events_delivered);
        sim.report().requests_completed
    });

    bench(&mut records, f, "open_loop_replay", || {
        let mut cfg = perf_config(Architecture::DssdFnoc);
        cfg.gc_continuous = true;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8).bind(sim.ftl().lpn_count());
        let mut rng = Rng::new(5);
        let sched = dssd_workload::open_loop_schedule(wl, 50_000.0, SimSpan::from_ms(MS), &mut rng);
        sim.run_trace(sched, SimSpan::from_ms(MS));
        note_events(sim.report().events_delivered);
        sim.report().requests_completed
    });

    // The live service front-end over the same machine: two tenants
    // with QoS (rate limit + qd cap + backlog threshold), so the pacer,
    // WRR arbitration, and admission control are all on the timed path.
    // Guarded by perf_guard.py alongside fig08/fig12: the front-end is
    // a per-submission loop, so a slowdown here is a pacer regression
    // even when raw run_trace throughput is unchanged.
    bench(&mut records, f, "serve_two_tenant_qos", || {
        let spec = dssd_service::ServiceSpec::parse(
            "duration_ms 3\nseed 17\nbacklog 192\n\
             tenant a iops=120000 pages=4 read=0.3 rate=400000 burst=64 qd=48 weight=3\n\
             tenant b iops=80000 pages=1 read=0.9 rate=100000 burst=16 qd=16\n",
        )
        .expect("bench spec parses");
        let mut cfg = perf_config(Architecture::DssdFnoc);
        cfg.gc_continuous = true;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let report = dssd_service::serve(&spec, &mut sim);
        note_events(sim.report().events_delivered);
        report.completed()
    });

    // The kernel's truly-parallel barrier engine on its demo model (a
    // cleanly partitioned station farm with cross-shard forwards): one
    // worker per shard under conservative lookahead barriers, SPSC
    // mailboxes between them. Strong scaling — the same 1024 stations
    // split across 1 / 2 / 4 workers — so `shards1` is the serial
    // floor; on multi-core hosts the shards4 row shows the wall-clock
    // win the SSD-side sharded queue cannot (its handlers share one
    // state), while on a single core it records barrier overhead.
    for shards in [1usize, 2, 4] {
        bench(&mut records, f, &format!("shard_engine/shards{shards}"), || {
            let cfg = demo::DemoConfig {
                shards,
                stations: 1024 / shards,
                ..demo::DemoConfig::default()
            };
            let (digests, stats) = demo::run_engine(&cfg, SimTime::from_ns(10_000_000));
            note_events(stats.events);
            digests
        });
    }

    bench(&mut records, f, "event_queue_push_pop_10k", || {
        let mut q = dssd_kernel::EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime::from_ns(i * 37 % 5000), i);
        }
        let mut n = 0u64;
        while q.pop().is_some() {
            n += 1;
        }
        note_events(n);
        n
    });

    bench(&mut records, f, "workload_generation_10k", || {
        let mut w = SyntheticWorkload::writes(AccessPattern::Random, 8).bind(1 << 20);
        let mut rng = Rng::new(3);
        (0..10_000).map(|_| w.next_request(&mut rng).lpn).sum::<u64>()
    });

    // `cargo bench` sets the bench's cwd to the package dir; anchor the
    // output at the workspace root so every invocation writes the same
    // `results/bench.json`.
    let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("results/bench.json");
    match runner::write_bench_json(&path, "cargo bench --bench figures", &records) {
        Ok(()) => println!("\nwrote {} records to {}", records.len(), path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
