//! Criterion benchmarks: one per reproduced table/figure, each running a
//! miniaturized version of that experiment's workload so `cargo bench`
//! doubles as a performance regression suite for the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use dssd_bench::{perf_config, run_synthetic, run_trace};
use dssd_kernel::{Rng, SimSpan, SimTime};
use dssd_noc::traffic::{schedule, Pattern};
use dssd_noc::{drive, Network, NocConfig, TopologyKind};
use dssd_reliability::{EnduranceConfig, EnduranceSim, SuperblockPolicy};
use dssd_ssd::{Architecture, SsdConfig, SsdSim};
use dssd_workload::{msr, AccessPattern, SyntheticWorkload};

const MS: u64 = 3;

fn synthetic(arch: Architecture, pages: u32, hit: f64) -> f64 {
    let mut cfg = perf_config(arch);
    cfg.gc_continuous = true;
    run_synthetic(cfg, AccessPattern::Random, pages, 0.0, hit, SimSpan::from_ms(MS)).io_gbps
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_config_build", |b| {
        b.iter(|| SsdSim::new(SsdConfig::test_tiny(Architecture::DssdFnoc)))
    });
}

fn bench_fig02(c: &mut Criterion) {
    c.bench_function("fig02_timeline_baseline", |b| {
        b.iter(|| {
            dssd_bench::run_timeline(
                perf_config(Architecture::Baseline),
                8,
                SimSpan::from_ms(MS),
            )
        })
    });
}

fn bench_fig07(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_architectures");
    g.sample_size(10);
    for arch in Architecture::all() {
        g.bench_function(arch.label(), |b| b.iter(|| synthetic(arch, 8, 0.0)));
    }
    g.finish();
}

fn bench_fig08(c: &mut Criterion) {
    c.bench_function("fig08_bw_sweep_point", |b| {
        b.iter(|| {
            let mut cfg = perf_config(Architecture::DssdFnoc).with_onchip_factor(2.0);
            cfg.gc_continuous = true;
            run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 0.0, SimSpan::from_ms(MS))
        })
    });
}

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09_breakdown_run", |b| {
        b.iter(|| synthetic(Architecture::DssdFnoc, 8, 0.0))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_dram_hit_tails", |b| {
        b.iter(|| synthetic(Architecture::DssdFnoc, 8, 1.0))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let profile = msr::profile("prn_0").unwrap();
    c.bench_function("fig11_trace_replay", |b| {
        b.iter(|| {
            run_trace(
                perf_config(Architecture::Baseline),
                profile,
                20.0,
                SimSpan::from_ms(MS),
            )
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_noc_bandwidth_point", |b| {
        b.iter(|| {
            let mut cfg = perf_config(Architecture::DssdFnoc);
            cfg.gc_continuous = true;
            cfg.noc = cfg.noc.with_link_bandwidth(2_000_000_000);
            run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 1.0, SimSpan::from_ms(MS))
        })
    });
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_topologies");
    g.sample_size(10);
    for kind in [TopologyKind::Mesh1D, TopologyKind::Ring, TopologyKind::Crossbar] {
        g.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                let cfg = NocConfig::new(kind, 8).with_bisection_bandwidth(1_000_000_000);
                let mut rng = Rng::new(1);
                let pkts = schedule(
                    8,
                    Pattern::UniformRandom,
                    100_000_000,
                    4096,
                    SimSpan::from_ms(1),
                    &mut rng,
                );
                let mut net = Network::new(cfg);
                drive(&mut net, pkts).len()
            })
        });
    }
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_endurance");
    g.sample_size(10);
    for policy in SuperblockPolicy::all() {
        g.bench_function(policy.label(), |b| {
            b.iter(|| EnduranceSim::new(EnduranceConfig::test_small()).run(policy))
        });
    }
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15_srt_remap_run", |b| {
        b.iter(|| {
            let mut cfg = perf_config(Architecture::DssdFnoc);
            cfg.srt_active_remaps = 256;
            run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 0.0, SimSpan::from_ms(MS))
        })
    });
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16_srt_capacity_run", |b| {
        b.iter(|| {
            let cfg = EnduranceConfig { srt_entries: 64, ..EnduranceConfig::test_small() };
            EnduranceSim::new(cfg).run(SuperblockPolicy::Recycled)
        })
    });
}

fn bench_extensions(c: &mut Criterion) {
    c.bench_function("write_cache_hot_set", |b| {
        b.iter(|| {
            let mut cfg = perf_config(Architecture::Baseline);
            cfg.write_cache_pages = Some(8192);
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::mixed(AccessPattern::Random, 8, 0.5)
                .with_working_set(4096);
            sim.run_closed_loop(wl, SimSpan::from_ms(MS));
            sim.report().requests_completed
        })
    });
    c.bench_function("open_loop_replay", |b| {
        b.iter(|| {
            let mut cfg = perf_config(Architecture::DssdFnoc);
            cfg.gc_continuous = true;
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8)
                .bind(sim.ftl().lpn_count());
            let mut rng = Rng::new(5);
            let sched = dssd_workload::open_loop_schedule(
                wl,
                50_000.0,
                SimSpan::from_ms(MS),
                &mut rng,
            );
            sim.run_trace(sched, SimSpan::from_ms(MS));
            sim.report().requests_completed
        })
    });
}

fn bench_kernel_primitives(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = dssd_kernel::EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_ns(i * 37 % 5000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    c.bench_function("workload_generation_10k", |b| {
        b.iter(|| {
            let mut w = SyntheticWorkload::writes(AccessPattern::Random, 8).bind(1 << 20);
            let mut rng = Rng::new(3);
            (0..10_000).map(|_| w.next_request(&mut rng).lpn).sum::<u64>()
        })
    });
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig02,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_extensions,
    bench_kernel_primitives,
);
criterion_main!(benches);
