//! Experiment harness for the dSSD reproduction.
//!
//! One binary per evaluation figure regenerates that figure's data series
//! and prints a paper-vs-measured comparison:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 parameter dump + derived calibration checks |
//! | `fig02` | I/O bandwidth timeline + bus utilization during GC |
//! | `fig07` | Normalized I/O & GC performance, all five architectures |
//! | `fig08` | On-chip bandwidth sensitivity sweep |
//! | `fig09` | I/O & copyback latency breakdowns vs plane count |
//! | `fig10` | DRAM-hit bandwidth/tails + trace mean latencies |
//! | `fig11` | Trace tail latencies vs PreemptiveGC/TinyTail |
//! | `fig12` | GC perf vs fNoC channel bandwidth (channels/ways sweeps) |
//! | `fig13` | fNoC topology and buffer-size comparison |
//! | `fig14` | Superblock lifetime curves, σ sweep, WAS overhead |
//! | `fig15` | SRT remap overhead + endurance/overhead trace metric |
//! | `fig16` | Endurance vs SRT size, active SRT entries |
//! | `overhead` | Sec 6.5 area arithmetic |
//!
//! Run with `cargo run -p dssd-bench --release --bin figNN`. Results are
//! recorded in the repository's `EXPERIMENTS.md`.
//!
//! All performance experiments use [`perf_config`]: the paper's 8-channel
//! × 8-way × 8-plane ULL array with per-plane block count scaled down
//! (the paper's own footnote-10 trick) so GC-heavy runs finish in
//! seconds; per-page timing, channel counts and bus bandwidths are
//! untouched, so bandwidth/latency shapes are preserved.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod runner;

use dssd_kernel::{SimSpan, SimTime};
use dssd_ssd::{Architecture, RunReport, SsdConfig, SsdSim};
use dssd_workload::msr::VolumeProfile;
use dssd_workload::{AccessPattern, SyntheticWorkload};

/// The reduced-scale ULL configuration used by the performance
/// experiments (Figs 2, 7–13, 15a).
#[must_use]
pub fn perf_config(arch: Architecture) -> SsdConfig {
    SsdConfig::test_tiny(arch)
}

/// A reduced-scale TLC configuration (Fig 15a's TLC rows).
#[must_use]
pub fn tlc_perf_config(arch: Architecture) -> SsdConfig {
    let mut c = SsdConfig::table1_tlc(arch);
    c.geometry.blocks = 64;
    c.ftl.overprovision = 0.25;
    c.ftl.gc_threshold_free = 8;
    c.ftl.gc_hard_free = 3;
    c.prefill_target_free = 7;
    c
}

/// Condensed results of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSummary {
    /// Mean host I/O bandwidth, GB/s.
    pub io_gbps: f64,
    /// Mean GC copy bandwidth, GB/s.
    pub gc_gbps: f64,
    /// Mean host request latency, µs.
    pub mean_us: f64,
    /// 99th-percentile host request latency, µs.
    pub p99_us: f64,
    /// 99.99th-percentile host request latency, µs.
    pub p9999_us: f64,
    /// Host requests completed.
    pub requests: u64,
    /// System-bus utilization attributed to host I/O.
    pub sysbus_io_util: f64,
    /// System-bus utilization attributed to GC.
    pub sysbus_gc_util: f64,
    /// Kernel events delivered by the run's event loop. Divide by wall
    /// time for the simulator's events/sec throughput.
    pub events: u64,
}

impl PerfSummary {
    fn from_report(sim: &mut SsdSim) -> PerfSummary {
        let p99 = sim.report_mut().latency_percentile(0.99).as_us_f64();
        let p9999 = sim.report_mut().latency_percentile(0.9999).as_us_f64();
        let r = sim.report();
        PerfSummary {
            io_gbps: r.io_bandwidth_gbps(),
            gc_gbps: r.gc_bandwidth_gbps(),
            mean_us: r.mean_latency().as_us_f64(),
            p99_us: p99,
            p9999_us: p9999,
            requests: r.requests_completed,
            sysbus_io_util: r.sysbus_io_utilization(),
            sysbus_gc_util: r.sysbus_gc_utilization(),
            events: r.events_delivered,
        }
    }
}

/// Runs a closed-loop synthetic workload on a prefilled drive and returns
/// the summary. `dram_hit` = 1.0 reproduces the all-cached scenario.
pub fn run_synthetic(
    config: SsdConfig,
    pattern: AccessPattern,
    request_pages: u32,
    read_fraction: f64,
    dram_hit: f64,
    duration: SimSpan,
) -> PerfSummary {
    let mut sim = SsdSim::new(config);
    sim.prefill();
    let wl = SyntheticWorkload::mixed(pattern, request_pages, read_fraction)
        .with_dram_hit_fraction(dram_hit);
    sim.run_closed_loop(wl, duration);
    PerfSummary::from_report(&mut sim)
}

/// Runs an accelerated MSR-style trace replay on a prefilled drive.
pub fn run_trace(
    config: SsdConfig,
    profile: &VolumeProfile,
    speedup: f64,
    duration: SimSpan,
) -> PerfSummary {
    let page_bytes = config.geometry.page_bytes;
    let mut sim = SsdSim::new(config);
    sim.prefill();
    let trace = profile
        .synthesize(SimSpan::from_ns((duration.as_ns() as f64 * speedup) as u64), 7)
        .accelerate(speedup);
    let reqs = trace.to_requests(page_bytes, sim.ftl().lpn_count());
    sim.run_trace(reqs, duration);
    PerfSummary::from_report(&mut sim)
}

/// One timeline sample: `(ms, io GB/s, sysbus io util, sysbus gc util)`.
pub type TimelineSample = (f64, f64, f64, f64);

/// Runs a closed-loop workload and returns the full [`RunReport`]-derived
/// timeline series (see [`TimelineSample`]) for Fig 2-style plots, plus
/// when GC first triggered and how many kernel events the run delivered
/// (deterministic per config, so benches can report events/sec).
pub fn run_timeline(
    config: SsdConfig,
    request_pages: u32,
    duration: SimSpan,
) -> (Vec<TimelineSample>, Option<SimTime>, u64) {
    let mut sim = SsdSim::new(config);
    sim.prefill();
    // Random addressing: on the paper's 1 TB drive a sequential stream
    // never wraps into its own recent writes within the window, so GC
    // victims keep ~50% live data. On this capacity-scaled drive a
    // sequential stream would immediately re-invalidate whole
    // superblocks (free erases); random writes preserve the paper's
    // victim-liveness behaviour.
    let wl = SyntheticWorkload::writes(AccessPattern::Random, request_pages);
    let report: &RunReport = sim.run_closed_loop(wl, duration);
    let io = report.io_bw.series();
    let ui = report.sysbus_io_util.series();
    let ug = report.sysbus_gc_util.series();
    let n = io.len().max(ui.len()).max(ug.len());
    let get = |v: &Vec<(SimTime, f64)>, i: usize| v.get(i).map_or(0.0, |&(_, x)| x);
    let series = (0..n)
        .map(|i| {
            (
                i as f64,
                get(&io, i) / 1e9,
                get(&ui, i),
                get(&ug, i),
            )
        })
        .collect();
    (series, report.first_gc_at, report.events_delivered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_harness_produces_sane_summary() {
        let mut cfg = perf_config(Architecture::Baseline);
        cfg.gc_continuous = true;
        let s = run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 0.0, SimSpan::from_ms(5));
        assert!(s.io_gbps > 0.5);
        assert!(s.gc_gbps > 0.0);
        assert!(s.p99_us >= s.mean_us);
        assert!(s.p9999_us >= s.p99_us);
        assert!(s.requests > 100);
    }

    #[test]
    fn trace_harness_replays_profiles() {
        let profile = dssd_workload::msr::profile("prn_0").unwrap();
        let s = run_trace(
            perf_config(Architecture::Baseline),
            profile,
            20.0,
            SimSpan::from_ms(10),
        );
        assert!(s.requests > 100, "only {} requests", s.requests);
        assert!(s.mean_us > 0.0);
    }

    #[test]
    fn timeline_has_gc_marker() {
        let (series, first_gc, events) = run_timeline(
            perf_config(Architecture::Baseline),
            8,
            SimSpan::from_ms(10),
        );
        assert!(series.len() >= 9);
        assert!(first_gc.is_some());
        assert!(events > 1000, "only {events} events");
        assert!(series.iter().any(|&(_, io, _, _)| io > 0.1));
    }

    #[test]
    fn tlc_config_is_consistent() {
        let c = tlc_perf_config(Architecture::DssdFnoc);
        assert_eq!(c.geometry.page_bytes, 16384);
        assert!(c.ftl.gc_threshold_free >= c.ftl.gc_hard_free);
    }
}
