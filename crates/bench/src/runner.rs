//! Parallel sweep runner and machine-readable benchmark output.
//!
//! A *sweep* is a list of independent simulation points (same harness,
//! different config or workload knobs). Each point is a self-contained
//! deterministic run, so points can be fanned out across cores with
//! [`dssd_kernel::parallel::map_parallel`]: results come back in input
//! order and every per-point number is bit-identical to a serial run —
//! only wall-clock time changes with `jobs`.
//!
//! [`write_bench_json`] persists per-scenario wall time and events/sec
//! as `results/bench.json` without pulling in a JSON dependency.

use std::io::{self, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use dssd_kernel::parallel::map_parallel;
use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, SsdConfig};
use dssd_workload::AccessPattern;

use crate::{perf_config, run_synthetic, PerfSummary};

/// One independent point of a sweep: a full simulator config plus the
/// closed-loop synthetic workload to drive it with.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Display label, unique within the sweep (e.g. `dSSD_f/x2.0`).
    pub label: String,
    /// Simulator configuration (architecture, geometry, faults, seed).
    pub config: SsdConfig,
    /// Spatial access pattern of the synthetic workload.
    pub pattern: AccessPattern,
    /// Pages per host request.
    pub request_pages: u32,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Fraction of reads served from DRAM.
    pub dram_hit: f64,
    /// Simulated duration of the run.
    pub duration: SimSpan,
}

impl SweepPoint {
    /// A saturating random-write point — the workload of the Fig 7/8
    /// performance sweeps.
    #[must_use]
    pub fn writes(label: impl Into<String>, config: SsdConfig, duration: SimSpan) -> SweepPoint {
        SweepPoint {
            label: label.into(),
            config,
            pattern: AccessPattern::Random,
            request_pages: 8,
            read_fraction: 0.0,
            dram_hit: 0.0,
            duration,
        }
    }
}

/// The result of one sweep point, in the order the point was submitted.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The point's label, copied through.
    pub label: String,
    /// Deterministic run summary (identical for every `jobs` value).
    pub summary: PerfSummary,
    /// Host wall-clock time this point took. *Not* deterministic — keep
    /// it out of any output that is diffed across `--jobs` values.
    pub wall: Duration,
}

/// Runs every point and returns outcomes in input order.
///
/// `jobs = 1` runs serially on the calling thread; `jobs = 0` uses all
/// available cores. Per-point results are bit-identical across `jobs`
/// values because each simulation owns its RNG and event queue — nothing
/// is shared between points.
#[must_use]
pub fn run_sweep(points: &[SweepPoint], jobs: usize) -> Vec<SweepOutcome> {
    map_parallel(points, jobs, |_, p| {
        let t0 = Instant::now();
        let summary = run_synthetic(
            p.config.clone(),
            p.pattern,
            p.request_pages,
            p.read_fraction,
            p.dram_hit,
            p.duration,
        );
        SweepOutcome { label: p.label.clone(), summary, wall: t0.elapsed() }
    })
}

/// The standard five-architecture sweep (Fig 7a) at reduced scale.
#[must_use]
pub fn architecture_sweep(duration: SimSpan, gc_continuous: bool) -> Vec<SweepPoint> {
    Architecture::all()
        .into_iter()
        .map(|arch| {
            let mut cfg = perf_config(arch);
            cfg.gc_continuous = gc_continuous;
            SweepPoint::writes(arch.label(), cfg, duration)
        })
        .collect()
}

/// An on-chip bandwidth factor sweep (Fig 8) for one architecture.
#[must_use]
pub fn onchip_factor_sweep(
    arch: Architecture,
    factors: &[f64],
    duration: SimSpan,
) -> Vec<SweepPoint> {
    factors
        .iter()
        .map(|&factor| {
            let cfg = perf_config(arch).with_onchip_factor(factor);
            SweepPoint::writes(format!("{}/x{factor}", arch.label()), cfg, duration)
        })
        .collect()
}

/// One scenario's row in `results/bench.json`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Scenario name (the benchmark or sweep-point label).
    pub name: String,
    /// Median wall time over the measured samples, milliseconds.
    pub median_ms: f64,
    /// Fastest sample, milliseconds.
    pub min_ms: f64,
    /// Slowest sample, milliseconds.
    pub max_ms: f64,
    /// Kernel events the scenario delivers per run (0 when the scenario
    /// has no event loop, e.g. pure workload generation).
    pub events: u64,
    /// `events / median wall time`; 0 when `events` is unknown.
    pub events_per_sec: f64,
}

impl BenchRecord {
    /// Builds a record from sampled wall times and the (deterministic)
    /// per-run event count.
    #[must_use]
    pub fn from_samples(name: impl Into<String>, samples: &[Duration], events: u64) -> BenchRecord {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let eps = if median.is_zero() { 0.0 } else { events as f64 / median.as_secs_f64() };
        BenchRecord {
            name: name.into(),
            median_ms: median.as_secs_f64() * 1e3,
            min_ms: sorted[0].as_secs_f64() * 1e3,
            max_ms: sorted[sorted.len() - 1].as_secs_f64() * 1e3,
            events,
            events_per_sec: eps,
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes records to JSON (no external dependency; two-space indent,
/// stable key order, one object per scenario).
#[must_use]
pub fn bench_json(context: &str, records: &[BenchRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"context\": \"{}\",\n", json_escape(context)));
    s.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}}}{}\n",
            json_escape(&r.name),
            r.median_ms,
            r.min_ms,
            r.max_ms,
            r.events,
            r.events_per_sec,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`bench_json`] to `path`, creating parent directories.
pub fn write_bench_json(path: &Path, context: &str, records: &[BenchRecord]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(bench_json(context, records).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Vec<SweepPoint> {
        let mut points = architecture_sweep(SimSpan::from_ms(1), true);
        points.truncate(3);
        points
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit() {
        let points = tiny_sweep();
        let serial = run_sweep(&points, 1);
        let parallel = run_sweep(&points, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label, "outcomes must keep input order");
            assert_eq!(s.summary, p.summary, "{}: jobs=4 diverged from jobs=1", s.label);
        }
    }

    #[test]
    fn sweep_outcomes_keep_input_order() {
        let points = tiny_sweep();
        let out = run_sweep(&points, 0);
        let labels: Vec<&str> = out.iter().map(|o| o.label.as_str()).collect();
        let want: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, want);
        assert!(out.iter().all(|o| o.summary.events > 0));
    }

    #[test]
    fn onchip_sweep_labels_points() {
        let pts = onchip_factor_sweep(
            Architecture::DssdFnoc,
            &[1.25, 2.0],
            SimSpan::from_ms(1),
        );
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].label, "dSSD_f/x1.25");
        assert_eq!(pts[1].label, "dSSD_f/x2");
    }

    #[test]
    fn bench_json_is_well_formed() {
        let records = vec![
            BenchRecord::from_samples(
                "fig08/\"quoted\"",
                &[Duration::from_millis(3), Duration::from_millis(1), Duration::from_millis(2)],
                10_000,
            ),
            BenchRecord::from_samples("plain", &[Duration::from_millis(4)], 0),
        ];
        let json = bench_json("unit-test", &records);
        assert!(json.contains("\"context\": \"unit-test\""));
        assert!(json.contains("fig08/\\\"quoted\\\""));
        assert!(json.contains("\"median_ms\": 2.000"));
        assert!(json.contains("\"events_per_sec\": 5000000"));
        assert!(json.contains("\"events\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // median of a single sample is that sample
        assert!(json.contains("\"median_ms\": 4.000"));
    }
}
