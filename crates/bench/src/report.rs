//! Plain-text table rendering for the experiment binaries.

use std::fmt::Display;

/// A column-aligned text table.
///
/// # Example
///
/// ```
/// use dssd_bench::report::Table;
/// let mut t = Table::new(["arch", "io GB/s"]);
/// t.row(["Baseline", "3.1"]);
/// t.row(["dSSD_f", "4.6"]);
/// let s = t.render();
/// assert!(s.contains("Baseline"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Display, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Display, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(|s| s.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns and a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as a percentage change ("+42.7%").
#[must_use]
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Formats a ratio as a multiplier ("31.4x").
#[must_use]
pub fn times(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(1.427), "+42.7%");
        assert_eq!(pct(0.9), "-10.0%");
        assert_eq!(times(31.4), "31.40x");
    }
}
