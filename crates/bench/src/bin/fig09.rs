//! Fig 9: latency breakdown of (a) I/O requests and (b) copybacks as the
//! number of planes grows, Baseline vs dSSD_f.

use dssd_bench::report::{banner, Table};
use dssd_bench::perf_config;
use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, SsdSim, StageKind};
use dssd_workload::{AccessPattern, SyntheticWorkload};

fn main() {
    for (label, which) in [("(a) I/O requests", true), ("(b) copyback", false)] {
        banner(&format!("Fig 9 {label}: per-stage latency (us) vs planes"));
        let mut t = Table::new([
            "config", "planes", "flash chip", "flash bus", "system bus", "fnoc", "total",
        ]);
        for arch in [Architecture::Baseline, Architecture::DssdFnoc] {
            for planes in [1u32, 2, 4, 8] {
                let mut cfg = perf_config(arch);
                cfg.geometry.planes = planes;
                cfg.gc_continuous = true;
                let mut sim = SsdSim::new(cfg);
                sim.prefill();
                let wl = SyntheticWorkload::writes(AccessPattern::Random, planes);
                sim.run_closed_loop(wl, SimSpan::from_ms(25));
                let b = if which {
                    &sim.report().io_breakdown
                } else {
                    &sim.report().copyback_breakdown
                };
                t.row([
                    arch.label().to_string(),
                    planes.to_string(),
                    format!("{:.1}", b.mean_us(StageKind::FlashChip)),
                    format!("{:.1}", b.mean_us(StageKind::FlashBus)),
                    format!("{:.1}", b.mean_us(StageKind::SystemBus)),
                    format!("{:.1}", b.mean_us(StageKind::Noc)),
                    format!("{:.1}", b.total_us()),
                ]);
            }
        }
        t.print();
        println!();
    }
    println!(
        "paper: with 1 plane, flash-chip contention dominates I/O; more planes\n\
         shift contention to the flash bus for both configs, but dSSD_f removes\n\
         the system-bus term entirely. Copyback in the baseline is dominated by\n\
         system-bus + flash-bus contention; in dSSD_f the (dedicated) fNoC term\n\
         grows with planes but stays below the baseline's bus contention."
    );
}
