//! Ablations of the dSSD design points called out in DESIGN.md:
//! dBUF sizing, dedicated-bus width vs fNoC bisection, sensitivity to the
//! GC page-management calibration constant, and the online
//! dynamic-superblock lifetime.

use dssd_bench::report::{banner, pct, Table};
use dssd_bench::{perf_config, run_synthetic};
use dssd_kernel::{SimSpan, SimTime};
use dssd_noc::TopologyKind;
use dssd_ssd::{Architecture, DynamicSbConfig, SsdConfig, SsdSim};
use dssd_workload::{AccessPattern, SyntheticWorkload};

fn gc_of(cfg: SsdConfig) -> (f64, f64) {
    let s = run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 0.0, SimSpan::from_ms(20));
    (s.io_gbps, s.gc_gbps)
}

fn main() {
    banner("Ablation 1: dBUF capacity (dSSD_f, pages per controller)");
    let mut t = Table::new(["dBUF pages", "io GB/s", "gc GB/s"]);
    for pages in [4usize, 8, 16, 32, 64] {
        let mut cfg = perf_config(Architecture::DssdFnoc);
        cfg.gc_continuous = true;
        cfg.dbuf_pages = pages;
        let (io, gc) = gc_of(cfg);
        t.row([pages.to_string(), format!("{io:.2}"), format!("{gc:.2}")]);
    }
    t.print();
    println!();
    println!("the paper's 16-page dBUF (2 x 32 KB) sits at the knee: smaller");
    println!("buffers stall copyback reads, larger ones buy little.");

    banner("Ablation 2: dedicated-bus width (dSSD_b) vs fNoC bisection (dSSD_f)");
    let mut t = Table::new(["budget GB/s", "dSSD_b gc", "dSSD_f gc"]);
    for budget in [1.0f64, 2.0, 4.0] {
        let factor = 1.0 + budget / 8.0;
        let mut b = perf_config(Architecture::DssdBus).with_onchip_factor(factor);
        b.gc_continuous = true;
        let mut f = perf_config(Architecture::DssdFnoc).with_onchip_factor(factor);
        f.gc_continuous = true;
        let (_, gc_b) = gc_of(b);
        let (_, gc_f) = gc_of(f);
        t.row([
            format!("{budget:.0}"),
            format!("{gc_b:.2}"),
            format!("{gc_f:.2}"),
        ]);
    }
    t.print();
    println!();
    println!("at equal budget the mesh's parallel channels and the single bus");
    println!("track each other closely at this scale; the fNoC's advantage is");
    println!("structural (no serialization point) as channel counts grow (Fig 12a).");

    banner("Ablation 3: GC page-management overhead (the calibration constant)");
    let mut t = Table::new(["overhead ns/page", "Baseline io", "Baseline gc", "dSSD_f io gain"]);
    for ns in [0u64, 300, 700, 1500] {
        let mut b = perf_config(Architecture::Baseline);
        b.gc_continuous = true;
        b.gc_page_overhead = SimSpan::from_ns(ns);
        let mut f = perf_config(Architecture::DssdFnoc);
        f.gc_continuous = true;
        f.gc_page_overhead = SimSpan::from_ns(ns);
        let (bio, bgc) = gc_of(b);
        let (fio, _) = gc_of(f);
        t.row([
            ns.to_string(),
            format!("{bio:.2}"),
            format!("{bgc:.2}"),
            pct(fio / bio),
        ]);
    }
    t.print();
    println!();
    println!("the decoupled advantage exists at every setting (it removes bus");
    println!("*capacity* contention too); the constant scales its magnitude.");

    banner("Ablation 5 (paper future work): fNoC topology at 16 controllers");
    // Sec 6.3: "as the number of flash controllers increases ... it
    // remains to be seen what the optimal topology for the fNoC will be."
    // Equal per-link bandwidth (equal wiring cost per channel).
    let mut t = Table::new(["topology", "links/node", "gc GB/s (16 ch)"]);
    for (label, kind, ports) in [
        ("1D mesh", TopologyKind::Mesh1D, "2"),
        ("ring", TopologyKind::Ring, "2"),
        ("2D mesh 4x4", TopologyKind::Mesh2D { cols: 4 }, "4"),
        ("crossbar", TopologyKind::Crossbar, "1"),
    ] {
        let mut cfg = perf_config(Architecture::DssdFnoc);
        cfg.geometry.channels = 16;
        cfg.geometry.ways = 4; // keep the die count constant
        cfg.noc.terminals = 16;
        cfg.noc.topology = kind;
        cfg.noc = cfg.noc.with_link_bandwidth(1_000_000_000);
        cfg.gc_continuous = true;
        let s = run_synthetic(
            cfg,
            AccessPattern::Random,
            8,
            0.0,
            1.0,
            SimSpan::from_ms(20),
        );
        t.row([label.to_string(), ports.to_string(), format!("{:.2}", s.gc_gbps)]);
    }
    t.print();
    println!();
    println!("at 16 controllers and equal per-link bandwidth, the 2-D mesh's");
    println!("extra bisection pays off over the paper's 1-D floorplan mesh.");

    banner("Ablation 4: online dynamic superblocks under accelerated wear");
    let mut t = Table::new(["config", "bad superblocks", "remaps", "EOL", "host data"]);
    for arch in [Architecture::Baseline, Architecture::DssdFnoc] {
        let mut cfg = perf_config(arch);
        cfg.gc_continuous = true;
        cfg.dynamic_sb = Some(DynamicSbConfig {
            pe_mean: 5.0,
            pe_sigma: 2.5,
            wear_acceleration: 5,
            ..DynamicSbConfig::default()
        });
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
        let r = sim.run_closed_loop(wl, SimSpan::from_ms(250));
        t.row([
            arch.label().to_string(),
            r.bad_superblocks.to_string(),
            r.dynamic_remaps.to_string(),
            r.end_of_life
                .map(|tm: SimTime| format!("{:.0} ms", tm.as_ms_f64()))
                .unwrap_or_else(|| "survived".into()),
            format!("{:.0} MB", r.io_bw.total_bytes() as f64 / 1e6),
        ]);
    }
    t.print();
    println!();
    println!("the same wear distribution: the decoupled controller recycles worn");
    println!("sub-blocks in place of retiring whole superblocks, writing more");
    println!("host data before end of life (the paper's ~23% lifetime claim).");
}
