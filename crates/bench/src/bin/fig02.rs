//! Fig 2: I/O bandwidth over time and system-bus utilization for the
//! conventional SSD, in the low-bandwidth (4 KB, one plane) and
//! high-bandwidth (32 KB, 8-plane multi-plane) scenarios, with GC
//! activity marked.

use dssd_bench::report::{banner, Table};
use dssd_bench::{perf_config, run_timeline};
use dssd_kernel::SimSpan;
use dssd_ssd::Architecture;

fn main() {
    for (label, pages) in [("(a,c) low bandwidth: 4KB writes", 1u32),
                           ("(b,d) high bandwidth: 32KB writes", 8u32)] {
        banner(&format!("Fig 2 {label} (Baseline, random addressing, QD 64)"));
        // Leave the free pool above the GC trigger so the run opens with
        // a clean no-GC phase, as in the paper's timeline.
        let mut cfg = perf_config(Architecture::Baseline);
        cfg.prefill_target_free = 12;
        let (series, first_gc, _events) = run_timeline(cfg, pages, SimSpan::from_ms(40));
        if let Some(t) = first_gc {
            println!("GC active from {:.1} ms onward", t.as_ms_f64());
        }
        let mut t = Table::new(["ms", "io GB/s", "sysbus util (io)", "sysbus util (gc)"]);
        for &(ms, io, ui, ug) in &series {
            if (ms as u64).is_multiple_of(2) {
                t.row([
                    format!("{ms:.0}"),
                    format!("{io:.2}"),
                    format!("{:.0}%", ui * 100.0),
                    format!("{:.0}%", ug * 100.0),
                ]);
            }
        }
        t.print();

        let pre_gc: Vec<f64> = series.iter().take(2).map(|s| s.1).collect();
        let during: Vec<f64> = series.iter().skip(5).map(|s| s.1).collect();
        let pre = pre_gc.iter().sum::<f64>() / pre_gc.len().max(1) as f64;
        let avg = during.iter().sum::<f64>() / during.len().max(1) as f64;
        println!();
        println!(
            "initial {pre:.2} GB/s -> {avg:.2} GB/s during sustained GC ({:.0}% drop)",
            (1.0 - avg / pre.max(1e-9)) * 100.0
        );
        println!(
            "paper: low-BW sustains ~3 GB/s initially; high-BW peaks near the 8 GB/s \
             system bus; both drop sharply once GC is triggered, with the larger \
             drop in the high-bandwidth scenario"
        );
    }
}
