//! Fig 12: GC performance as the fNoC router-channel bandwidth is varied
//! relative to the flash-channel bandwidth, sweeping (a) the number of
//! flash channels and (b) the number of ways per channel.

use dssd_bench::report::{banner, Table};
use dssd_bench::run_synthetic;
use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, SsdConfig};
use dssd_workload::AccessPattern;

fn gc_at(channels: u32, ways: u32, ratio: f64) -> f64 {
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.geometry.channels = channels;
    cfg.geometry.ways = ways;
    cfg.noc.terminals = channels as usize;
    cfg.noc = cfg
        .noc
        .with_link_bandwidth((ratio * cfg.flash_bus_bytes_per_sec as f64) as u64);
    cfg.gc_continuous = true;
    // DRAM-cached I/O keeps the flash side free for GC, so the fNoC is
    // the bottleneck under study.
    run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 1.0, SimSpan::from_ms(25)).gc_gbps
}

const RATIOS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn main() {
    banner("Fig 12(a): GC perf (GB/s) vs router/flash channel BW ratio — channels");
    let mut t = Table::new(["channels", "x0.25", "x0.5", "x1", "x2", "x4"]);
    for channels in [4u32, 8, 16] {
        let row: Vec<String> = RATIOS
            .iter()
            .map(|&r| format!("{:.2}", gc_at(channels, 8, r)))
            .collect();
        t.row(
            std::iter::once(channels.to_string())
                .chain(row)
                .collect::<Vec<_>>(),
        );
    }
    t.print();
    println!();
    println!("paper: more channels need more router bandwidth before GC saturates.");

    banner("Fig 12(b): GC perf (GB/s) vs ratio — ways per channel (8 channels)");
    let mut t = Table::new(["ways", "x0.25", "x0.5", "x1", "x2", "x4"]);
    for ways in [1u32, 2, 4, 8] {
        let row: Vec<String> = RATIOS
            .iter()
            .map(|&r| format!("{:.2}", gc_at(8, ways, r)))
            .collect();
        t.row(
            std::iter::once(ways.to_string())
                .chain(row)
                .collect::<Vec<_>>(),
        );
    }
    t.print();
    println!();
    println!(
        "paper: with 8 channels the benefit saturates around x2 regardless of\n\
         ways — the mesh bisection (N/2 x flash-channel BW with bidirectional\n\
         links at x2) then suffices for the random GC traffic."
    );
}
