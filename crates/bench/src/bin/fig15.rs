//! Fig 15: (a) worst-case synthetic performance impact as the number of
//! active SRT remappings grows (ULL and TLC, read and write); (b) the
//! endurance-per-performance-overhead metric across trace volumes.

use dssd_bench::report::{banner, pct, Table};
use dssd_bench::{perf_config, run_synthetic, run_trace, tlc_perf_config};
use dssd_kernel::SimSpan;
use dssd_reliability::{EnduranceConfig, EnduranceSim, SuperblockPolicy};
use dssd_ssd::{Architecture, SsdConfig};
use dssd_workload::msr;

fn latency(mut cfg: SsdConfig, remaps: usize, read: bool) -> f64 {
    cfg.srt_active_remaps = remaps;
    let read_fraction = if read { 1.0 } else { 0.0 };
    run_synthetic(
        cfg,
        dssd_workload::AccessPattern::Random,
        8,
        read_fraction,
        0.0,
        SimSpan::from_ms(25),
    )
    .mean_us
}

fn main() {
    banner("Fig 15(a): normalized mean latency vs active SRT entries (worst case)");
    let mut t = Table::new(["SRT entries", "ULL read", "ULL write", "TLC read", "TLC write"]);
    let base = [
        latency(perf_config(Architecture::DssdFnoc), 0, true),
        latency(perf_config(Architecture::DssdFnoc), 0, false),
        latency(tlc_perf_config(Architecture::DssdFnoc), 0, true),
        latency(tlc_perf_config(Architecture::DssdFnoc), 0, false),
    ];
    for remaps in [64usize, 256, 1024, 2048] {
        t.row([
            remaps.to_string(),
            pct(latency(perf_config(Architecture::DssdFnoc), remaps, true) / base[0]),
            pct(latency(perf_config(Architecture::DssdFnoc), remaps, false) / base[1]),
            pct(latency(tlc_perf_config(Architecture::DssdFnoc), remaps, true) / base[2]),
            pct(latency(tlc_perf_config(Architecture::DssdFnoc), remaps, false) / base[3]),
        ]);
    }
    t.print();
    println!();
    println!("paper: READ impact is small; frequent random WRITEs on TLC see up to");
    println!("       ~2x degradation at 2k entries (channel/flash conflicts).");

    banner("Fig 15(b): endurance / performance-overhead metric vs BASELINE");
    // Endurance gain from the reliability simulator (shared across
    // volumes), performance overhead measured per volume with an active
    // SRT population.
    let e_cfg = EnduranceConfig { superblocks: 128, ..EnduranceConfig::paper_tlc() };
    let at = |p| {
        let r = EnduranceSim::new(e_cfg).run(p);
        r.written_at_bad_fraction(0.02).unwrap_or(r.total_written) as f64
    };
    let endurance_gain = at(SuperblockPolicy::Reserved) / at(SuperblockPolicy::Baseline);

    let mut t = Table::new(["trace", "class", "perf overhead", "endurance/overhead"]);
    let mut by_class = [(0.0f64, 0u32); 2];
    for p in msr::PROFILES.iter().take(12) {
        let clean = {
            let mut cfg = perf_config(Architecture::DssdFnoc);
            cfg.gc_continuous = true;
            run_trace(cfg, p, 30.0, SimSpan::from_ms(20)).mean_us
        };
        let remapped = {
            let mut cfg = perf_config(Architecture::DssdFnoc);
            cfg.gc_continuous = true;
            cfg.srt_active_remaps = 2048;
            run_trace(cfg, p, 30.0, SimSpan::from_ms(20)).mean_us
        };
        let overhead = remapped / clean;
        let metric = endurance_gain / overhead;
        let class = if p.is_read_intensive() { 0 } else { 1 };
        by_class[class].0 += metric;
        by_class[class].1 += 1;
        t.row([
            p.name.to_string(),
            if class == 0 { "read-int." } else { "write-int." }.to_string(),
            pct(overhead),
            pct(metric),
        ]);
    }
    t.print();
    println!();
    println!(
        "mean metric: read-intensive {}, write-intensive {}",
        pct(by_class[0].0 / by_class[0].1.max(1) as f64),
        pct(by_class[1].0 / by_class[1].1.max(1) as f64),
    );
    println!("paper: ~+21.7% for read-intensive, ~+6% for write-intensive volumes.");
}
