//! Sec 6.5: area-overhead arithmetic of the dSSD additions.

use dssd_bench::report::{banner, Table};
use dssd_ctrl::overhead::OverheadReport;

fn main() {
    banner("Sec 6.5: dSSD area overhead (64 mm^2 controller reference)");
    let r = OverheadReport::paper_config();
    let mut t = Table::new(["component", "paper", "model"]);
    t.row([
        "per-controller ECC (8x LDPC)",
        "~1.5%",
        &format!("{:.2}% ({:.3} mm^2)", r.ecc_fraction() * 100.0, r.ecc_mm2),
    ]);
    t.row([
        "fNoC routers (8x)",
        "~0.25%",
        &format!("{:.2}% ({:.3} mm^2)", r.router_fraction() * 100.0, r.routers_mm2),
    ]);
    t.row([
        "dBUFs (8x 2x32KB)",
        "~2.46%",
        &format!("{:.2}% ({:.3} mm^2)", r.dbuf_fraction() * 100.0, r.dbuf_mm2),
    ]);
    t.row([
        "total silicon",
        "~4.2%",
        &format!("{:.2}%", r.total_fraction() * 100.0),
    ]);
    t.row([
        "SRT (1k x 32b entries)",
        "~4 kB",
        &format!("{} B", r.srt_bytes),
    ]);
    t.row([
        "RBT (RESERV, 7%)",
        "~1 kB/channel",
        &format!("{} B", r.rbt_bytes),
    ]);
    t.print();

    banner("Scaling with channel count");
    let mut t = Table::new(["channels", "total overhead"]);
    for ch in [4usize, 8, 16, 32] {
        let r = OverheadReport::new(ch, 64, 1024, 0.07);
        t.row([format!("{ch}"), format!("{:.2}%", r.total_fraction() * 100.0)]);
    }
    t.print();
}
