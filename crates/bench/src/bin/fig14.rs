//! Fig 14: (a) bad-superblock growth vs data written for BASELINE /
//! RECYCLED / RESERV; (b) endurance improvement vs block-wear variation,
//! including WAS; (c) the I/O overhead of WAS's endurance scans.

use dssd_bench::report::{banner, pct, Table};
use dssd_bench::{perf_config, run_synthetic};
use dssd_kernel::SimSpan;
use dssd_reliability::{EnduranceConfig, EnduranceReport, EnduranceSim, SuperblockPolicy};
use dssd_ssd::{Architecture, WasScanConfig};
use dssd_workload::AccessPattern;

fn run(cfg: EnduranceConfig, policy: SuperblockPolicy) -> EnduranceReport {
    EnduranceSim::new(cfg).run(policy)
}

fn main() {
    banner("Fig 14(a): bad superblocks vs data written (TB), paper TLC scale");
    let cfg = EnduranceConfig::paper_tlc();
    let reports: Vec<EnduranceReport> = [
        SuperblockPolicy::Baseline,
        SuperblockPolicy::Recycled,
        SuperblockPolicy::Reserved,
    ]
    .into_iter()
    .map(|p| run(cfg, p))
    .collect();

    let mut t = Table::new(["bad superblocks", "BASELINE", "RECYCLED", "RESERV"]);
    for bad in [1u32, 2, 4, 8, 16, 32, 64] {
        let at = |r: &EnduranceReport| {
            r.curve
                .iter()
                .find(|&&(_, b)| b >= bad)
                .map_or("-".to_string(), |&(w, _)| format!("{:.2}", w as f64 / 1e12))
        };
        t.row([
            bad.to_string(),
            at(&reports[0]),
            at(&reports[1]),
            at(&reports[2]),
        ]);
    }
    t.print();

    let fb = |r: &EnduranceReport| r.first_bad_bytes().unwrap_or(0) as f64;
    println!();
    println!(
        "first bad superblock: RESERV delayed {} vs BASELINE (paper: ~65%)",
        pct(fb(&reports[2]) / fb(&reports[0]))
    );
    let at5 = |r: &EnduranceReport| {
        r.written_at_bad_fraction(0.02).unwrap_or(r.total_written) as f64
    };
    println!(
        "endurance at a small bad count: RECYCLED {} / RESERV {} vs BASELINE \
         (paper: ~+19% / ~+35%)",
        pct(at5(&reports[1]) / at5(&reports[0])),
        pct(at5(&reports[2]) / at5(&reports[0]))
    );

    banner("Fig 14(b): endurance improvement vs block-wear variation");
    let mut t = Table::new(["sigma/mean", "RECYCLED", "RESERV", "WAS"]);
    // The sweep stops at 0.20: beyond that the *baseline's* endurance
    // collapses toward zero (blocks with near-zero P/E limits appear),
    // so improvement ratios diverge without being informative.
    for rel_sigma in [0.05, 0.10, 0.148, 0.20] {
        let c = EnduranceConfig {
            pe_sigma: cfg.pe_mean * rel_sigma,
            superblocks: 128,
            ..cfg
        };
        let base = at5(&run(c, SuperblockPolicy::Baseline));
        t.row([
            format!("{rel_sigma:.3}"),
            pct(at5(&run(c, SuperblockPolicy::Recycled)) / base),
            pct(at5(&run(c, SuperblockPolicy::Reserved)) / base),
            pct(at5(&run(c, SuperblockPolicy::WearAware)) / base),
        ]);
    }
    t.print();
    println!();
    println!("paper: benefits grow with variation; WAS is highest (software has");
    println!("       full wear visibility) but pays the scan overhead below.");

    banner("Fig 14(c): I/O latency overhead of WAS endurance scans");
    let mut t = Table::new(["tracked blocks", "mean I/O latency", "overhead"]);
    let lat = |scan: Option<WasScanConfig>| {
        let mut cfg = perf_config(Architecture::Baseline);
        cfg.was_scan = scan;
        run_synthetic(cfg, AccessPattern::Random, 1, 0.0, 0.0, SimSpan::from_ms(20)).mean_us
    };
    let clean = lat(None);
    t.row(["0 (no WAS)".to_string(), format!("{clean:.0}us"), "-".to_string()]);
    for blocks in [1024u64, 4096, 16384, 65536] {
        let v = lat(Some(WasScanConfig {
            tracked_blocks: blocks,
            interval: SimSpan::from_ms(5),
        }));
        t.row([blocks.to_string(), format!("{v:.0}us"), pct(v / clean)]);
    }
    t.print();
    println!();
    println!("paper: scanning every block's RBER state through the shared bus and");
    println!("       DRAM costs up to ~2x average I/O latency at large block counts.");
}
