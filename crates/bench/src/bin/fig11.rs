//! Fig 11: (a) 99th-percentile tail latency for `prn_0` across Baseline,
//! BW, PreemptiveGC, TinyTail and dSSD_f; (b) mean tail-latency
//! improvement across all trace volumes.

use dssd_bench::report::{banner, times, Table};
use dssd_bench::{perf_config, run_trace};
use dssd_ftl::GcPolicy;
use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, SsdConfig};
use dssd_workload::msr;

#[derive(Clone, Copy)]
enum Scheme {
    Baseline,
    Bw,
    Preemptive,
    TinyTail,
    Fnoc,
}

impl Scheme {
    fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Bw => "BW",
            Scheme::Preemptive => "PreemptiveGC",
            Scheme::TinyTail => "TinyTail",
            Scheme::Fnoc => "dSSD_f",
        }
    }

    fn config(self) -> SsdConfig {
        let arch = match self {
            Scheme::Baseline => Architecture::Baseline,
            Scheme::Fnoc => Architecture::DssdFnoc,
            _ => Architecture::ExtraBandwidth,
        };
        let mut cfg = perf_config(arch);
        cfg.gc_continuous = true;
        // Tails here must come from GC interference, not from running out
        // of free space: keep the pool comfortably above the trigger.
        cfg.prefill_target_free = 12;
        match self {
            Scheme::Preemptive => {
                cfg.ftl.policy = GcPolicy::Preemptive {
                    hard_free_superblocks: cfg.ftl.gc_hard_free,
                };
                // Postponement is PreemptiveGC's steady state: by
                // measurement time its free pool hovers just above the
                // forced-GC threshold, so copy storms are imminent.
                cfg.prefill_target_free = cfg.ftl.gc_hard_free + 1;
            }
            Scheme::TinyTail => {
                cfg.ftl.policy = GcPolicy::TinyTail { concurrent_channels: 1 };
            }
            _ => {}
        }
        cfg
    }
}

const SCHEMES: [Scheme; 5] = [
    Scheme::Baseline,
    Scheme::Bw,
    Scheme::Preemptive,
    Scheme::TinyTail,
    Scheme::Fnoc,
];

fn main() {
    banner("Fig 11(a): 99% tail latency for prn_0");
    let prn0 = msr::profile("prn_0").unwrap();
    let mut p99 = Vec::new();
    let mut t = Table::new(["scheme", "p99 us", "vs dSSD_f"]);
    for s in SCHEMES {
        let v = run_trace(s.config(), prn0, 8.0, SimSpan::from_ms(40)).p99_us;
        p99.push(v);
    }
    let fnoc = p99[4];
    for (s, v) in SCHEMES.iter().zip(&p99) {
        t.row([s.label().to_string(), format!("{v:.0}"), times(v / fnoc)]);
    }
    t.print();
    println!();
    println!("paper: dSSD_f improves prn_0 p99 by 43.7x vs Baseline, 31.2x vs BW,");
    println!("       20.8x vs PreemptiveGC and 6.19x vs TinyTail.");

    banner("Fig 11(b): mean p99 improvement across traces (vs dSSD_f)");
    let volumes = ["prn_0", "prn_1", "proj_0", "hm_0", "usr_0", "src1_2", "stg_0", "web_0"];
    let mut ratios = vec![Vec::new(); SCHEMES.len()];
    for name in volumes {
        let p = msr::profile(name).unwrap();
        let vals: Vec<f64> = SCHEMES
            .iter()
            .map(|s| run_trace(s.config(), p, 8.0, SimSpan::from_ms(40)).p99_us)
            .collect();
        let fnoc = vals[4].max(1e-9);
        for (i, v) in vals.iter().enumerate() {
            ratios[i].push(v / fnoc);
        }
    }
    let mut t = Table::new(["scheme", "mean p99 improvement of dSSD_f"]);
    for (s, r) in SCHEMES.iter().zip(&ratios) {
        let mean = r.iter().sum::<f64>() / r.len() as f64;
        t.row([s.label().to_string(), times(mean)]);
    }
    t.print();
    println!();
    println!("paper: 31.4x vs Baseline and 5.17x vs TinyTail on average.");
}
