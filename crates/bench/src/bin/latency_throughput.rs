//! Latency-vs-throughput curves (beyond the paper): sweep a fixed offered
//! load through every architecture with GC active and watch where each
//! one's latency knee sits. The decoupled designs push the knee right —
//! the same physics as Fig 7, shown the way storage evaluations usually
//! plot it.

use dssd_bench::perf_config;
use dssd_bench::report::{banner, Table};
use dssd_kernel::{Rng, SimSpan};
use dssd_ssd::{Architecture, SsdSim};
use dssd_workload::{open_loop_schedule, AccessPattern, SyntheticWorkload};

fn mean_latency_at(arch: Architecture, kiops: f64) -> (f64, f64) {
    let mut cfg = perf_config(arch);
    cfg.gc_continuous = true;
    let mut sim = SsdSim::new(cfg);
    sim.prefill();
    let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
    let mut rng = Rng::new(11);
    let schedule = open_loop_schedule(
        wl.bind(sim.ftl().lpn_count()),
        kiops * 1000.0,
        SimSpan::from_ms(25),
        &mut rng,
    );
    sim.run_trace(schedule, SimSpan::from_ms(25));
    let p99 = sim.report_mut().latency_percentile(0.99).as_us_f64();
    (sim.report().mean_latency().as_us_f64(), p99)
}

fn main() {
    banner("Latency vs offered load (32 KB random writes, GC active)");
    let archs = [
        Architecture::Baseline,
        Architecture::ExtraBandwidth,
        Architecture::DssdFnoc,
    ];
    let mut t = Table::new([
        "offered kIOPS",
        "Baseline mean/p99 us",
        "BW mean/p99 us",
        "dSSD_f mean/p99 us",
    ]);
    for kiops in [20.0, 40.0, 60.0, 80.0, 100.0, 120.0] {
        let mut row = vec![format!("{kiops:.0}")];
        for arch in archs {
            let (mean, p99) = mean_latency_at(arch, kiops);
            row.push(format!("{mean:.0} / {p99:.0}"));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("the baseline's latency knee (where GC bus contention compounds)");
    println!("arrives at a lower offered load than the decoupled design's.");
}
