//! Fig 10: (a) I/O bandwidth and tail latency with 100 % DRAM-cached I/O
//! while GC runs; (b) mean I/O latency across workload traces for
//! Baseline / BW / TinyTail / dSSD_f.

use dssd_bench::report::{banner, pct, times, Table};
use dssd_bench::{perf_config, run_synthetic, run_trace};
use dssd_ftl::GcPolicy;
use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, SsdConfig};
use dssd_workload::{msr, AccessPattern};

fn dram_hit(arch: Architecture) -> dssd_bench::PerfSummary {
    let mut cfg = perf_config(arch);
    cfg.gc_continuous = true;
    run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 1.0, SimSpan::from_ms(30))
}

fn trace_cfg(arch: Architecture, tinytail: bool) -> SsdConfig {
    let mut cfg = perf_config(arch);
    cfg.gc_continuous = true;
    if tinytail {
        cfg.ftl.policy = GcPolicy::TinyTail { concurrent_channels: 1 };
    }
    cfg
}

fn main() {
    banner("Fig 10(a): 100% DRAM-cached I/O during GC — bandwidth and tails");
    let mut results = Vec::new();
    let mut t = Table::new(["config", "io GB/s", "p99 us", "p99.99 us"]);
    for arch in [
        Architecture::ExtraBandwidth,
        Architecture::Dssd,
        Architecture::DssdBus,
        Architecture::DssdFnoc,
    ] {
        let s = dram_hit(arch);
        t.row([
            arch.label().to_string(),
            format!("{:.2}", s.io_gbps),
            format!("{:.0}", s.p99_us),
            format!("{:.0}", s.p9999_us),
        ]);
        results.push((arch, s));
    }
    t.print();
    let bw = results[0].1;
    let dssd = results[1].1;
    let fnoc = results[3].1;
    println!();
    println!(
        "dSSD_f tail-latency improvement: {} vs BW, {} vs dSSD (p99.99)",
        times(bw.p9999_us / fnoc.p9999_us),
        times(dssd.p9999_us / fnoc.p9999_us),
    );
    println!("paper: dSSD_f reaches maximum bandwidth while BW/dSSD stall at ~55%;");
    println!("       tail latency improves 77x vs BW and 39x vs dSSD.");

    banner("Fig 10(b): mean I/O latency across traces");
    let volumes = ["prn_0", "proj_0", "hm_0", "usr_2", "src1_2", "web_0"];
    let mut t = Table::new(["trace", "Baseline", "BW", "TinyTail", "dSSD_f"]);
    let mut sums = [0.0f64; 4];
    for name in volumes {
        let p = msr::profile(name).unwrap();
        let run = |cfg| run_trace(cfg, p, 15.0, SimSpan::from_ms(30)).mean_us;
        let vals = [
            run(trace_cfg(Architecture::Baseline, false)),
            run(trace_cfg(Architecture::ExtraBandwidth, false)),
            run(trace_cfg(Architecture::ExtraBandwidth, true)),
            run(trace_cfg(Architecture::DssdFnoc, false)),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        t.row([
            name.to_string(),
            format!("{:.0}us", vals[0]),
            format!("{:.0}us", vals[1]),
            format!("{:.0}us", vals[2]),
            format!("{:.0}us", vals[3]),
        ]);
    }
    t.print();
    println!();
    println!(
        "mean latency reduction of dSSD_f: {} vs Baseline, {} vs BW, {} vs TinyTail",
        pct(sums[3] / sums[0]),
        pct(sums[3] / sums[1]),
        pct(sums[3] / sums[2]),
    );
    println!("paper: -31.9% vs Baseline, -16.1% vs BW, -7.5% vs TinyTail.");
}
