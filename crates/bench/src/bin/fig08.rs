//! Fig 8: I/O and GC performance as the amount of on-chip bandwidth is
//! increased (×1.25 – ×4), for low-bandwidth (4 KB) and high-bandwidth
//! (32 KB) flash traffic, comparing a widened conventional bus against
//! the same budget given to a dSSD_f.

use dssd_bench::report::{banner, pct, Table};
use dssd_bench::runner::{run_sweep, SweepOutcome, SweepPoint};
use dssd_bench::perf_config;
use dssd_kernel::parallel::default_jobs;
use dssd_kernel::SimSpan;
use dssd_ssd::Architecture;

const FACTORS: [f64; 5] = [1.25, 1.5, 2.0, 3.0, 4.0];

fn point(arch: Architecture, factor: f64, pages: u32) -> SweepPoint {
    // Space-balance GC: sustained random writes are paced by how fast GC
    // reclaims superblocks, so bandwidth changes show up as end-to-end
    // performance exactly as in the paper's sustained-write sweeps.
    let cfg = perf_config(arch).with_onchip_factor(factor);
    let mut p = SweepPoint::writes(
        format!("{}/x{factor}/{pages}p", arch.label()),
        cfg,
        SimSpan::from_ms(200),
    );
    p.request_pages = pages;
    p
}

fn main() {
    // One flat sweep covering both page classes: per class a ×1.0
    // Baseline reference plus (BW, dSSD_f) at each factor. Points are
    // independent, so they fan out across cores; the 200 ms runs that
    // used to execute one after another now finish in parallel.
    let classes = [("(a) low bandwidth (4KB)", 1u32), ("(b) high bandwidth (32KB)", 8u32)];
    let mut points: Vec<SweepPoint> = Vec::new();
    for (_, pages) in classes {
        points.push(point(Architecture::Baseline, 1.0, pages));
        for factor in FACTORS {
            points.push(point(Architecture::ExtraBandwidth, factor, pages));
            points.push(point(Architecture::DssdFnoc, factor, pages));
        }
    }
    let out = run_sweep(&points, default_jobs());
    let per_class = 1 + 2 * FACTORS.len();

    for (ci, (label, pages)) in classes.into_iter().enumerate() {
        let class: &[SweepOutcome] = &out[ci * per_class..(ci + 1) * per_class];
        let base = class[0].summary;
        banner(&format!("Fig 8 {label}: perf vs on-chip bandwidth factor"));
        let mut t = Table::new(["factor", "BW io", "BW gc", "dSSD_f io", "dSSD_f gc"]);
        for (fi, factor) in FACTORS.into_iter().enumerate() {
            let bw = class[1 + 2 * fi].summary;
            let fnoc = class[2 + 2 * fi].summary;
            t.row([
                format!("x{factor}"),
                pct(bw.io_gbps / base.io_gbps),
                pct(bw.gc_gbps / base.gc_gbps),
                pct(fnoc.io_gbps / base.io_gbps),
                pct(fnoc.gc_gbps / base.gc_gbps),
            ]);
        }
        t.print();
        println!();
        if pages == 1 {
            println!(
                "paper: low bandwidth barely uses the bus, so widening it gains only\n\
                 ~4.6% io / ~13.6% gc even at x2; dSSD_f slightly higher."
            );
        } else {
            println!(
                "paper: high bandwidth responds to bus width (baseline x1.5: +13.5% io,\n\
                 +19.9% gc) but the same budget decoupled does far better\n\
                 (dSSD x1.5: +39.4% io, +68% gc)."
            );
        }
    }
}
