//! Fig 8: I/O and GC performance as the amount of on-chip bandwidth is
//! increased (×1.25 – ×4), for low-bandwidth (4 KB) and high-bandwidth
//! (32 KB) flash traffic, comparing a widened conventional bus against
//! the same budget given to a dSSD_f.

use dssd_bench::report::{banner, pct, Table};
use dssd_bench::{perf_config, run_synthetic};
use dssd_kernel::SimSpan;
use dssd_ssd::Architecture;
use dssd_workload::AccessPattern;

fn measure(arch: Architecture, factor: f64, pages: u32) -> (f64, f64) {
    // Space-balance GC: sustained random writes are paced by how fast GC
    // reclaims superblocks, so bandwidth changes show up as end-to-end
    // performance exactly as in the paper's sustained-write sweeps.
    let cfg = perf_config(arch).with_onchip_factor(factor);
    let s = run_synthetic(cfg, AccessPattern::Random, pages, 0.0, 0.0, SimSpan::from_ms(200));
    (s.io_gbps, s.gc_gbps)
}

fn main() {
    for (label, pages) in [("(a) low bandwidth (4KB)", 1u32), ("(b) high bandwidth (32KB)", 8u32)] {
        banner(&format!("Fig 8 {label}: perf vs on-chip bandwidth factor"));
        let (base_io, base_gc) = measure(Architecture::Baseline, 1.0, pages);
        let mut t = Table::new([
            "factor",
            "BW io",
            "BW gc",
            "dSSD_f io",
            "dSSD_f gc",
        ]);
        for factor in [1.25, 1.5, 2.0, 3.0, 4.0] {
            let (bw_io, bw_gc) = measure(Architecture::ExtraBandwidth, factor, pages);
            let (f_io, f_gc) = measure(Architecture::DssdFnoc, factor, pages);
            t.row([
                format!("x{factor}"),
                pct(bw_io / base_io),
                pct(bw_gc / base_gc),
                pct(f_io / base_io),
                pct(f_gc / base_gc),
            ]);
        }
        t.print();
        println!();
        if pages == 1 {
            println!(
                "paper: low bandwidth barely uses the bus, so widening it gains only\n\
                 ~4.6% io / ~13.6% gc even at x2; dSSD_f slightly higher."
            );
        } else {
            println!(
                "paper: high bandwidth responds to bus width (baseline x1.5: +13.5% io,\n\
                 +19.9% gc) but the same budget decoupled does far better\n\
                 (dSSD x1.5: +39.4% io, +68% gc)."
            );
        }
    }
}
