//! Fig 16: (a) endurance improvement as the SRT grows, for different SSD
//! capacities; (b) active SRT entries vs remapping events with an
//! unbounded table.

use dssd_bench::report::{banner, pct, Table};
use dssd_reliability::{EnduranceConfig, EnduranceReport, EnduranceSim, SuperblockPolicy};

fn endurance(cfg: EnduranceConfig, policy: SuperblockPolicy) -> f64 {
    let r = EnduranceSim::new(cfg).run(policy);
    r.written_at_bad_fraction(0.05).unwrap_or(r.total_written) as f64
}

fn main() {
    banner("Fig 16(a): endurance improvement vs SRT entries per controller");
    let mut t = Table::new(["SRT entries", "128 superblocks", "256 superblocks", "512 superblocks"]);
    for entries in [4usize, 16, 64, 256, 1024, 4096] {
        let mut row = vec![entries.to_string()];
        for superblocks in [128usize, 256, 512] {
            let cfg = EnduranceConfig {
                superblocks,
                srt_entries: entries,
                ..EnduranceConfig::paper_tlc()
            };
            let base = endurance(cfg, SuperblockPolicy::Baseline);
            let rec = endurance(cfg, SuperblockPolicy::Recycled);
            row.push(pct(rec / base));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: more entries help up to ~1k per controller, after which the");
    println!("       improvement saturates; larger capacities need more entries.");

    banner("Fig 16(b): active SRT entries vs remapping events (unbounded SRT)");
    let cfg = EnduranceConfig {
        srt_entries: 1 << 24,
        stop_bad_fraction: 0.9,
        ..EnduranceConfig::paper_tlc()
    };
    let rec = EnduranceSim::new(cfg).run(SuperblockPolicy::Recycled);
    let res = EnduranceSim::new(cfg).run(SuperblockPolicy::Reserved);
    let sample = |r: &EnduranceReport, frac: f64| -> String {
        if r.remap_curve.is_empty() {
            return "-".into();
        }
        let i = ((r.remap_curve.len() - 1) as f64 * frac) as usize;
        let (ev, act) = r.remap_curve[i];
        format!("{act} @ {ev} events")
    };
    let mut t = Table::new(["point", "RECYCLED", "RESERV"]);
    for (label, frac) in [("25%", 0.25), ("50%", 0.5), ("75%", 0.75), ("end", 1.0)] {
        t.row([label.to_string(), sample(&rec, frac), sample(&res, frac)]);
    }
    t.print();
    println!();
    println!(
        "total remap events: RECYCLED {} / RESERV {}",
        rec.remap_events, res.remap_events
    );
    println!("paper: active entries grow with remappings, then stop once no static");
    println!("       superblock remains; RESERV holds more entries throughout.");
}
