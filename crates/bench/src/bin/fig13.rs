//! Fig 13: GC performance of alternative fNoC topologies at equal
//! bisection bandwidth (a), and sensitivity to router input-buffer size
//! (b).

use dssd_bench::report::{banner, Table};
use dssd_bench::run_synthetic;
use dssd_kernel::SimSpan;
use dssd_noc::TopologyKind;
use dssd_ssd::{Architecture, SsdConfig};
use dssd_workload::AccessPattern;

fn gc_with(kind: TopologyKind, bisection: u64, buffer_flits: usize) -> f64 {
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.noc.topology = kind;
    cfg.noc = cfg
        .noc
        .with_bisection_bandwidth(bisection)
        .with_input_buffer_flits(buffer_flits);
    cfg.gc_continuous = true;
    run_synthetic(cfg, AccessPattern::Random, 8, 0.0, 1.0, SimSpan::from_ms(25)).gc_gbps
}

const TOPOLOGIES: [TopologyKind; 3] =
    [TopologyKind::Mesh1D, TopologyKind::Ring, TopologyKind::Crossbar];

fn main() {
    banner("Fig 13(a): GC perf (GB/s) vs bisection bandwidth, equal across topologies");
    let mut t = Table::new(["bisection", "1D mesh", "ring", "crossbar"]);
    for bisection_mb in [250u64, 500, 1000, 2000, 4000] {
        let row: Vec<String> = TOPOLOGIES
            .iter()
            .map(|&k| format!("{:.2}", gc_with(k, bisection_mb * 1_000_000, 4)))
            .collect();
        t.row(
            std::iter::once(format!("{:.2} GB/s", bisection_mb as f64 / 1000.0))
                .chain(row)
                .collect::<Vec<_>>(),
        );
    }
    t.print();
    println!();
    println!(
        "paper: the ring's channels are thinnest (4 bisection channels), so\n\
         serialization of the large page packets hurts it most when bandwidth\n\
         is scarce; with ~2 GB/s of bisection the mesh matches the crossbar."
    );

    banner("Fig 13(b): GC perf (GB/s) vs router input-buffer size (flits)");
    let mut t = Table::new(["buffer", "1D mesh (low BW)", "1D mesh (high BW)",
                            "ring (low BW)", "ring (high BW)"]);
    for flits in [1usize, 2, 4, 8, 16] {
        t.row([
            format!("{flits}"),
            format!("{:.2}", gc_with(TopologyKind::Mesh1D, 500_000_000, flits)),
            format!("{:.2}", gc_with(TopologyKind::Mesh1D, 2_000_000_000, flits)),
            format!("{:.2}", gc_with(TopologyKind::Ring, 500_000_000, flits)),
            format!("{:.2}", gc_with(TopologyKind::Ring, 2_000_000_000, flits)),
        ]);
    }
    t.print();
    println!();
    println!(
        "paper: with scarce bandwidth, bigger router buffers matter (and cost);\n\
         with sufficient bandwidth their impact is small."
    );
}
