//! Fig 7: (a) normalized I/O and GC performance for the five Table 2
//! architectures under saturating writes with continuous GC; (b) system
//! bus utilization for I/O during GC, DRAM-hit vs flash-write.

use dssd_bench::report::{banner, pct, Table};
use dssd_bench::{perf_config, run_synthetic, PerfSummary};
use dssd_kernel::SimSpan;
use dssd_ssd::Architecture;
use dssd_workload::AccessPattern;

fn measure(arch: Architecture, dram_hit: f64) -> PerfSummary {
    let mut cfg = perf_config(arch);
    cfg.gc_continuous = true;
    run_synthetic(cfg, AccessPattern::Random, 8, 0.0, dram_hit, SimSpan::from_ms(30))
}

fn main() {
    banner("Fig 7(a): normalized I/O and GC performance (high-BW writes, GC active)");
    let results: Vec<(Architecture, PerfSummary)> = Architecture::all()
        .into_iter()
        .map(|a| (a, measure(a, 0.0)))
        .collect();
    let base = results[0].1;

    let mut t = Table::new(["config", "io GB/s", "io vs base", "gc GB/s", "gc vs base"]);
    for (arch, s) in &results {
        t.row([
            arch.label().to_string(),
            format!("{:.2}", s.io_gbps),
            pct(s.io_gbps / base.io_gbps),
            format!("{:.2}", s.gc_gbps),
            pct(s.gc_gbps / base.gc_gbps),
        ]);
    }
    t.print();
    println!();
    println!("paper: BW +11.8% io / +10.9% gc; dSSD +42.7% / +63.8%;");
    println!("       dSSD_b only slightly above BW (fixed partitioned bandwidth);");
    println!("       dSSD_f nearly matches dSSD (parallel fNoC channels).");

    banner("Fig 7(b): I/O system-bus utilization during GC");
    let mut t = Table::new(["config", "DRAM-hit io util", "flash-write io util", "gc util"]);
    for arch in Architecture::all() {
        let hit = measure(arch, 1.0);
        let miss = measure(arch, 0.0);
        t.row([
            arch.label().to_string(),
            format!("{:.1}%", hit.sysbus_io_util.min(1.0) * 100.0),
            format!("{:.1}%", miss.sysbus_io_util.min(1.0) * 100.0),
            format!("{:.1}%", miss.sysbus_gc_util.min(1.0) * 100.0),
        ]);
    }
    t.print();
    println!();
    println!("paper: dSSD_f raises I/O bus utilization by 18.1% (DRAM hit) and");
    println!("       66.9% (flash write) over Baseline by evicting GC from the bus.");
}
