//! Fig 7: (a) normalized I/O and GC performance for the five Table 2
//! architectures under saturating writes with continuous GC; (b) system
//! bus utilization for I/O during GC, DRAM-hit vs flash-write.

use dssd_bench::report::{banner, pct, Table};
use dssd_bench::runner::{run_sweep, SweepPoint};
use dssd_bench::perf_config;
use dssd_kernel::parallel::default_jobs;
use dssd_kernel::SimSpan;
use dssd_ssd::Architecture;

fn point(arch: Architecture, dram_hit: f64) -> SweepPoint {
    let mut cfg = perf_config(arch);
    cfg.gc_continuous = true;
    let mut p = SweepPoint::writes(
        format!("{}/hit{dram_hit}", arch.label()),
        cfg,
        SimSpan::from_ms(30),
    );
    p.dram_hit = dram_hit;
    p
}

fn main() {
    // All ten runs (five architectures × {flash-write, DRAM-hit}) are
    // independent; fan them out and read the results back in order.
    let archs = Architecture::all();
    let mut points: Vec<SweepPoint> = archs.iter().map(|&a| point(a, 0.0)).collect();
    points.extend(archs.iter().map(|&a| point(a, 1.0)));
    let out = run_sweep(&points, default_jobs());
    let (miss, hit) = out.split_at(archs.len());

    banner("Fig 7(a): normalized I/O and GC performance (high-BW writes, GC active)");
    let base = miss[0].summary;
    let mut t = Table::new(["config", "io GB/s", "io vs base", "gc GB/s", "gc vs base"]);
    for (arch, o) in archs.iter().zip(miss) {
        let s = o.summary;
        t.row([
            arch.label().to_string(),
            format!("{:.2}", s.io_gbps),
            pct(s.io_gbps / base.io_gbps),
            format!("{:.2}", s.gc_gbps),
            pct(s.gc_gbps / base.gc_gbps),
        ]);
    }
    t.print();
    println!();
    println!("paper: BW +11.8% io / +10.9% gc; dSSD +42.7% / +63.8%;");
    println!("       dSSD_b only slightly above BW (fixed partitioned bandwidth);");
    println!("       dSSD_f nearly matches dSSD (parallel fNoC channels).");

    banner("Fig 7(b): I/O system-bus utilization during GC");
    let mut t = Table::new(["config", "DRAM-hit io util", "flash-write io util", "gc util"]);
    for ((arch, h), m) in archs.iter().zip(hit).zip(miss) {
        t.row([
            arch.label().to_string(),
            format!("{:.1}%", h.summary.sysbus_io_util.min(1.0) * 100.0),
            format!("{:.1}%", m.summary.sysbus_io_util.min(1.0) * 100.0),
            format!("{:.1}%", m.summary.sysbus_gc_util.min(1.0) * 100.0),
        ]);
    }
    t.print();
    println!();
    println!("paper: dSSD_f raises I/O bus utilization by 18.1% (DRAM hit) and");
    println!("       66.9% (flash write) over Baseline by evicting GC from the bus.");
}
