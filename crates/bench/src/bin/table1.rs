//! Table 1: simulation parameters, plus the derived calibration checks
//! the motivation section quotes (51.2 MB/s per-plane write bandwidth,
//! 409.6 MB/s with 8 planes, 3.2 GB/s low-bandwidth aggregate).

use dssd_bench::report::{banner, Table};
use dssd_flash::{FlashGeometry, FlashTiming};
use dssd_ssd::{Architecture, SsdConfig};

fn main() {
    banner("Table 1: simulation parameters");

    let c = SsdConfig::table1_ull(Architecture::Baseline);
    let g = c.geometry;
    let mut t = Table::new(["component", "parameter", "paper (Table 1)"]);
    t.row(["organization", "system bus", "8 GB/s (x1)"]);
    t.row([
        "organization",
        "system bus (model)",
        &format!("{} GB/s", c.system_bus_base_bytes_per_sec / 1_000_000_000),
    ]);
    t.row(["organization", "DRAM", "8 GB/s"]);
    t.row([
        "organization",
        "DRAM (model)",
        &format!("{} GB/s", c.dram_bytes_per_sec / 1_000_000_000),
    ]);
    t.row(["organization", "flash bus", "1 GB/s (1000 MHz, 8 bits)"]);
    t.row([
        "organization",
        "flash bus (model)",
        &format!("{} GB/s", c.flash_bus_bytes_per_sec / 1_000_000_000),
    ]);
    t.row([
        "organization",
        "array",
        "8 channels, 8 ways, 1 die, 8 planes, 1384 blocks, 384 pages",
    ]);
    t.row([
        "organization",
        "array (model)",
        &format!(
            "{} channels, {} ways, {} die, {} planes, {} blocks, {} pages",
            g.channels, g.ways, g.dies, g.planes, g.blocks, g.pages
        ),
    ]);
    t.row(["wear", "distribution", "gaussian, E=5578, s=826.9, provision 7%"]);
    let ull = FlashTiming::ull();
    t.row(["flash (ULL)", "read/write/erase", "5us / 50us / 1ms, 4KB page"]);
    t.row([
        "flash (ULL)",
        "model",
        &format!(
            "{:.0}us / {:.0}us / {:.0}ms, {} B page",
            ull.read.mid().as_us_f64(),
            ull.program.mid().as_us_f64(),
            ull.erase.mid().as_us_f64() / 1000.0,
            g.page_bytes
        ),
    ]);
    let tlc = FlashTiming::tlc();
    t.row(["memory (TLC)", "read/write/erase", "60-95us / 200-500us / 2ms, 16KB page"]);
    t.row([
        "memory (TLC)",
        "model",
        &format!(
            "{:.0}-{:.0}us / {:.0}-{:.0}us / {:.0}ms, {} B page",
            tlc.read.min.as_us_f64(),
            tlc.read.max.as_us_f64(),
            tlc.program.min.as_us_f64(),
            tlc.program.max.as_us_f64(),
            tlc.erase.mid().as_us_f64() / 1000.0,
            FlashGeometry::table1_tlc().page_bytes
        ),
    ]);
    t.row(["fNoC", "topology", "1D mesh, k=8, n=1, dim-order routing"]);
    t.row([
        "fNoC",
        "model",
        &format!("{:?}, k={}, dim-order routing", c.noc.topology, c.noc.terminals),
    ]);
    t.print();

    banner("Derived calibration (Sec 3 motivation numbers)");
    let per_plane = 4096.0 / ull.program_latency_mid().as_secs_f64() / 1e6;
    let mut t = Table::new(["quantity", "paper", "model"]);
    t.row([
        "1-plane chip write BW",
        "51.2 MB/s",
        &format!("{per_plane:.1} MB/s"),
    ]);
    t.row([
        "8-plane chip write BW",
        "409.6 MB/s",
        &format!("{:.1} MB/s", per_plane * 8.0),
    ]);
    t.row([
        "low-BW aggregate (8ch x 8way)",
        "~3.2 GB/s",
        &format!("{:.2} GB/s", per_plane * 64.0 / 1000.0),
    ]);
    t.row([
        "high-BW ceiling",
        "~8 GB/s (system bus)",
        &format!("{} GB/s", c.system_bus_base_bytes_per_sec / 1_000_000_000),
    ]);
    t.print();
}
