//! Per-tenant service outcome: counters, latency percentiles, and the
//! `dssd-service-report-v1` JSON emitter.
//!
//! The JSON shape is the contract checked by
//! `dssd_telemetry::json::validate_service_report` (and by
//! `dssd-cli validate --service` in CI); keep the two in lockstep.

use dssd_kernel::stats::Histogram;
use dssd_kernel::SimSpan;
use dssd_telemetry::chrome::escape;

/// One tenant's view of a service run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name from the spec.
    pub name: String,
    /// Submissions offered to the front-end (accepted or not).
    pub submitted: u64,
    /// Commands that reached the device and completed.
    pub completed: u64,
    /// Submissions bounced by admission control with a `Busy` completion.
    pub rejected: u64,
    /// Accepted submissions that could not dispatch immediately because
    /// the tenant's token bucket was dry (they waited in the SQ).
    pub throttled: u64,
    /// Accepted submissions still queued or in flight when the horizon
    /// closed — never silently dropped, just unfinished.
    pub expired: u64,
    /// Completions that reported a media failure.
    pub failed: u64,
    /// Submission-to-completion latency of completed commands submitted
    /// after the spec's warmup window.
    pub latency: Histogram,
}

impl TenantReport {
    pub(crate) fn new(name: String) -> Self {
        TenantReport {
            name,
            submitted: 0,
            completed: 0,
            rejected: 0,
            throttled: 0,
            expired: 0,
            failed: 0,
            latency: Histogram::new(),
        }
    }

    /// Accounting identity: every submission is completed, rejected,
    /// expired — nothing vanishes.
    pub(crate) fn assert_conserved(&self) {
        debug_assert_eq!(
            self.submitted,
            self.completed + self.rejected + self.expired,
            "tenant {} lost submissions",
            self.name
        );
    }
}

/// The outcome of a service run: one entry per tenant, in spec order.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Run horizon.
    pub duration: SimSpan,
    /// Per-tenant outcomes, in spec declaration order.
    pub tenants: Vec<TenantReport>,
}

impl ServiceReport {
    /// Total submissions across tenants.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.tenants.iter().map(|t| t.submitted).sum()
    }

    /// Total completions across tenants.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total admission rejections across tenants.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.tenants.iter().map(|t| t.rejected).sum()
    }

    /// Serializes as `dssd-service-report-v1` JSON.
    #[must_use]
    pub fn to_json(&mut self) -> String {
        let mut out = String::with_capacity(256 * (1 + self.tenants.len()));
        out.push_str("{\n  \"schema\": \"dssd-service-report-v1\",\n");
        out.push_str(&format!(
            "  \"duration_ms\": {},\n  \"tenants\": [\n",
            fmt_f64(self.duration.as_ns() as f64 / 1e6)
        ));
        let n = self.tenants.len();
        for (i, t) in self.tenants.iter_mut().enumerate() {
            let us = |s: SimSpan| fmt_f64(s.as_ns() as f64 / 1e3);
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"submitted\": {}, \"completed\": {}, \
                 \"rejected\": {}, \"throttled\": {}, \"expired\": {}, \"failed\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{}\n",
                escape(&t.name),
                t.submitted,
                t.completed,
                t.rejected,
                t.throttled,
                t.expired,
                t.failed,
                us(t.latency.percentile(0.50)),
                us(t.latency.percentile(0.95)),
                us(t.latency.percentile(0.99)),
                us(t.latency.max()),
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Plain decimal float (never scientific notation, which the validator's
/// strict number grammar accepts but humans diffing reports do not).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v:.3}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssd_telemetry::json::validate_service_report;

    fn sample() -> ServiceReport {
        let mut a = TenantReport::new("alpha".into());
        a.submitted = 10;
        a.completed = 8;
        a.rejected = 1;
        a.expired = 1;
        a.throttled = 3;
        for us in [10u64, 20, 30, 40] {
            a.latency.record(SimSpan::from_us(us));
        }
        let mut b = TenantReport::new("beta".into());
        b.submitted = 5;
        b.completed = 5;
        b.latency.record(SimSpan::from_us(7));
        ServiceReport { duration: SimSpan::from_ms(5), tenants: vec![a, b] }
    }

    #[test]
    fn emitted_json_passes_the_validator() {
        let json = sample().to_json();
        let stats = validate_service_report(&json).expect("validator rejected own emitter");
        assert_eq!(stats.tenants, 2);
        assert_eq!(stats.submitted, 15);
        assert_eq!(stats.completed, 13);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn json_is_deterministic_and_plain_decimal() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        // Numbers render as plain decimals with trailing zeros trimmed.
        assert!(a.contains("\"duration_ms\": 5,"), "{a}");
        assert!(a.contains("\"p50_us\": 20,"), "{a}");
        assert_eq!(fmt_f64(0.0001), "0");
        assert_eq!(fmt_f64(1234.5), "1234.5");
        assert_eq!(fmt_f64(2e6), "2000000");
        assert!(a.contains("\"name\": \"alpha\""));
    }

    #[test]
    fn conservation_identity_holds_for_sample() {
        for t in &sample().tenants {
            t.assert_conserved();
        }
    }
}
