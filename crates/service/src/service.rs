//! The live front-end: a virtual-time pacer that drives the steppable
//! simulator from per-tenant SQ/CQ rings under QoS admission control.
//!
//! # Pacer protocol
//!
//! The service walks the merged submission schedule instant by instant.
//! For each distinct instant `t` it:
//!
//! 1. advances the simulator with
//!    [`run_until_before`](SsdSim::run_until_before)`(t)` — every event
//!    strictly before `t` is processed, nothing at `t` has popped — and
//!    drains the completion log into the tenants' CQ rings;
//! 2. retry-dispatches queued SQ heads whose token buckets refilled,
//!    arbitrated weighted-round-robin across tenants;
//! 3. processes the submissions arriving at `t` in spec order:
//!    admission control first ([`CqStatus::Busy`] on violation —
//!    rejections are explicit completions, never silent drops), then
//!    *immediate dispatch* when the tenant's SQ is empty and its bucket
//!    is ready, else the entry waits in the SQ (`throttled`);
//! 4. re-arms a retry instant per throttled tenant at its head's exact
//!    bucket-ready time.
//!
//! # Determinism
//!
//! A service run is bit-identical to [`SsdSim::run_trace`] over
//! [`ServiceSpec::batch_requests`] whenever no QoS constraint binds:
//! arrivals are injected at [`ARRIVAL_RANK`](dssd_kernel::ARRIVAL_RANK)
//! (pop order ignores *push* time), step 3 dispatches unthrottled
//! submissions synchronously in spec order (so injection order equals
//! batch order even at shared instants, where weighted round robin
//! would interleave tenants differently), and the closing
//! `run_events(u64::MAX)` reproduces the batch run's beyond-horizon
//! event accounting. QoS only ever *delays* arrivals through steps 2/4
//! — the simulator underneath executes the same deterministic machine.

use std::collections::BTreeSet;

use dssd_kernel::SimTime;
use dssd_ssd::SsdSim;
use dssd_telemetry::{Class, Stage, Track};
use dssd_workload::Op;

use crate::qos::{TokenBucket, WrrArbiter};
use crate::report::{ServiceReport, TenantReport};
use crate::ring::{CompletionQueue, CqStatus, Cqe, SubmissionQueue, Sqe};
use crate::spec::{Namespace, ServiceSpec};

/// Trace-span id namespace for tenant completion spans: the high bit
/// keeps them disjoint from live request ids (slab keys), so a tenant
/// span is never buffered under an open request's lifecycle.
const TENANT_SPAN_ID: u64 = 1 << 63;

/// `cid` echoed in a [`CqStatus::Busy`] completion: the submission was
/// bounced before a command id was allocated, so there is none to echo.
pub const BUSY_CID: u64 = u64::MAX;

/// Per-tenant front-end state.
struct TenantState {
    sq: SubmissionQueue,
    cq: CompletionQueue,
    bucket: TokenBucket,
    ns: Namespace,
    /// In-flight + queued cap; 0 = unlimited.
    qd_cap: usize,
    /// Dispatched to the device, completion not yet drained.
    inflight: usize,
    report: TenantReport,
}

impl TenantState {
    /// Queue depth as admission control sees it.
    fn depth(&self) -> usize {
        self.inflight + self.sq.len()
    }
}

/// Dispatch record correlating a device completion tag back to the
/// submission it finishes. The simulator tags completions in start
/// order, which equals injection order, so `tag` indexes this table.
struct Dispatched {
    tenant: u16,
    cid: u64,
    submitted: SimTime,
    op: Op,
}

/// Runs the spec's arrival schedule live against `sim` (already
/// configured and prefilled; `begin_open_loop` .. `finish_run` happen
/// inside). Returns the per-tenant service report; the simulator's own
/// [`RunReport`](dssd_ssd::RunReport) stays available via
/// [`SsdSim::report`] for comparison against a batch run.
///
/// # Panics
///
/// Panics if the drive is too small to give every tenant a namespace
/// (see [`ServiceSpec::namespaces`]).
pub fn serve(spec: &ServiceSpec, sim: &mut SsdSim) -> ServiceReport {
    let lpns = sim.ftl().lpn_count();
    let schedule = spec.schedule(lpns);
    let namespaces = spec.namespaces(lpns);
    let weights: Vec<u32> = spec.tenants.iter().map(|t| t.weight).collect();
    let mut arb = WrrArbiter::new(&weights);
    let mut tenants: Vec<TenantState> = spec
        .tenants
        .iter()
        .zip(namespaces)
        .map(|(t, ns)| TenantState {
            sq: SubmissionQueue::new(spec.sq_depth),
            cq: CompletionQueue::new(spec.sq_depth),
            // Burst at least one whole request, else the bucket's level
            // caps below the head's cost and it can never dispatch.
            bucket: TokenBucket::new(
                t.rate_pages_per_sec,
                t.burst_pages.max(u64::from(t.pages)),
            ),
            ns,
            qd_cap: t.qd_cap,
            inflight: 0,
            report: TenantReport::new(t.name.clone()),
        })
        .collect();

    let mut tag_map: Vec<Dispatched> = Vec::with_capacity(schedule.len());
    let mut dispatched_total: u64 = 0;
    let mut completed_total: u64 = 0;
    // Pending bucket-refill instants; each is some queued head's exact
    // ready time, so arriving there always dispatches at least one entry.
    let mut retries: BTreeSet<SimTime> = BTreeSet::new();

    sim.set_completion_log(true);
    sim.begin_open_loop(spec.duration);
    let horizon = sim.horizon();

    let mut next_sub = 0usize;
    loop {
        let sub_at = schedule.get(next_sub).map(|s| s.at);
        let retry_at = retries.first().copied();
        let t = match (sub_at, retry_at) {
            (Some(s), Some(r)) => s.min(r),
            (Some(s), None) => s,
            (None, Some(r)) => r,
            (None, None) => break,
        };

        // 1. Advance to (not into) t; free slots for completions < t.
        sim.run_until_before(t);
        drain_completions(sim, &mut tenants, &tag_map, &mut completed_total, spec.warmup);

        // 2. Refilled buckets release queued heads, WRR-arbitrated.
        if retries.remove(&t) {
            while let Some(i) = arb.grant(|i| {
                let ts = &tenants[i];
                ts.sq.peek().is_some_and(|(_, _, sqe)| {
                    ts.bucket.ready_at(t, sqe.pages) <= t
                })
            }) {
                let ts = &mut tenants[i];
                let (cid, submitted, sqe) = ts.sq.pop().expect("granted an empty queue");
                dispatch(sim, ts, &mut tag_map, i as u16, cid, submitted, sqe, t);
                dispatched_total += 1;
            }
        }

        // 3. Submissions at t, in spec order.
        while let Some(sub) = schedule.get(next_sub).filter(|s| s.at == t) {
            next_sub += 1;
            let i = sub.tenant as usize;
            let backlog = (dispatched_total - completed_total) as usize;
            let ts = &mut tenants[i];
            ts.report.submitted += 1;
            let over_qd = ts.qd_cap > 0 && ts.depth() >= ts.qd_cap;
            let over_backlog = spec.backlog_limit > 0 && backlog >= spec.backlog_limit;
            if over_qd || over_backlog || ts.sq.is_full() {
                ts.report.rejected += 1;
                post_and_drain(ts, Cqe {
                    cid: BUSY_CID,
                    status: CqStatus::Busy,
                    submitted: t,
                    completed: t,
                }, true);
                sim.tracer_mut().instant(Track::Tenant(sub.tenant), "busy", t);
                continue;
            }
            let was_empty = ts.sq.is_empty();
            let cid = ts.sq.submit(t, sub.sqe).expect("fullness checked above");
            if was_empty && ts.bucket.ready_at(t, sub.sqe.pages) <= t {
                let (cid2, submitted, sqe) = ts.sq.pop().expect("just submitted");
                debug_assert_eq!(cid2, cid);
                dispatch(sim, ts, &mut tag_map, sub.tenant, cid, submitted, sqe, t);
                dispatched_total += 1;
            } else {
                ts.report.throttled += 1;
                sim.tracer_mut().instant(Track::Tenant(sub.tenant), "throttled", t);
            }
        }

        // 4. Re-arm a retry at each queued head's bucket-ready instant.
        for ts in &tenants {
            if let Some((_, _, sqe)) = ts.sq.peek() {
                let ready = ts.bucket.ready_at(t, sqe.pages);
                debug_assert!(ready > t, "ready head left queued at {t:?}");
                if ready <= horizon {
                    retries.insert(ready);
                }
            }
        }
    }

    // Run out the clock exactly as a batch run would, then settle.
    sim.run_events(u64::MAX);
    drain_completions(sim, &mut tenants, &tag_map, &mut completed_total, spec.warmup);
    sim.finish_run();

    let mut report = ServiceReport { duration: spec.duration, tenants: Vec::new() };
    for mut ts in tenants {
        // Whatever the horizon cut off — queued behind a dry bucket or
        // dispatched but unfinished — is accounted, not dropped.
        ts.report.expired = (ts.sq.len() + ts.inflight) as u64;
        ts.report.assert_conserved();
        report.tenants.push(ts.report);
    }
    report
}

/// Maps a queue entry onto the tenant's namespace and injects it into
/// the simulator, charging the token bucket and recording the tag
/// correlation.
#[allow(clippy::too_many_arguments)] // flat pacer state, called twice
fn dispatch(
    sim: &mut SsdSim,
    ts: &mut TenantState,
    tag_map: &mut Vec<Dispatched>,
    tenant: u16,
    cid: u64,
    submitted: SimTime,
    sqe: Sqe,
    now: SimTime,
) {
    ts.bucket.consume(now, sqe.pages);
    let injected = sim.inject_arrival(now, ts.ns.map(sqe));
    debug_assert!(injected, "dispatch instant past the horizon");
    ts.inflight += 1;
    tag_map.push(Dispatched { tenant, cid, submitted, op: sqe.op });
}

/// Moves the simulator's completion log into the owning tenants' CQ
/// rings and folds the drained CQEs into their reports.
fn drain_completions(
    sim: &mut SsdSim,
    tenants: &mut [TenantState],
    tag_map: &[Dispatched],
    completed_total: &mut u64,
    warmup: dssd_kernel::SimSpan,
) {
    let completions = sim.take_completions();
    if completions.is_empty() {
        return;
    }
    let tracer = sim.tracer_mut();
    for c in completions {
        let d = &tag_map[c.tag as usize];
        let ts = &mut tenants[d.tenant as usize];
        ts.inflight -= 1;
        *completed_total += 1;
        let measured = d.submitted >= SimTime::ZERO + warmup;
        post_and_drain(ts, Cqe {
            cid: d.cid,
            status: if c.failed { CqStatus::MediaError } else { CqStatus::Ok },
            submitted: d.submitted,
            completed: c.at,
        }, measured);
        tracer.span_named(
            Class::Io,
            TENANT_SPAN_ID | c.tag,
            Track::Tenant(d.tenant),
            Stage::SystemBus,
            match d.op {
                Op::Read => "read",
                Op::Write => "write",
            },
            d.submitted,
            c.at.saturating_since(d.submitted),
        );
    }
}

/// Posts one completion and immediately plays the host's role, draining
/// the CQ ring into the tenant report — the host drains every pacer
/// step, so the ring never backs up. Completions submitted inside the
/// warmup window arrive with `measured == false`: counted, but kept out
/// of the latency percentiles.
fn post_and_drain(ts: &mut TenantState, cqe: Cqe, measured: bool) {
    ts.cq.post(cqe).expect("host drains the CQ every step");
    while let Some(c) = ts.cq.pop() {
        match c.status {
            CqStatus::Busy => {}
            CqStatus::Ok | CqStatus::MediaError => {
                ts.report.completed += 1;
                if c.status == CqStatus::MediaError {
                    ts.report.failed += 1;
                }
                if measured {
                    ts.report.latency.record(c.completed.saturating_since(c.submitted));
                }
            }
        }
    }
}
