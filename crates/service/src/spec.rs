//! Tenant/arrival spec: the scripted input of `dssd-cli serve`.
//!
//! A spec is a small line-oriented text format describing the run
//! horizon, the admission-control backlog threshold, and one line per
//! tenant (offered load, request shape, namespace share, QoS knobs):
//!
//! ```text
//! # two tenants, 5 ms
//! duration_ms 5
//! seed 42
//! backlog 256
//! sq_depth 64
//! tenant victim iops=50000  pages=1 read=1.0 weight=2
//! tenant hog    iops=400000 pages=8 rate=20000 burst=16 qd=32
//! ```
//!
//! The spec deterministically expands into a merged submission
//! schedule ([`ServiceSpec::schedule`]): per-tenant Poisson arrivals
//! (exponential inter-arrival gaps from a per-tenant fork of the seed)
//! with addresses drawn inside the tenant's namespace. The *same*
//! schedule, mapped through the namespace layout
//! ([`ServiceSpec::batch_requests`]), is a plain open-loop request
//! vector for [`SsdSim::run_trace`](dssd_ssd::SsdSim::run_trace) — the
//! batch plan the service run must reproduce bit-identically when no
//! QoS constraint binds.

use dssd_kernel::{Rng, SimSpan, SimTime};
use dssd_workload::{AccessPattern, Op, Request};

use crate::ring::Sqe;

/// Per-tenant rng fork stream tag (xored with the tenant index).
const TENANT_STREAM: u64 = 0x7E4A_5EED;

/// One tenant's offered load, namespace share and QoS configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (unique within the spec).
    pub name: String,
    /// Offered load in requests per second.
    pub iops: f64,
    /// Request size in pages.
    pub pages: u32,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Address pattern inside the namespace.
    pub pattern: AccessPattern,
    /// Weighted-round-robin arbitration weight.
    pub weight: u32,
    /// Token-bucket refill rate in pages/sec; 0 = unlimited.
    pub rate_pages_per_sec: u64,
    /// Token-bucket burst capacity in pages.
    pub burst_pages: u64,
    /// Queue-depth cap (in-flight + queued); 0 = unlimited.
    pub qd_cap: usize,
}

impl TenantSpec {
    fn defaults(name: String) -> Self {
        TenantSpec {
            name,
            iops: 0.0,
            pages: 1,
            read_fraction: 0.0,
            pattern: AccessPattern::Random,
            weight: 1,
            rate_pages_per_sec: 0,
            burst_pages: 8,
            qd_cap: 0,
        }
    }
}

/// A parsed service spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Run horizon.
    pub duration: SimSpan,
    /// Measurement warmup: completions *submitted* before this offset
    /// still count (completed/failed/etc.) but are excluded from the
    /// latency percentiles, so cold-start transients don't pollute
    /// steady-state tails.
    pub warmup: SimSpan,
    /// Master seed for the arrival streams.
    pub seed: u64,
    /// Global admission threshold: submissions are rejected `Busy` while
    /// this many requests are dispatched-but-incomplete. 0 = unlimited.
    pub backlog_limit: usize,
    /// Submission/completion ring depth per tenant.
    pub sq_depth: usize,
    /// The tenants, in declaration order (= tie-break order for
    /// same-instant submissions).
    pub tenants: Vec<TenantSpec>,
}

/// A parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// One entry of the merged submission schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// Submission instant.
    pub at: SimTime,
    /// Tenant index (into [`ServiceSpec::tenants`]).
    pub tenant: u16,
    /// The command (namespace-relative address).
    pub sqe: Sqe,
}

/// A tenant's slice of the drive's logical space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Namespace {
    /// First drive-absolute logical page of the slice.
    pub base: u64,
    /// Pages in the slice.
    pub pages: u64,
}

impl Namespace {
    /// Maps a namespace-relative command onto the drive's logical space.
    /// The address is wrapped into the slice, so no command can touch
    /// another tenant's pages regardless of the `lba` it carries.
    #[must_use]
    pub fn map(&self, sqe: Sqe) -> Request {
        let span = u64::from(sqe.pages);
        let slots = (self.pages / span).max(1);
        let lpn = self.base + (sqe.lba / span % slots) * span;
        let r = Request::new(sqe.op, lpn, sqe.pages);
        if sqe.cached {
            r.cached()
        } else {
            r
        }
    }
}

impl ServiceSpec {
    /// Parses the spec text format shown in the [module docs](self).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first offending line.
    pub fn parse(text: &str) -> Result<ServiceSpec, SpecError> {
        let mut spec = ServiceSpec {
            duration: SimSpan::from_ms(1),
            warmup: SimSpan::ZERO,
            seed: 1,
            backlog_limit: 0,
            sq_depth: 64,
            tenants: Vec::new(),
        };
        let mut saw_duration = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| SpecError { line: lineno + 1, message };
            let mut words = line.split_whitespace();
            let key = words.next().expect("non-empty line");
            match key {
                "duration_ms" => {
                    let v: f64 = parse_word(words.next(), key, lineno + 1)?;
                    if !(v > 0.0) {
                        return Err(err(format!("duration_ms must be positive, got {v}")));
                    }
                    spec.duration = SimSpan::from_ns((v * 1e6) as u64);
                    saw_duration = true;
                }
                "warmup_ms" => {
                    let v: f64 = parse_word(words.next(), key, lineno + 1)?;
                    if !(v >= 0.0) {
                        return Err(err(format!("warmup_ms must be non-negative, got {v}")));
                    }
                    spec.warmup = SimSpan::from_ns((v * 1e6) as u64);
                }
                "seed" => spec.seed = parse_word(words.next(), key, lineno + 1)?,
                "backlog" => {
                    spec.backlog_limit = parse_word(words.next(), key, lineno + 1)?;
                }
                "sq_depth" => {
                    spec.sq_depth = parse_word(words.next(), key, lineno + 1)?;
                    if spec.sq_depth == 0 {
                        return Err(err("sq_depth must be positive".into()));
                    }
                }
                "tenant" => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("tenant line missing a name".into()))?;
                    if spec.tenants.iter().any(|t| t.name == name) {
                        return Err(err(format!("duplicate tenant name '{name}'")));
                    }
                    let mut t = TenantSpec::defaults(name.to_string());
                    for kv in words {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected key=value, got '{kv}'")))?;
                        match k {
                            "iops" => t.iops = parse_val(v, k, lineno + 1)?,
                            "pages" => t.pages = parse_val(v, k, lineno + 1)?,
                            "read" => t.read_fraction = parse_val(v, k, lineno + 1)?,
                            "weight" => t.weight = parse_val(v, k, lineno + 1)?,
                            "rate" => t.rate_pages_per_sec = parse_val(v, k, lineno + 1)?,
                            "burst" => t.burst_pages = parse_val(v, k, lineno + 1)?,
                            "qd" => t.qd_cap = parse_val(v, k, lineno + 1)?,
                            "pattern" => {
                                t.pattern = match v {
                                    "random" => AccessPattern::Random,
                                    "sequential" => AccessPattern::Sequential,
                                    other => {
                                        return Err(err(format!(
                                            "unknown pattern '{other}' (random|sequential)"
                                        )))
                                    }
                                }
                            }
                            other => {
                                return Err(err(format!("unknown tenant key '{other}'")))
                            }
                        }
                    }
                    if !(t.iops > 0.0) {
                        return Err(err(format!(
                            "tenant '{name}' needs a positive iops=…"
                        )));
                    }
                    if t.pages == 0 {
                        return Err(err(format!("tenant '{name}' pages must be positive")));
                    }
                    if !(0.0..=1.0).contains(&t.read_fraction) {
                        return Err(err(format!(
                            "tenant '{name}' read fraction outside [0, 1]"
                        )));
                    }
                    spec.tenants.push(t);
                }
                other => return Err(err(format!("unknown directive '{other}'"))),
            }
        }
        if spec.tenants.is_empty() {
            return Err(SpecError { line: 0, message: "spec declares no tenants".into() });
        }
        if !saw_duration {
            return Err(SpecError {
                line: 0,
                message: "spec missing a duration_ms directive".into(),
            });
        }
        if spec.warmup >= spec.duration {
            return Err(SpecError {
                line: 0,
                message: "warmup_ms must be shorter than duration_ms".into(),
            });
        }
        Ok(spec)
    }

    /// Equal-share namespace layout over a drive of `lpn_count` logical
    /// pages: tenant `i` owns `[i * share, (i + 1) * share)`.
    ///
    /// # Panics
    ///
    /// Panics if the drive is too small to give every tenant at least
    /// its request size.
    #[must_use]
    pub fn namespaces(&self, lpn_count: u64) -> Vec<Namespace> {
        let n = self.tenants.len() as u64;
        let share = lpn_count / n;
        for t in &self.tenants {
            assert!(
                share >= u64::from(t.pages),
                "namespace share {share} pages cannot hold a {} page request of tenant {}",
                t.pages,
                t.name
            );
        }
        (0..n).map(|i| Namespace { base: i * share, pages: share }).collect()
    }

    /// Expands the spec into the merged submission schedule: per-tenant
    /// Poisson arrivals, merged in `(instant, tenant index)` order (each
    /// tenant's own stream stays FIFO). Pure function of the spec.
    #[must_use]
    pub fn schedule(&self, lpn_count: u64) -> Vec<Submission> {
        let namespaces = self.namespaces(lpn_count);
        let horizon_ns = self.duration.as_ns() as f64;
        let mut merged: Vec<Submission> = Vec::new();
        for (i, (t, ns)) in self.tenants.iter().zip(&namespaces).enumerate() {
            let mut rng = Rng::new(self.seed).fork(TENANT_STREAM ^ i as u64);
            let mean_gap_ns = 1e9 / t.iops;
            let span = u64::from(t.pages);
            let slots = (ns.pages / span).max(1);
            let mut cursor = 0u64;
            let mut at = 0.0f64;
            loop {
                at += rng.exponential(mean_gap_ns);
                if at >= horizon_ns {
                    break;
                }
                let lba = match t.pattern {
                    AccessPattern::Sequential => {
                        let l = cursor;
                        cursor = (cursor + 1) % slots;
                        l * span
                    }
                    AccessPattern::Random => rng.range_u64(0..slots) * span,
                };
                let op = if rng.chance(t.read_fraction) { Op::Read } else { Op::Write };
                merged.push(Submission {
                    at: SimTime::from_ns(at as u64),
                    tenant: i as u16,
                    sqe: Sqe { op, lba, pages: t.pages, cached: false },
                });
            }
        }
        // Stable by construction: per-tenant instants are non-decreasing,
        // so sorting by (instant, tenant) keeps each stream FIFO.
        merged.sort_by_key(|s| (s.at, s.tenant));
        merged
    }

    /// The schedule as a plain open-loop request vector (addresses mapped
    /// through the namespace layout), in the exact order an unconstrained
    /// service run dispatches it — the batch plan for the bit-identity
    /// check.
    #[must_use]
    pub fn batch_requests(&self, lpn_count: u64) -> Vec<(SimTime, Request)> {
        let namespaces = self.namespaces(lpn_count);
        self.schedule(lpn_count)
            .into_iter()
            .map(|s| (s.at, namespaces[s.tenant as usize].map(s.sqe)))
            .collect()
    }
}

fn parse_word<T: std::str::FromStr>(
    word: Option<&str>,
    key: &str,
    line: usize,
) -> Result<T, SpecError> {
    let w = word.ok_or_else(|| SpecError {
        line,
        message: format!("'{key}' needs a value"),
    })?;
    parse_val(w, key, line)
}

fn parse_val<T: std::str::FromStr>(v: &str, key: &str, line: usize) -> Result<T, SpecError> {
    v.parse().map_err(|_| SpecError {
        line,
        message: format!("invalid value '{v}' for '{key}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# demo
duration_ms 2
warmup_ms 0.5
seed 7
backlog 128
tenant a iops=100000 pages=2 read=0.5 weight=2 pattern=sequential
tenant b iops=50000 rate=4000 burst=4 qd=16  # trailing comment
";

    #[test]
    fn parses_directives_and_tenants() {
        let s = ServiceSpec::parse(SPEC).unwrap();
        assert_eq!(s.duration, SimSpan::from_ms(2));
        assert_eq!(s.warmup, SimSpan::from_us(500));
        assert_eq!(s.seed, 7);
        assert_eq!(s.backlog_limit, 128);
        assert_eq!(s.sq_depth, 64);
        assert_eq!(s.tenants.len(), 2);
        let a = &s.tenants[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.pages, 2);
        assert_eq!(a.weight, 2);
        assert_eq!(a.pattern, AccessPattern::Sequential);
        let b = &s.tenants[1];
        assert_eq!(b.rate_pages_per_sec, 4000);
        assert_eq!(b.burst_pages, 4);
        assert_eq!(b.qd_cap, 16);
    }

    #[test]
    fn rejects_malformed_specs() {
        for (bad, needle) in [
            ("duration_ms 1\n", "no tenants"),
            ("tenant a iops=1000\n", "duration_ms"),
            ("duration_ms 1\ntenant a\n", "iops"),
            ("duration_ms 1\ntenant a iops=1 iops\n", "key=value"),
            ("duration_ms 1\ntenant a iops=1 pattern=zig\n", "pattern"),
            ("duration_ms 1\ntenant a iops=1\ntenant a iops=1\n", "duplicate"),
            ("duration_ms 0\ntenant a iops=1\n", "positive"),
            ("bogus 3\n", "directive"),
            ("duration_ms 1\nwarmup_ms 1\ntenant a iops=1\n", "warmup"),
            ("duration_ms 1\nwarmup_ms -2\ntenant a iops=1\n", "warmup"),
            ("duration_ms 1\ntenant a iops=1 read=1.5\n", "read fraction"),
        ] {
            let e = ServiceSpec::parse(bad).unwrap_err();
            assert!(e.message.contains(needle), "{bad:?} gave {e}");
        }
    }

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let s = ServiceSpec::parse(SPEC).unwrap();
        let a = s.schedule(1 << 16);
        let b = s.schedule(1 << 16);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!((w[0].at, w[0].tenant) <= (w[1].at, w[1].tenant));
        }
        // ~100k + 50k IOPS over 2 ms ≈ 300 submissions.
        let n = a.len() as f64;
        assert!((n - 300.0).abs() < 120.0, "{n} submissions");
    }

    #[test]
    fn namespaces_partition_without_overlap() {
        let s = ServiceSpec::parse(SPEC).unwrap();
        let ns = s.namespaces(1000);
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[0], Namespace { base: 0, pages: 500 });
        assert_eq!(ns[1], Namespace { base: 500, pages: 500 });
    }

    #[test]
    fn namespace_map_confines_addresses() {
        let ns = Namespace { base: 1000, pages: 100 };
        for lba in [0u64, 4, 96, 100, 9999] {
            let r = ns.map(Sqe { op: Op::Read, lba, pages: 4, cached: false });
            assert!(r.lpn >= 1000 && r.lpn + 4 <= 1100, "lpn {} escapes", r.lpn);
            assert_eq!((r.lpn - 1000) % 4, 0);
        }
    }

    #[test]
    fn batch_requests_match_schedule_through_namespaces() {
        let s = ServiceSpec::parse(SPEC).unwrap();
        let lpns = 1 << 16;
        let ns = s.namespaces(lpns);
        let sched = s.schedule(lpns);
        let batch = s.batch_requests(lpns);
        assert_eq!(sched.len(), batch.len());
        for (sub, (at, req)) in sched.iter().zip(&batch) {
            assert_eq!(sub.at, *at);
            assert_eq!(ns[sub.tenant as usize].map(sub.sqe), *req);
        }
    }
}
