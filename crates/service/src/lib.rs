//! Live block-device front-end for the dSSD simulator.
//!
//! Everything between a multi-tenant host and the simulated drive:
//! io_uring/NVMe-style submission and completion rings ([`ring`]),
//! per-tenant namespaces and the scripted arrival spec ([`spec`]),
//! token-bucket rate limiting with weighted-round-robin arbitration
//! ([`qos`]), the virtual-time pacer that drives the steppable
//! simulator ([`service`]), and the per-tenant outcome report
//! ([`report`]).
//!
//! The front-end's defining property is *pacing without perturbing*: a
//! live [`serve`] run fed an arrival schedule produces a simulator
//! state and [`RunReport`](dssd_ssd::RunReport) bit-identical to
//! handing [`SsdSim::run_trace`](dssd_ssd::SsdSim::run_trace) the same
//! schedule up front — QoS can delay *when* commands reach the device,
//! but the front-end's existence alone changes nothing.

pub mod qos;
pub mod report;
pub mod ring;
pub mod service;
pub mod spec;

pub use qos::{TokenBucket, WrrArbiter};
pub use report::{ServiceReport, TenantReport};
pub use ring::{CompletionQueue, CqStatus, Cqe, RingFull, Sqe, SubmissionQueue};
pub use service::{serve, BUSY_CID};
pub use spec::{Namespace, ServiceSpec, SpecError, Submission, TenantSpec};
