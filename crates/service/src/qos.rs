//! Per-tenant QoS machinery: token-bucket rate limiting and weighted
//! round-robin arbitration.
//!
//! Everything here is integer arithmetic on simulated time, so QoS
//! decisions are bit-reproducible: a bucket's ready instant is a pure
//! function of the submission history, never of float rounding or of
//! when the scheduler happened to look.

use dssd_kernel::SimTime;

/// Token units per page. Tokens are accounted in *page-units*: a bucket
/// refilling at `rate` pages/sec gains `rate` units per nanosecond of
/// simulated time, and one page costs [`UNITS_PER_PAGE`] units — so
/// refill math is exact u128 integer arithmetic at nanosecond
/// resolution.
const UNITS_PER_PAGE: u128 = 1_000_000_000;

/// A token-bucket rate limiter in pages per second.
///
/// A bucket with rate 0 is *unlimited*: every request is ready
/// immediately and consumes nothing (the bit-identity baseline — a
/// no-QoS service run must make the exact decisions of a batch run).
///
/// # Example
///
/// ```
/// use dssd_service::TokenBucket;
/// use dssd_kernel::SimTime;
///
/// // 1000 pages/sec, burst of 1 page: one page per millisecond.
/// let mut b = TokenBucket::new(1000, 1);
/// assert_eq!(b.ready_at(SimTime::ZERO, 1), SimTime::ZERO);
/// b.consume(SimTime::ZERO, 1);
/// assert_eq!(b.ready_at(SimTime::ZERO, 1), SimTime::from_us(1000));
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in pages per second; 0 = unlimited.
    rate: u64,
    /// Capacity in token units.
    cap: u128,
    /// Current level in token units.
    level: u128,
    /// Last refill instant.
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate` pages/sec holding at most
    /// `burst` pages. A full bucket starts the run. `rate == 0` means
    /// unlimited; `burst` is clamped up to one page so a single request
    /// can always eventually dispatch.
    #[must_use]
    pub fn new(rate: u64, burst: u64) -> Self {
        let cap = u128::from(burst.max(1)) * UNITS_PER_PAGE;
        TokenBucket { rate, cap, level: cap, last: SimTime::ZERO }
    }

    /// True when this bucket never throttles.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.rate == 0
    }

    /// Credits accrued between `self.last` and `now` into the level.
    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let dt = u128::from((now - self.last).as_ns());
        self.level = (self.level + dt * u128::from(self.rate)).min(self.cap);
        self.last = now;
    }

    /// The earliest instant at or after `now` when `pages` tokens are
    /// available. Does not consume.
    #[must_use]
    pub fn ready_at(&self, now: SimTime, pages: u32) -> SimTime {
        if self.is_unlimited() {
            return now;
        }
        let mut level = self.level;
        if now > self.last {
            let dt = u128::from((now - self.last).as_ns());
            level = (level + dt * u128::from(self.rate)).min(self.cap);
        }
        let cost = u128::from(pages) * UNITS_PER_PAGE;
        if level >= cost {
            return now;
        }
        let deficit = cost - level;
        // Ceiling division: the first whole nanosecond with enough
        // tokens. u64 overflow is unreachable for sane rates/horizons.
        let wait = deficit.div_ceil(u128::from(self.rate));
        now.max(self.last) + dssd_kernel::SimSpan::from_ns(wait as u64)
    }

    /// Consumes `pages` tokens at `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tokens are not available — callers gate on
    /// [`TokenBucket::ready_at`] first.
    pub fn consume(&mut self, now: SimTime, pages: u32) {
        if self.is_unlimited() {
            return;
        }
        self.refill(now);
        let cost = u128::from(pages) * UNITS_PER_PAGE;
        debug_assert!(self.level >= cost, "token bucket overdrawn");
        self.level = self.level.saturating_sub(cost);
    }
}

/// Weighted round-robin arbiter over `n` competing queues.
///
/// Classic credit scheme: each queue holds up to `weight` credits; a
/// grant costs one. The arbiter scans from a rotating pointer so equal
/// weights degenerate to plain round robin, and refills every queue's
/// credits only when no *eligible* queue has any left — so a tenant's
/// share is `weight / Σweights` under contention, while idle tenants
/// donate their slots instead of starving the ring.
#[derive(Debug, Clone)]
pub struct WrrArbiter {
    weights: Vec<u32>,
    credits: Vec<u32>,
    /// Next queue to consider (rotates on every grant).
    ptr: usize,
}

impl WrrArbiter {
    /// Creates an arbiter; one entry per queue, weights clamped ≥ 1.
    #[must_use]
    pub fn new(weights: &[u32]) -> Self {
        let weights: Vec<u32> = weights.iter().map(|&w| w.max(1)).collect();
        let credits = weights.clone();
        WrrArbiter { weights, credits, ptr: 0 }
    }

    /// Picks the next queue to grant among those where `eligible(i)` is
    /// true, consuming one credit and rotating the pointer. Returns
    /// `None` when no queue is eligible.
    pub fn grant(&mut self, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        let n = self.weights.len();
        // Two passes: with current credits, then after a refill. A queue
        // that is eligible but creditless only waits for the *round* to
        // end, never forever.
        for _ in 0..2 {
            for off in 0..n {
                let i = (self.ptr + off) % n;
                if self.credits[i] > 0 && eligible(i) {
                    self.credits[i] -= 1;
                    self.ptr = (i + 1) % n;
                    return Some(i);
                }
            }
            if (0..n).any(&eligible) {
                self.credits.copy_from_slice(&self.weights);
            } else {
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssd_kernel::SimSpan;

    #[test]
    fn unlimited_bucket_never_waits() {
        let mut b = TokenBucket::new(0, 0);
        assert!(b.is_unlimited());
        for i in 0..100 {
            let t = SimTime::from_ns(i);
            assert_eq!(b.ready_at(t, 64), t);
            b.consume(t, 64);
        }
    }

    #[test]
    fn bucket_enforces_long_run_rate() {
        // 8 pages/ms with a 8-page burst: 1000 requests of 8 pages take
        // ~999 ms (the first is free from the full bucket).
        let mut b = TokenBucket::new(8000, 8);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            t = b.ready_at(t, 8);
            b.consume(t, 8);
        }
        let ms = t.as_ns() as f64 / 1e6;
        assert!((ms - 999.0).abs() < 1.0, "took {ms} ms");
    }

    #[test]
    fn burst_absorbs_a_spike_then_throttles() {
        let mut b = TokenBucket::new(1000, 4);
        // Four single-page requests pass immediately off the full bucket.
        for _ in 0..4 {
            assert_eq!(b.ready_at(SimTime::ZERO, 1), SimTime::ZERO);
            b.consume(SimTime::ZERO, 1);
        }
        // The fifth waits a full token period (1 ms at 1000 pages/s).
        assert_eq!(b.ready_at(SimTime::ZERO, 1), SimTime::from_us(1000));
    }

    #[test]
    fn ready_at_is_stable_and_exact() {
        let mut b = TokenBucket::new(3, 1);
        b.consume(SimTime::ZERO, 1);
        // 1 page deficit = 1e9 units at 3 units/ns: ceil(1e9 / 3) ns.
        let at = b.ready_at(SimTime::ZERO, 1);
        assert_eq!(at.as_ns(), 333_333_334);
        // ready_at does not consume; asking again gives the same answer.
        assert_eq!(b.ready_at(SimTime::ZERO, 1), at);
        // Consuming exactly at the ready instant must succeed.
        b.consume(at, 1);
        assert!(b.ready_at(at, 1) > at);
    }

    #[test]
    fn bucket_level_caps_at_burst() {
        let mut b = TokenBucket::new(1_000_000, 2);
        b.consume(SimTime::ZERO, 2);
        // A long idle period refills to the cap, not beyond it.
        let later = SimTime::ZERO + SimSpan::from_ms(1000);
        assert_eq!(b.ready_at(later, 2), later);
        b.consume(later, 2);
        assert!(b.ready_at(later, 3) > later);
    }

    #[test]
    fn wrr_shares_match_weights() {
        let mut arb = WrrArbiter::new(&[3, 1]);
        let mut grants = [0u32; 2];
        for _ in 0..400 {
            let i = arb.grant(|_| true).unwrap();
            grants[i] += 1;
        }
        assert_eq!(grants, [300, 100]);
    }

    #[test]
    fn wrr_idle_queue_donates_bandwidth() {
        let mut arb = WrrArbiter::new(&[1, 1, 2]);
        // Queue 1 never has work; 0 and 2 split 1:2.
        let mut grants = [0u32; 3];
        for _ in 0..300 {
            let i = arb.grant(|i| i != 1).unwrap();
            grants[i] += 1;
        }
        assert_eq!(grants[1], 0);
        assert_eq!(grants[0] + grants[2], 300);
        assert_eq!(grants[0] * 2, grants[2]);
    }

    #[test]
    fn wrr_none_when_nothing_eligible() {
        let mut arb = WrrArbiter::new(&[2, 2]);
        assert_eq!(arb.grant(|_| false), None);
        // And it still grants afterwards.
        assert!(arb.grant(|_| true).is_some());
    }

    #[test]
    fn wrr_is_deterministic() {
        let run = || {
            let mut arb = WrrArbiter::new(&[2, 3, 1]);
            (0..50).map(|k| arb.grant(|i| (i + k) % 2 == 0).map_or(9, |i| i)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
