//! io_uring/NVMe-style fixed-depth submission and completion rings.
//!
//! Both rings are classic single-producer/single-consumer circular
//! buffers with free-running head/tail cursors masked into a
//! power-of-two slot array. The producer writes a slot and *rings the
//! doorbell* (advances its tail); the consumer reads at head. In this
//! simulated front-end the host driver and the device share one address
//! space, so the doorbell is an ordinary method call — but the protocol
//! (slot reuse only after the consumer advances past it, fullness
//! detected by cursor distance, never by sentinel values) is the real
//! one.

use dssd_kernel::SimTime;
use dssd_workload::Op;

/// One submission-queue entry: a tenant-relative I/O command.
///
/// The logical address is *namespace-relative* — the service maps it
/// onto the tenant's slice of the drive's logical space at dispatch, so
/// no tenant can name another tenant's pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqe {
    /// Direction.
    pub op: Op,
    /// First logical page, relative to the tenant's namespace.
    pub lba: u64,
    /// Consecutive pages.
    pub pages: u32,
    /// Serviced from the device DRAM cache (never touches flash).
    pub cached: bool,
}

/// Completion status posted in a [`Cqe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqStatus {
    /// The command completed successfully.
    Ok,
    /// The command completed but the device lost data (media failure).
    MediaError,
    /// The submission was rejected by admission control (queue-depth cap
    /// or global backpressure). The command never reached the device;
    /// the host may retry later.
    Busy,
}

/// One completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// Command id: the per-tenant submission sequence number, echoed
    /// back so the host can correlate completions with submissions.
    pub cid: u64,
    /// Outcome.
    pub status: CqStatus,
    /// When the host submitted the command.
    pub submitted: SimTime,
    /// When the completion was posted ( = the rejection instant for
    /// [`CqStatus::Busy`]).
    pub completed: SimTime,
}

/// Error returned when pushing to a full ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

/// A fixed-depth ring of `T` with free-running cursors.
#[derive(Debug, Clone)]
struct Ring<T> {
    slots: Vec<Option<T>>,
    /// Consumer cursor: next slot to pop. Free-running; masked on use.
    head: u64,
    /// Producer cursor (the doorbell): next slot to fill.
    tail: u64,
}

impl<T> Ring<T> {
    fn new(depth: usize) -> Self {
        assert!(depth > 0, "ring depth must be non-zero");
        let depth = depth.next_power_of_two();
        Ring { slots: (0..depth).map(|_| None).collect(), head: 0, tail: 0 }
    }

    fn mask(&self, cursor: u64) -> usize {
        (cursor as usize) & (self.slots.len() - 1)
    }

    fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    fn is_full(&self) -> bool {
        self.len() == self.slots.len()
    }

    fn push(&mut self, item: T) -> Result<(), RingFull> {
        if self.is_full() {
            return Err(RingFull);
        }
        let slot = self.mask(self.tail);
        debug_assert!(self.slots[slot].is_none(), "producer overran consumer");
        self.slots[slot] = Some(item);
        self.tail += 1; // the doorbell
        Ok(())
    }

    fn pop(&mut self) -> Option<T> {
        if self.head == self.tail {
            return None;
        }
        let slot = self.mask(self.head);
        let item = self.slots[slot].take();
        debug_assert!(item.is_some(), "consumer overran producer");
        self.head += 1;
        item
    }

    fn peek(&self) -> Option<&T> {
        if self.head == self.tail {
            return None;
        }
        self.slots[self.mask(self.head)].as_ref()
    }
}

/// A tenant's submission queue. The host pushes [`Sqe`]s (producer);
/// the device-side arbiter pops them in order (consumer).
///
/// Each accepted entry is stamped with its command id and submission
/// instant, so latency is measured from *submission*, not dispatch —
/// time spent queued behind the token bucket counts against the tenant.
#[derive(Debug, Clone)]
pub struct SubmissionQueue {
    ring: Ring<(u64, SimTime, Sqe)>,
    next_cid: u64,
}

impl SubmissionQueue {
    /// Creates a queue of at least `depth` entries (rounded up to a
    /// power of two).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        SubmissionQueue { ring: Ring::new(depth), next_cid: 0 }
    }

    /// Entries currently queued (submitted, not yet dispatched).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no entries are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.len() == 0
    }

    /// True when the ring cannot accept another entry.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.ring.is_full()
    }

    /// Host side: submits `sqe` at time `now`, returning its command id.
    ///
    /// # Errors
    ///
    /// [`RingFull`] when the ring has no free slot; the entry is not
    /// enqueued and no command id is consumed.
    pub fn submit(&mut self, now: SimTime, sqe: Sqe) -> Result<u64, RingFull> {
        let cid = self.next_cid;
        self.ring.push((cid, now, sqe))?;
        self.next_cid += 1;
        Ok(cid)
    }

    /// Device side: the oldest queued entry, without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<&(u64, SimTime, Sqe)> {
        self.ring.peek()
    }

    /// Device side: consumes the oldest queued entry.
    pub fn pop(&mut self) -> Option<(u64, SimTime, Sqe)> {
        self.ring.pop()
    }

    /// Command ids handed out so far ( = total submissions attempted
    /// through this queue that were accepted into the ring).
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.next_cid
    }
}

/// A tenant's completion queue. The device posts [`Cqe`]s (producer);
/// the host drains them (consumer).
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    ring: Ring<Cqe>,
}

impl CompletionQueue {
    /// Creates a queue of at least `depth` entries (rounded up to a
    /// power of two).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        CompletionQueue { ring: Ring::new(depth) }
    }

    /// Entries posted and not yet drained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no completions are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.len() == 0
    }

    /// Device side: posts a completion.
    ///
    /// # Errors
    ///
    /// [`RingFull`] when the host has not drained the ring. The service
    /// driver drains every pacer step, so in practice this only fires on
    /// a protocol bug.
    pub fn post(&mut self, cqe: Cqe) -> Result<(), RingFull> {
        self.ring.push(cqe)
    }

    /// Host side: drains the oldest completion.
    pub fn pop(&mut self) -> Option<Cqe> {
        self.ring.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sqe(lba: u64) -> Sqe {
        Sqe { op: Op::Write, lba, pages: 1, cached: false }
    }

    #[test]
    fn submission_queue_is_fifo_with_sequential_cids() {
        let mut sq = SubmissionQueue::new(4);
        for i in 0..3 {
            let cid = sq.submit(SimTime::from_ns(i), sqe(i)).unwrap();
            assert_eq!(cid, i);
        }
        assert_eq!(sq.len(), 3);
        for i in 0..3 {
            let (cid, at, e) = sq.pop().unwrap();
            assert_eq!((cid, at, e.lba), (i, SimTime::from_ns(i), i));
        }
        assert!(sq.pop().is_none());
    }

    #[test]
    fn full_ring_rejects_without_consuming_a_cid() {
        let mut sq = SubmissionQueue::new(2);
        sq.submit(SimTime::ZERO, sqe(0)).unwrap();
        sq.submit(SimTime::ZERO, sqe(1)).unwrap();
        assert!(sq.is_full());
        assert_eq!(sq.submit(SimTime::ZERO, sqe(2)), Err(RingFull));
        assert_eq!(sq.submitted(), 2);
        // Freeing a slot makes the next submission take cid 2.
        sq.pop().unwrap();
        assert_eq!(sq.submit(SimTime::ZERO, sqe(2)).unwrap(), 2);
    }

    #[test]
    fn cursors_wrap_the_slot_array_many_times() {
        let mut sq = SubmissionQueue::new(4);
        for round in 0..100u64 {
            sq.submit(SimTime::from_ns(round), sqe(round)).unwrap();
            let (cid, _, e) = sq.pop().unwrap();
            assert_eq!((cid, e.lba), (round, round));
        }
        assert!(sq.is_empty());
        assert_eq!(sq.submitted(), 100);
    }

    #[test]
    fn completion_queue_round_trips() {
        let mut cq = CompletionQueue::new(2);
        let c = Cqe {
            cid: 7,
            status: CqStatus::Busy,
            submitted: SimTime::from_ns(1),
            completed: SimTime::from_ns(1),
        };
        cq.post(c).unwrap();
        assert_eq!(cq.len(), 1);
        assert_eq!(cq.pop(), Some(c));
        assert!(cq.pop().is_none());
    }

    #[test]
    fn depth_rounds_up_to_power_of_two() {
        let mut sq = SubmissionQueue::new(3);
        for i in 0..4 {
            sq.submit(SimTime::ZERO, sqe(i)).unwrap();
        }
        assert!(sq.is_full());
    }
}
