//! End-to-end gates for the live front-end.
//!
//! The two load-bearing properties from the design:
//!
//! * **Pacing without perturbing** — a live `serve` run with no QoS
//!   constraint must leave the simulator bit-identical (state digest,
//!   event counts, latency distribution) to a batch `run_trace` over
//!   the same schedule.
//! * **Isolation with accounting** — QoS throttling and admission
//!   control shape *when* commands run and which are bounced, but every
//!   submission is accounted: completed, rejected (explicit `Busy`), or
//!   expired. Nothing is silently dropped.

use dssd_service::{serve, ServiceReport, ServiceSpec};
use dssd_ssd::{Architecture, SsdConfig, SsdSim};

fn tiny_sim() -> SsdSim {
    let mut sim = SsdSim::new(SsdConfig::test_tiny(Architecture::DssdFnoc));
    sim.prefill();
    sim
}

fn check_conservation(report: &ServiceReport) {
    for t in &report.tenants {
        assert_eq!(
            t.submitted,
            t.completed + t.rejected + t.expired,
            "tenant {} lost submissions: {t:?}",
            t.name
        );
        assert!(t.failed <= t.completed, "tenant {} failed > completed", t.name);
        assert!(t.latency.count() as u64 <= t.completed);
    }
}

/// Order-sensitive fingerprint of the simulator after a run.
fn fingerprint(sim: &mut SsdSim) -> String {
    let digest = sim.state_digest();
    let events = sim.events_handled();
    let p99 = sim.report_mut().latency_percentile(0.99).as_ns();
    let r = sim.report();
    format!(
        "digest={digest:016x} events={events} delivered={} req={} io_bytes={} mean_ns={} p99_ns={}",
        r.events_delivered,
        r.requests_completed,
        r.io_bw.total_bytes(),
        r.mean_latency().as_ns(),
        p99,
    )
}

const NO_QOS_SPEC: &str = "\
duration_ms 4
seed 11
tenant alice iops=120000 pages=2 read=0.4
tenant bob   iops=90000  pages=1 read=1.0 pattern=sequential
";

#[test]
fn no_qos_service_run_is_bit_identical_to_batch() {
    let spec = ServiceSpec::parse(NO_QOS_SPEC).unwrap();

    let mut live = tiny_sim();
    let report = serve(&spec, &mut live);
    let live_fp = fingerprint(&mut live);

    let mut batch = tiny_sim();
    let plan = spec.batch_requests(batch.ftl().lpn_count());
    let total = plan.len() as u64;
    batch.run_trace(plan, spec.duration);
    let batch_fp = fingerprint(&mut batch);

    assert_eq!(live_fp, batch_fp, "live pacer perturbed the simulation");

    // With no QoS, nothing throttles, nothing is rejected, and every
    // scheduled submission was offered.
    check_conservation(&report);
    assert_eq!(report.submitted(), total);
    assert_eq!(report.rejected(), 0);
    for t in &report.tenants {
        assert_eq!(t.throttled, 0, "tenant {} throttled without QoS", t.name);
    }
    // The front-end's completion count is the device's.
    assert_eq!(report.completed(), batch.report().requests_completed);
    assert!(report.completed() > 100, "workload too small to be meaningful");
}

#[test]
fn service_run_is_replayable() {
    let spec = ServiceSpec::parse(
        "duration_ms 3\nseed 5\nbacklog 96\n\
         tenant a iops=150000 pages=4 read=0.2 rate=120000 burst=16 qd=24 weight=3\n\
         tenant b iops=100000 pages=1 read=0.9 rate=50000 burst=4 qd=8\n",
    )
    .unwrap();
    let run = || {
        let mut sim = tiny_sim();
        let mut report = serve(&spec, &mut sim);
        (fingerprint(&mut sim), report.to_json())
    };
    let (fp_a, json_a) = run();
    let (fp_b, json_b) = run();
    assert_eq!(fp_a, fp_b, "QoS service run is not replayable");
    assert_eq!(json_a, json_b);
}

#[test]
fn rate_limit_throttles_and_conserves() {
    // 2000 pages/s against ~50k offered single-page IOPS: the bucket is
    // dry almost immediately and nearly everything queues or expires.
    let spec = ServiceSpec::parse(
        "duration_ms 3\nseed 3\ntenant slow iops=50000 pages=1 read=1.0 rate=2000 burst=2\n",
    )
    .unwrap();
    let mut sim = tiny_sim();
    let report = serve(&spec, &mut sim);
    check_conservation(&report);
    let t = &report.tenants[0];
    assert!(t.throttled > 0, "rate limit never throttled: {t:?}");
    assert!(t.expired > 0, "a dry bucket must strand submissions at the horizon");
    // ~2 pages/ms for 3 ms, plus the 2-page burst: single digits.
    assert!(t.completed <= 10, "rate limit leaked: {} completed", t.completed);
    assert!(t.completed >= 2, "bucket never released work: {t:?}");
}

#[test]
fn queue_depth_cap_rejects_busy_without_losing_requests() {
    let spec = ServiceSpec::parse(
        "duration_ms 3\nseed 9\ntenant greedy iops=300000 pages=4 read=0.0 qd=4\n",
    )
    .unwrap();
    let mut sim = tiny_sim();
    let report = serve(&spec, &mut sim);
    check_conservation(&report);
    let t = &report.tenants[0];
    assert!(t.rejected > 0, "queue-depth cap never rejected: {t:?}");
    assert!(t.completed > 0, "admission control starved the device: {t:?}");
    // The cap bounds what can ever be in the system, so rejects dominate
    // at 4x overload.
    assert!(t.rejected > t.completed / 2, "cap too porous: {t:?}");
}

#[test]
fn global_backlog_limit_applies_backpressure() {
    let spec = ServiceSpec::parse(
        "duration_ms 3\nseed 13\nbacklog 8\n\
         tenant a iops=200000 pages=4 read=0.0\n\
         tenant b iops=200000 pages=4 read=0.0\n",
    )
    .unwrap();
    let mut sim = tiny_sim();
    let report = serve(&spec, &mut sim);
    check_conservation(&report);
    assert!(report.rejected() > 0, "backlog threshold never tripped");
    assert!(report.completed() > 0);
    for t in &report.tenants {
        assert!(t.rejected > 0, "backpressure must hit both tenants: {t:?}");
    }
}

/// The ISSUE acceptance gate: a rate-limited saturating co-tenant moves
/// the victim's p99 by at most 5% relative to running with an idle
/// neighbor — while the *unlimited* version of the same co-tenant blows
/// the victim's tail up by far more than that.
#[test]
fn noisy_neighbor_is_isolated_by_rate_limit() {
    // GC headroom: test_tiny prefills to 7 free superblocks against a
    // trigger threshold of 8, so the hog's very first write would set
    // off a GC round whose copyback storm — not the write itself —
    // perturbs the victim. This experiment is about front-end QoS, so
    // keep background GC out of the frame for the light-write cases
    // (the unleashed hog drives free space down and pays full price).
    let quiet_sim = || {
        let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
        cfg.ftl.gc_threshold_free = 4;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        sim
    };
    // Identical victim stream in all three specs: two tenants, so the
    // namespace split and the per-tenant rng forks line up; only the
    // hog's knobs change.
    let spec_for = |hog: &str| {
        ServiceSpec::parse(&format!(
            "duration_ms 10\nwarmup_ms 2\nseed 21\n\
             tenant victim iops=150000 pages=1 read=1.0 weight=4\n\
             tenant hog {hog}\n"
        ))
        .unwrap()
    };
    let victim_p99_us = |spec: &ServiceSpec, min_completed: u64| {
        let mut sim = quiet_sim();
        let mut report = serve(spec, &mut sim);
        check_conservation(&report);
        let t = &mut report.tenants[0];
        assert_eq!(t.name, "victim");
        assert!(t.completed >= min_completed, "victim barely ran: {t:?}");
        t.latency.percentile(0.99).as_ns() as f64 / 1e3
    };

    // ~0 offered IOPS: the idle-neighbor baseline.
    let baseline = victim_p99_us(&spec_for("iops=0.001 pages=8 read=0.0"), 50);
    // Saturating writer, rate-limited so hard only the initial burst
    // (one request) ever reaches the device inside the horizon.
    let limited = victim_p99_us(
        &spec_for("iops=200000 pages=8 read=0.0 rate=100 burst=8 qd=16"),
        50,
    );
    // The same writer unleashed drowns the device — the victim may not
    // even finish its schedule, which is exactly the point.
    let unleashed = victim_p99_us(&spec_for("iops=200000 pages=8 read=0.0"), 10);

    let delta = (limited - baseline).abs() / baseline;
    assert!(
        delta <= 0.05,
        "rate-limited hog moved victim p99 by {:.1}% (baseline {baseline:.0} us, \
         limited {limited:.0} us)",
        delta * 100.0
    );
    assert!(
        unleashed > baseline * 1.5,
        "unlimited hog should wreck the victim tail (baseline {baseline:.0} us, \
         unleashed {unleashed:.0} us) — workload no longer saturates"
    );
}
