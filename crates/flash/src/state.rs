//! Die busy-state tracking.

use crate::FlashGeometry;
use dssd_kernel::{SimSpan, SimTime};

/// Busy-state machines for every die in the SSD.
///
/// A NAND die executes one array operation at a time (multi-plane
/// operations count as one), so each die is modeled as a FIFO resource:
/// an operation issued at `now` starts when the die last becomes idle and
/// occupies it for the operation's array latency.
///
/// # Example
///
/// ```
/// use dssd_flash::{DieGrid, FlashGeometry};
/// use dssd_kernel::{SimSpan, SimTime};
///
/// let geo = FlashGeometry::tiny();
/// let mut dies = DieGrid::new(&geo);
/// let (s1, d1) = dies.occupy(0, SimTime::ZERO, SimSpan::from_us(50));
/// let (s2, _) = dies.occupy(0, SimTime::ZERO, SimSpan::from_us(50));
/// assert_eq!(s1, SimTime::ZERO);
/// assert_eq!(s2, d1); // same die serializes
/// let (s3, _) = dies.occupy(1, SimTime::ZERO, SimSpan::from_us(50));
/// assert_eq!(s3, SimTime::ZERO); // different die is independent
/// ```
#[derive(Debug, Clone)]
pub struct DieGrid {
    busy_until: Vec<SimTime>,
    busy_total: Vec<SimSpan>,
    ops: Vec<u64>,
}

impl DieGrid {
    /// Creates an all-idle grid for the geometry.
    #[must_use]
    pub fn new(geometry: &FlashGeometry) -> Self {
        let n = geometry.total_dies() as usize;
        DieGrid {
            busy_until: vec![SimTime::ZERO; n],
            busy_total: vec![SimSpan::ZERO; n],
            ops: vec![0; n],
        }
    }

    /// Number of dies tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// True if the grid tracks no dies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Occupies die `die` for `duration`, starting no earlier than `now`.
    /// Returns `(start, done)`.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn occupy(&mut self, die: usize, now: SimTime, duration: SimSpan) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until[die]);
        let done = start + duration;
        self.busy_until[die] = done;
        self.busy_total[die] += duration;
        self.ops[die] += 1;
        (start, done)
    }

    /// When die `die` next becomes idle.
    #[must_use]
    pub fn idle_at(&self, die: usize) -> SimTime {
        self.busy_until[die]
    }

    /// True if die `die` is idle at `now`.
    #[must_use]
    pub fn is_idle(&self, die: usize, now: SimTime) -> bool {
        self.busy_until[die] <= now
    }

    /// Total array-busy time accumulated on die `die`.
    #[must_use]
    pub fn busy_total(&self, die: usize) -> SimSpan {
        self.busy_total[die]
    }

    /// Operations issued to die `die`.
    #[must_use]
    pub fn op_count(&self, die: usize) -> u64 {
        self.ops[die]
    }

    /// Mean utilization of all dies over `elapsed`.
    #[must_use]
    pub fn mean_utilization(&self, elapsed: SimSpan) -> f64 {
        if elapsed.is_zero() || self.busy_total.is_empty() {
            return 0.0;
        }
        let total: SimSpan = self.busy_total.iter().copied().sum();
        total.as_ns() as f64 / (elapsed.as_ns() as f64 * self.busy_total.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dies_are_independent() {
        let mut g = DieGrid::new(&FlashGeometry::tiny());
        let (_, d0) = g.occupy(0, SimTime::ZERO, SimSpan::from_us(10));
        let (s1, _) = g.occupy(1, SimTime::ZERO, SimSpan::from_us(10));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(d0, SimTime::from_us(10));
    }

    #[test]
    fn same_die_serializes() {
        let mut g = DieGrid::new(&FlashGeometry::tiny());
        let (_, d0) = g.occupy(0, SimTime::ZERO, SimSpan::from_us(10));
        let (s1, d1) = g.occupy(0, SimTime::ZERO, SimSpan::from_us(5));
        assert_eq!(s1, d0);
        assert_eq!(d1, SimTime::from_us(15));
    }

    #[test]
    fn late_arrival_starts_immediately() {
        let mut g = DieGrid::new(&FlashGeometry::tiny());
        g.occupy(0, SimTime::ZERO, SimSpan::from_us(10));
        let (s, _) = g.occupy(0, SimTime::from_us(100), SimSpan::from_us(5));
        assert_eq!(s, SimTime::from_us(100));
    }

    #[test]
    fn idle_query() {
        let mut g = DieGrid::new(&FlashGeometry::tiny());
        assert!(g.is_idle(0, SimTime::ZERO));
        g.occupy(0, SimTime::ZERO, SimSpan::from_us(10));
        assert!(!g.is_idle(0, SimTime::from_us(5)));
        assert!(g.is_idle(0, SimTime::from_us(10)));
    }

    #[test]
    fn accounting() {
        let mut g = DieGrid::new(&FlashGeometry::tiny());
        g.occupy(2, SimTime::ZERO, SimSpan::from_us(10));
        g.occupy(2, SimTime::ZERO, SimSpan::from_us(30));
        assert_eq!(g.busy_total(2), SimSpan::from_us(40));
        assert_eq!(g.op_count(2), 2);
        assert_eq!(g.op_count(0), 0);
    }

    #[test]
    fn utilization_bounds() {
        let mut g = DieGrid::new(&FlashGeometry::tiny());
        let dies = g.len() as u64;
        for d in 0..g.len() {
            g.occupy(d, SimTime::ZERO, SimSpan::from_us(50));
        }
        let u = g.mean_utilization(SimSpan::from_us(100));
        assert!((u - 0.5).abs() < 1e-9, "u = {u}, dies = {dies}");
        assert_eq!(g.mean_utilization(SimSpan::ZERO), 0.0);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Occupancy intervals of one die never overlap and total busy
        /// time equals the sum of requested durations.
        #[test]
        fn die_occupancy_is_serial(
            ops in proptest::collection::vec((0u64..5_000, 1u64..500), 1..120),
        ) {
            let geo = FlashGeometry::tiny();
            let mut grid = DieGrid::new(&geo);
            let mut prev_done = SimTime::ZERO;
            let mut total = SimSpan::ZERO;
            for &(at, dur_us) in &ops {
                let dur = SimSpan::from_us(dur_us);
                let (start, done) = grid.occupy(0, SimTime::from_us(at), dur);
                prop_assert!(start >= prev_done, "overlap on die 0");
                prop_assert!(start >= SimTime::from_us(at));
                prop_assert_eq!(done - start, dur);
                prev_done = done;
                total += dur;
            }
            prop_assert_eq!(grid.busy_total(0), total);
            prop_assert_eq!(grid.op_count(0), ops.len() as u64);
        }
    }
}
