//! NAND flash memory model for the dSSD reproduction.
//!
//! This crate models the "back-end" of the SSD: the physical organization
//! of flash (channels × ways × dies × planes × blocks × pages), the
//! ONFI-flavoured operation set (read / program / erase, with multi-plane
//! variants), per-die busy-state machines, per-channel flash-bus transfer
//! costs, and a per-block wear model with Gaussian program/erase limits —
//! the block-level process-variation model the paper adopts from WAS
//! (E = 5578, σ = 826.9 P/E cycles).
//!
//! Timing presets follow Table 1 of the paper:
//!
//! * **ULL** (ultra-low-latency): read 5 µs, program 50 µs, erase 1 ms,
//!   4 KB pages, 8 planes.
//! * **TLC**: read 60–95 µs, program 200–500 µs, erase 2 ms, 16 KB pages.
//!
//! # Example
//!
//! ```
//! use dssd_flash::{FlashGeometry, FlashTiming, DieGrid, PageAddr};
//! use dssd_kernel::SimTime;
//!
//! let geo = FlashGeometry::table1_ull();
//! let timing = FlashTiming::ull();
//! let mut dies = DieGrid::new(&geo);
//!
//! let addr = PageAddr { channel: 0, way: 0, die: 0, plane: 0, block: 0, page: 0 };
//! let (start, done) = dies.occupy(geo.die_index(addr.die_addr()), SimTime::ZERO,
//!                                 timing.program_latency_mid());
//! assert_eq!(start, SimTime::ZERO);
//! assert!(done > start);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod command;
mod geometry;
mod state;
mod timing;
mod wear;

pub use command::{FlashOp, FlashOpKind};
pub use geometry::{BlockAddr, DieAddr, FlashGeometry, PageAddr, PlaneAddr};
pub use state::DieGrid;
pub use timing::{FlashTiming, LatencyRange};
pub use wear::{EraseOutcome, WearModel};
