//! Flash operation timing presets (Table 1 of the paper).

use dssd_kernel::{Rng, SimSpan};

/// A closed latency range `[min, max]` sampled uniformly.
///
/// TLC devices have page-position-dependent latency (the paper gives
/// read 60–95 µs, program 200–500 µs); ULL devices are constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRange {
    /// Fastest case.
    pub min: SimSpan,
    /// Slowest case.
    pub max: SimSpan,
}

impl LatencyRange {
    /// A constant latency.
    #[must_use]
    pub fn fixed(value: SimSpan) -> Self {
        LatencyRange { min: value, max: value }
    }

    /// A uniform range in microseconds.
    #[must_use]
    pub fn from_us(min: u64, max: u64) -> Self {
        assert!(min <= max, "latency range inverted");
        LatencyRange { min: SimSpan::from_us(min), max: SimSpan::from_us(max) }
    }

    /// Draws a latency uniformly from the range.
    pub fn sample(&self, rng: &mut Rng) -> SimSpan {
        if self.min == self.max {
            return self.min;
        }
        SimSpan::from_ns(rng.range_u64(self.min.as_ns()..self.max.as_ns() + 1))
    }

    /// The midpoint of the range (deterministic representative value).
    #[must_use]
    pub fn mid(&self) -> SimSpan {
        SimSpan::from_ns((self.min.as_ns() + self.max.as_ns()) / 2)
    }
}

/// Flash array timing parameters.
///
/// The `program_overhead` term is the one calibration constant in this
/// reproduction: it models per-program command/firmware overhead and is
/// set so a 1-plane ULL chip sustains the paper's stated 51.2 MB/s write
/// bandwidth. In the pipelined steady state the flash-bus transfer
/// overlaps the previous program, so per-die throughput is bounded by die
/// occupancy alone: 50 µs program + 30 µs overhead = 80 µs per 4 KB page
/// = 51.2 MB/s, scaling to 409.6 MB/s with 8-plane multi-plane programs.
///
/// # Example
///
/// ```
/// use dssd_flash::FlashTiming;
/// let t = FlashTiming::ull();
/// assert_eq!(t.read.min.as_us_f64(), 5.0);
/// assert_eq!(t.program.max.as_us_f64(), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Page read (tR).
    pub read: LatencyRange,
    /// Page program (tPROG).
    pub program: LatencyRange,
    /// Block erase (tBERS).
    pub erase: LatencyRange,
    /// Per-program command/firmware overhead (calibration constant).
    pub program_overhead: SimSpan,
    /// Per-read command overhead.
    pub read_overhead: SimSpan,
}

impl FlashTiming {
    /// Ultra-low-latency device (Table 1): read 5 µs, program 50 µs,
    /// erase 1 ms, calibrated to 51.2 MB/s per-plane write bandwidth.
    #[must_use]
    pub fn ull() -> Self {
        FlashTiming {
            read: LatencyRange::fixed(SimSpan::from_us(5)),
            program: LatencyRange::fixed(SimSpan::from_us(50)),
            erase: LatencyRange::fixed(SimSpan::from_ms(1)),
            program_overhead: SimSpan::from_us(30),
            read_overhead: SimSpan::ZERO,
        }
    }

    /// TLC device (Table 1): read 60–95 µs, program 200–500 µs, erase 2 ms.
    #[must_use]
    pub fn tlc() -> Self {
        FlashTiming {
            read: LatencyRange::from_us(60, 95),
            program: LatencyRange::from_us(200, 500),
            erase: LatencyRange::fixed(SimSpan::from_ms(2)),
            program_overhead: SimSpan::ZERO,
            read_overhead: SimSpan::ZERO,
        }
    }

    /// Deterministic midpoint program latency including overhead.
    #[must_use]
    pub fn program_latency_mid(&self) -> SimSpan {
        self.program.mid() + self.program_overhead
    }

    /// Deterministic midpoint read latency including overhead.
    #[must_use]
    pub fn read_latency_mid(&self) -> SimSpan {
        self.read.mid() + self.read_overhead
    }

    /// Samples a program latency (cell time plus overhead).
    pub fn sample_program(&self, rng: &mut Rng) -> SimSpan {
        self.program.sample(rng) + self.program_overhead
    }

    /// Samples a read latency (cell time plus overhead).
    pub fn sample_read(&self, rng: &mut Rng) -> SimSpan {
        self.read.sample(rng) + self.read_overhead
    }

    /// Samples an erase latency.
    pub fn sample_erase(&self, rng: &mut Rng) -> SimSpan {
        self.erase.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ull_matches_table1() {
        let t = FlashTiming::ull();
        assert_eq!(t.read.mid(), SimSpan::from_us(5));
        assert_eq!(t.program.mid(), SimSpan::from_us(50));
        assert_eq!(t.erase.mid(), SimSpan::from_ms(1));
    }

    #[test]
    fn ull_calibrates_to_51_2_mbps() {
        // Pipelined steady state: per-page period = die occupancy =
        // program + overhead = 80 us -> 51.2 MB/s per plane.
        let t = FlashTiming::ull();
        assert_eq!(t.program_latency_mid(), SimSpan::from_us(80));
        let mbps = 4096.0 / t.program_latency_mid().as_secs_f64() / 1e6;
        assert!((mbps - 51.2).abs() < 0.01, "got {mbps} MB/s");
    }

    #[test]
    fn tlc_ranges_match_table1() {
        let t = FlashTiming::tlc();
        assert_eq!(t.read, LatencyRange::from_us(60, 95));
        assert_eq!(t.program, LatencyRange::from_us(200, 500));
        assert_eq!(t.erase.mid(), SimSpan::from_ms(2));
    }

    #[test]
    fn sample_stays_in_range() {
        let t = FlashTiming::tlc();
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let s = t.program.sample(&mut rng);
            assert!(s >= t.program.min && s <= t.program.max);
        }
    }

    #[test]
    fn fixed_range_samples_constant() {
        let r = LatencyRange::fixed(SimSpan::from_us(5));
        let mut rng = Rng::new(1);
        assert_eq!(r.sample(&mut rng), SimSpan::from_us(5));
        assert_eq!(r.mid(), SimSpan::from_us(5));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = LatencyRange::from_us(10, 5);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let r = LatencyRange::from_us(100, 200);
        let mut rng = Rng::new(7);
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|_| r.sample(&mut rng).as_us_f64()).sum::<f64>() / n as f64;
        assert!((mean - 150.0).abs() < 2.0, "mean {mean}");
    }
}
