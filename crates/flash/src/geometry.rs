//! Physical flash organization and strongly-typed addresses.

use std::fmt;

/// The physical organization of the flash array.
///
/// The hierarchy follows the paper (and ONFI): the SSD has `channels`
/// flash-bus channels; each channel connects `ways` packages; each package
/// holds `dies` dies; each die has `planes` planes; each plane has
/// `blocks` erase blocks of `pages` program pages of `page_bytes` bytes.
///
/// # Example
///
/// ```
/// use dssd_flash::FlashGeometry;
/// let geo = FlashGeometry::table1_ull();
/// assert_eq!(geo.channels, 8);
/// assert_eq!(geo.planes, 8);
/// assert_eq!(geo.page_bytes, 4096);
/// assert_eq!(geo.total_dies(), 8 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Number of flash-bus channels.
    pub channels: u32,
    /// Packages (ways) per channel.
    pub ways: u32,
    /// Dies per package.
    pub dies: u32,
    /// Planes per die.
    pub planes: u32,
    /// Erase blocks per plane.
    pub blocks: u32,
    /// Pages per block.
    pub pages: u32,
    /// Bytes per page.
    pub page_bytes: u32,
}

impl FlashGeometry {
    /// The Table 1 performance-evaluation geometry: 8 channels × 8 ways ×
    /// 1 die × 8 planes × 1384 blocks × 384 pages, 4 KB pages (ULL device).
    #[must_use]
    pub fn table1_ull() -> Self {
        FlashGeometry {
            channels: 8,
            ways: 8,
            dies: 1,
            planes: 8,
            blocks: 1384,
            pages: 384,
            page_bytes: 4096,
        }
    }

    /// The Table 1 superblock-evaluation geometry: 8 channels × 4 ways ×
    /// 2 dies × 2 planes with 32 pages/block, 16 KB pages (TLC device,
    /// simplified "for feasible simulation time" per Sec 6.2 footnote).
    #[must_use]
    pub fn table1_tlc() -> Self {
        FlashGeometry {
            channels: 8,
            ways: 4,
            dies: 2,
            planes: 2,
            blocks: 256,
            pages: 32,
            page_bytes: 16384,
        }
    }

    /// A small geometry for fast tests.
    #[must_use]
    pub fn tiny() -> Self {
        FlashGeometry {
            channels: 2,
            ways: 2,
            dies: 1,
            planes: 2,
            blocks: 8,
            pages: 4,
            page_bytes: 4096,
        }
    }

    /// Total dies in the SSD.
    #[must_use]
    pub fn total_dies(&self) -> u64 {
        self.channels as u64 * self.ways as u64 * self.dies as u64
    }

    /// Total planes in the SSD.
    #[must_use]
    pub fn total_planes(&self) -> u64 {
        self.total_dies() * self.planes as u64
    }

    /// Total erase blocks in the SSD.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() * self.blocks as u64
    }

    /// Total pages in the SSD.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages as u64
    }

    /// Raw capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Linear index of a die address in `[0, total_dies)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for this geometry.
    #[must_use]
    pub fn die_index(&self, a: DieAddr) -> usize {
        assert!(a.channel < self.channels && a.way < self.ways && a.die < self.dies,
                "die address {a:?} out of range");
        ((a.channel * self.ways + a.way) * self.dies + a.die) as usize
    }

    /// Inverse of [`FlashGeometry::die_index`].
    #[must_use]
    pub fn die_at(&self, index: usize) -> DieAddr {
        let i = index as u32;
        let die = i % self.dies;
        let way = (i / self.dies) % self.ways;
        let channel = i / (self.dies * self.ways);
        debug_assert!(channel < self.channels);
        DieAddr { channel, way, die }
    }

    /// Linear index of a block address in `[0, total_blocks)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for this geometry.
    #[must_use]
    pub fn block_index(&self, a: BlockAddr) -> usize {
        assert!(a.plane < self.planes && a.block < self.blocks,
                "block address {a:?} out of range");
        (self.die_index(a.die_addr()) as u64 * self.planes as u64 * self.blocks as u64
            + a.plane as u64 * self.blocks as u64
            + a.block as u64) as usize
    }

    /// Inverse of [`FlashGeometry::block_index`].
    #[must_use]
    pub fn block_at(&self, index: usize) -> BlockAddr {
        let per_die = (self.planes * self.blocks) as u64;
        let die = self.die_at((index as u64 / per_die) as usize);
        let rem = index as u64 % per_die;
        BlockAddr {
            channel: die.channel,
            way: die.way,
            die: die.die,
            plane: (rem / self.blocks as u64) as u32,
            block: (rem % self.blocks as u64) as u32,
        }
    }

    /// Linear index of a page address in `[0, total_pages)`.
    #[must_use]
    pub fn page_index(&self, a: PageAddr) -> u64 {
        assert!(a.page < self.pages, "page address {a:?} out of range");
        self.block_index(a.block_addr()) as u64 * self.pages as u64 + a.page as u64
    }

    /// Inverse of [`FlashGeometry::page_index`].
    #[must_use]
    pub fn page_at(&self, index: u64) -> PageAddr {
        let block = self.block_at((index / self.pages as u64) as usize);
        PageAddr {
            channel: block.channel,
            way: block.way,
            die: block.die,
            plane: block.plane,
            block: block.block,
            page: (index % self.pages as u64) as u32,
        }
    }
}

/// Address of one die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DieAddr {
    /// Flash-bus channel.
    pub channel: u32,
    /// Package (way) on the channel.
    pub way: u32,
    /// Die within the package.
    pub die: u32,
}

/// Address of one plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaneAddr {
    /// Flash-bus channel.
    pub channel: u32,
    /// Package (way) on the channel.
    pub way: u32,
    /// Die within the package.
    pub die: u32,
    /// Plane within the die.
    pub plane: u32,
}

/// Address of one erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Flash-bus channel.
    pub channel: u32,
    /// Package (way) on the channel.
    pub way: u32,
    /// Die within the package.
    pub die: u32,
    /// Plane within the die.
    pub plane: u32,
    /// Block within the plane.
    pub block: u32,
}

/// Address of one program page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// Flash-bus channel.
    pub channel: u32,
    /// Package (way) on the channel.
    pub way: u32,
    /// Die within the package.
    pub die: u32,
    /// Plane within the die.
    pub plane: u32,
    /// Block within the plane.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
}

impl PlaneAddr {
    /// The die containing this plane.
    #[must_use]
    pub fn die_addr(&self) -> DieAddr {
        DieAddr { channel: self.channel, way: self.way, die: self.die }
    }
}

impl BlockAddr {
    /// The die containing this block.
    #[must_use]
    pub fn die_addr(&self) -> DieAddr {
        DieAddr { channel: self.channel, way: self.way, die: self.die }
    }

    /// The plane containing this block.
    #[must_use]
    pub fn plane_addr(&self) -> PlaneAddr {
        PlaneAddr { channel: self.channel, way: self.way, die: self.die, plane: self.plane }
    }

    /// The address of page `page` within this block.
    #[must_use]
    pub fn page(&self, page: u32) -> PageAddr {
        PageAddr {
            channel: self.channel,
            way: self.way,
            die: self.die,
            plane: self.plane,
            block: self.block,
            page,
        }
    }
}

impl PageAddr {
    /// The die containing this page.
    #[must_use]
    pub fn die_addr(&self) -> DieAddr {
        DieAddr { channel: self.channel, way: self.way, die: self.die }
    }

    /// The block containing this page.
    #[must_use]
    pub fn block_addr(&self) -> BlockAddr {
        BlockAddr {
            channel: self.channel,
            way: self.way,
            die: self.die,
            plane: self.plane,
            block: self.block,
        }
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/w{}/d{}/pl{}/blk{}/pg{}",
            self.channel, self.way, self.die, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ull_counts() {
        let g = FlashGeometry::table1_ull();
        assert_eq!(g.total_dies(), 64);
        assert_eq!(g.total_planes(), 512);
        assert_eq!(g.total_blocks(), 512 * 1384);
        assert_eq!(g.total_pages(), 512 * 1384 * 384);
        // 8ch x 8w x 1die x 8pl x 1384blk x 384pg x 4KB ≈ 1.04 TB raw
        assert!(g.capacity_bytes() > 1_000_000_000_000);
    }

    #[test]
    fn die_index_round_trip() {
        let g = FlashGeometry::table1_tlc();
        for i in 0..g.total_dies() as usize {
            assert_eq!(g.die_index(g.die_at(i)), i);
        }
    }

    #[test]
    fn block_index_round_trip() {
        let g = FlashGeometry::tiny();
        for i in 0..g.total_blocks() as usize {
            assert_eq!(g.block_index(g.block_at(i)), i);
        }
    }

    #[test]
    fn page_index_round_trip() {
        let g = FlashGeometry::tiny();
        for i in 0..g.total_pages() {
            assert_eq!(g.page_index(g.page_at(i)), i);
        }
    }

    #[test]
    fn page_index_is_dense_and_ordered() {
        let g = FlashGeometry::tiny();
        let a = PageAddr { channel: 0, way: 0, die: 0, plane: 0, block: 0, page: 0 };
        assert_eq!(g.page_index(a), 0);
        let b = PageAddr { channel: 0, way: 0, die: 0, plane: 0, block: 0, page: 1 };
        assert_eq!(g.page_index(b), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_die_panics() {
        let g = FlashGeometry::tiny();
        let _ = g.die_index(DieAddr { channel: 99, way: 0, die: 0 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_page_panics() {
        let g = FlashGeometry::tiny();
        let mut a = g.page_at(0);
        a.page = g.pages;
        let _ = g.page_index(a);
    }

    #[test]
    fn addr_projections_agree() {
        let g = FlashGeometry::tiny();
        let p = g.page_at(g.total_pages() - 1);
        assert_eq!(p.block_addr().die_addr(), p.die_addr());
        assert_eq!(p.block_addr().page(p.page), p);
        assert_eq!(p.block_addr().plane_addr().die_addr(), p.die_addr());
    }

    #[test]
    fn display_is_informative() {
        let p = PageAddr { channel: 1, way: 2, die: 0, plane: 3, block: 4, page: 5 };
        assert_eq!(format!("{p}"), "ch1/w2/d0/pl3/blk4/pg5");
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_geometry() -> impl Strategy<Value = FlashGeometry> {
            (1u32..5, 1u32..5, 1u32..3, 1u32..5, 1u32..10, 1u32..10).prop_map(
                |(channels, ways, dies, planes, blocks, pages)| FlashGeometry {
                    channels,
                    ways,
                    dies,
                    planes,
                    blocks,
                    pages,
                    page_bytes: 4096,
                },
            )
        }

        proptest! {
            #[test]
            fn page_round_trip_all_geometries(g in arb_geometry(), idx in 0u64..10_000) {
                let idx = idx % g.total_pages();
                prop_assert_eq!(g.page_index(g.page_at(idx)), idx);
            }

            #[test]
            fn block_round_trip_all_geometries(g in arb_geometry(), idx in 0usize..10_000) {
                let idx = idx % g.total_blocks() as usize;
                prop_assert_eq!(g.block_index(g.block_at(idx)), idx);
            }

            #[test]
            fn page_indices_are_unique(g in arb_geometry()) {
                let total = g.total_pages().min(512);
                let mut seen = std::collections::HashSet::new();
                for i in 0..total {
                    prop_assert!(seen.insert(g.page_index(g.page_at(i))));
                }
            }
        }
    }
}
