//! Per-block wear and process-variation model.

use crate::FlashGeometry;
use dssd_kernel::Rng;

/// Outcome of an erase with respect to block health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EraseOutcome {
    /// The block is still within its endurance budget.
    Healthy,
    /// The block has exceeded its program/erase limit: the next
    /// program/read cycle is expected to produce an uncorrectable error.
    WornOut,
}

/// Block-level process-variation wear model.
///
/// Every erase block draws an independent program/erase (P/E) cycle limit
/// from a Gaussian — the model the paper adopts from WAS (Sec 6.4):
/// `E(x) = 5578`, `σ(x) = 826.9`. A block whose accumulated P/E count
/// exceeds its limit produces uncorrectable errors, which at superblock
/// granularity is what kills a superblock (the page with the worst raw
/// bit error rate triggers the first uncorrectable error).
///
/// # Example
///
/// ```
/// use dssd_flash::{FlashGeometry, WearModel, EraseOutcome};
/// use dssd_kernel::Rng;
///
/// let geo = FlashGeometry::tiny();
/// let mut wear = WearModel::new(&geo, 5578.0, 826.9, &mut Rng::new(1));
/// assert_eq!(wear.erase(0), EraseOutcome::Healthy);
/// assert_eq!(wear.pe_count(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WearModel {
    limits: Vec<u32>,
    pe: Vec<u32>,
    mean: f64,
    sigma: f64,
}

impl WearModel {
    /// Creates a wear model for the geometry, drawing every block's P/E
    /// limit from `N(mean, sigma²)` (clamped to at least 1 cycle).
    #[must_use]
    pub fn new(geometry: &FlashGeometry, mean: f64, sigma: f64, rng: &mut Rng) -> Self {
        let n = geometry.total_blocks() as usize;
        Self::with_block_count(n, mean, sigma, rng)
    }

    /// Creates a wear model for an explicit number of blocks (used by the
    /// reduced-scale endurance simulations of Sec 6.4).
    #[must_use]
    pub fn with_block_count(blocks: usize, mean: f64, sigma: f64, rng: &mut Rng) -> Self {
        let limits = (0..blocks)
            .map(|_| rng.gaussian(mean, sigma).max(1.0).round() as u32)
            .collect();
        WearModel {
            limits,
            pe: vec![0; blocks],
            mean,
            sigma,
        }
    }

    /// The paper's default distribution: `N(5578, 826.9²)`.
    #[must_use]
    pub fn paper_default(geometry: &FlashGeometry, rng: &mut Rng) -> Self {
        Self::new(geometry, 5578.0, 826.9, rng)
    }

    /// Number of blocks tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.limits.len()
    }

    /// True if no blocks are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.limits.is_empty()
    }

    /// The distribution mean this model was built with.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution sigma this model was built with.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The P/E limit assigned to `block`.
    #[must_use]
    pub fn limit(&self, block: usize) -> u32 {
        self.limits[block]
    }

    /// P/E cycles consumed so far by `block`.
    #[must_use]
    pub fn pe_count(&self, block: usize) -> u32 {
        self.pe[block]
    }

    /// Remaining healthy cycles for `block` (0 if already worn out).
    #[must_use]
    pub fn remaining(&self, block: usize) -> u32 {
        self.limits[block].saturating_sub(self.pe[block])
    }

    /// True if `block` has exceeded its endurance limit.
    #[must_use]
    pub fn is_worn_out(&self, block: usize) -> bool {
        self.pe[block] >= self.limits[block]
    }

    /// Marks `block` as worn out immediately, regardless of its remaining
    /// endurance budget — the field response to a program/erase failure or
    /// an uncorrectable read: the block can no longer be trusted, so its
    /// effective limit is "now".
    pub fn force_worn(&mut self, block: usize) {
        self.pe[block] = self.pe[block].max(self.limits[block]);
    }

    /// Charges one P/E cycle to `block` and reports its health.
    pub fn erase(&mut self, block: usize) -> EraseOutcome {
        self.pe[block] += 1;
        if self.pe[block] >= self.limits[block] {
            EraseOutcome::WornOut
        } else {
            EraseOutcome::Healthy
        }
    }

    /// Raw bit error rate estimate for `block` at its current wear.
    ///
    /// A standard exponential RBER-vs-P/E model: negligible when fresh,
    /// crossing the typical LDPC correction threshold (~1e-2) right at the
    /// block's endurance limit. Only the *shape* matters for the
    /// experiments; the trigger for uncorrectability is the limit itself.
    #[must_use]
    pub fn rber(&self, block: usize) -> f64 {
        let frac = self.pe[block] as f64 / self.limits[block] as f64;
        1e-4 * (frac * (1e-2f64 / 1e-4).ln()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> WearModel {
        WearModel::with_block_count(10_000, 5578.0, 826.9, &mut Rng::new(seed))
    }

    #[test]
    fn limits_follow_distribution() {
        let m = model(1);
        let mean: f64 =
            m.limits.iter().map(|&l| l as f64).sum::<f64>() / m.len() as f64;
        assert!((mean - 5578.0).abs() < 30.0, "mean {mean}");
        let var: f64 = m
            .limits
            .iter()
            .map(|&l| (l as f64 - mean).powi(2))
            .sum::<f64>()
            / m.len() as f64;
        assert!((var.sqrt() - 826.9).abs() < 30.0, "sigma {}", var.sqrt());
    }

    #[test]
    fn erase_accumulates_and_wears_out() {
        let mut m = WearModel::with_block_count(1, 10.0, 0.0, &mut Rng::new(2));
        let limit = m.limit(0);
        for i in 1..limit {
            assert_eq!(m.erase(0), EraseOutcome::Healthy, "cycle {i}");
            assert!(!m.is_worn_out(0));
        }
        assert_eq!(m.erase(0), EraseOutcome::WornOut);
        assert!(m.is_worn_out(0));
        assert_eq!(m.remaining(0), 0);
    }

    #[test]
    fn rber_grows_monotonically_to_threshold() {
        let mut m = WearModel::with_block_count(1, 100.0, 0.0, &mut Rng::new(3));
        let fresh = m.rber(0);
        for _ in 0..50 {
            m.erase(0);
        }
        let mid = m.rber(0);
        for _ in 0..50 {
            m.erase(0);
        }
        let worn = m.rber(0);
        assert!(fresh < mid && mid < worn);
        assert!((fresh - 1e-4).abs() < 1e-6);
        assert!((worn - 1e-2).abs() < 1e-3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = model(42);
        let b = model(42);
        assert_eq!(a.limits, b.limits);
    }

    #[test]
    fn force_worn_caps_block_immediately() {
        let mut m = WearModel::with_block_count(2, 100.0, 0.0, &mut Rng::new(6));
        assert!(!m.is_worn_out(0));
        m.force_worn(0);
        assert!(m.is_worn_out(0));
        assert_eq!(m.remaining(0), 0);
        assert!((m.rber(0) - 1e-2).abs() < 1e-3);
        assert!(!m.is_worn_out(1));
        // Idempotent, and never rolls an already-exceeded count back.
        m.force_worn(0);
        assert!(m.is_worn_out(0));
    }

    #[test]
    fn limits_are_positive() {
        // Even with a huge sigma, limits clamp to >= 1.
        let m = WearModel::with_block_count(10_000, 10.0, 1000.0, &mut Rng::new(4));
        assert!(m.limits.iter().all(|&l| l >= 1));
    }

    #[test]
    fn geometry_constructor_counts_blocks() {
        let geo = FlashGeometry::tiny();
        let m = WearModel::paper_default(&geo, &mut Rng::new(5));
        assert_eq!(m.len(), geo.total_blocks() as usize);
    }
}
