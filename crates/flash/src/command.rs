//! ONFI-flavoured flash operations.

use crate::{FlashTiming, PageAddr};
use dssd_kernel::{Rng, SimSpan};

/// The kind of a low-level flash array operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlashOpKind {
    /// Page read (array → page register).
    Read,
    /// Page program (page register → array).
    Program,
    /// Block erase.
    Erase,
}

/// One low-level flash operation, possibly multi-plane.
///
/// Multi-plane operations (`planes > 1`) model the ONFI multi-plane
/// command set the paper relies on for its "high bandwidth" scenario:
/// all planes of one die perform the operation concurrently, so the die
/// is busy once but `planes` pages move.
///
/// # Example
///
/// ```
/// use dssd_flash::{FlashOp, FlashOpKind, FlashTiming, PageAddr};
/// use dssd_kernel::Rng;
///
/// let addr = PageAddr { channel: 0, way: 0, die: 0, plane: 0, block: 0, page: 0 };
/// let op = FlashOp::multi_plane(FlashOpKind::Program, addr, 8);
/// assert_eq!(op.pages_moved(), 8);
/// let mut rng = Rng::new(1);
/// assert!(op.array_latency(&FlashTiming::ull(), &mut rng).as_ns() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashOp {
    /// What the operation does.
    pub kind: FlashOpKind,
    /// Target address (the first plane of a multi-plane group).
    pub target: PageAddr,
    /// Number of planes operated in parallel (1 = single-plane).
    pub planes: u32,
}

impl FlashOp {
    /// A single-plane operation.
    #[must_use]
    pub fn single(kind: FlashOpKind, target: PageAddr) -> Self {
        FlashOp { kind, target, planes: 1 }
    }

    /// A multi-plane operation across `planes` planes of the target die.
    ///
    /// # Panics
    ///
    /// Panics if `planes` is zero.
    #[must_use]
    pub fn multi_plane(kind: FlashOpKind, target: PageAddr, planes: u32) -> Self {
        assert!(planes > 0, "planes must be non-zero");
        FlashOp { kind, target, planes }
    }

    /// Pages transferred by this operation (zero for erase).
    #[must_use]
    pub fn pages_moved(&self) -> u32 {
        match self.kind {
            FlashOpKind::Erase => 0,
            _ => self.planes,
        }
    }

    /// The time the die's array is busy executing this operation.
    ///
    /// Multi-plane operations finish when the slowest plane finishes; for
    /// range-latency devices we sample once per plane and take the max.
    pub fn array_latency(&self, timing: &FlashTiming, rng: &mut Rng) -> SimSpan {
        let sample_one = |rng: &mut Rng| match self.kind {
            FlashOpKind::Read => timing.sample_read(rng),
            FlashOpKind::Program => timing.sample_program(rng),
            FlashOpKind::Erase => timing.sample_erase(rng),
        };
        let mut worst = SimSpan::ZERO;
        for _ in 0..self.planes {
            worst = worst.max(sample_one(rng));
        }
        worst
    }

    /// Bytes this operation moves over the flash channel bus.
    #[must_use]
    pub fn bus_bytes(&self, page_bytes: u32) -> u64 {
        self.pages_moved() as u64 * page_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlashGeometry;

    fn addr() -> PageAddr {
        FlashGeometry::tiny().page_at(0)
    }

    #[test]
    fn erase_moves_no_data() {
        let op = FlashOp::single(FlashOpKind::Erase, addr());
        assert_eq!(op.pages_moved(), 0);
        assert_eq!(op.bus_bytes(4096), 0);
    }

    #[test]
    fn multi_plane_scales_bus_bytes() {
        let op = FlashOp::multi_plane(FlashOpKind::Read, addr(), 8);
        assert_eq!(op.bus_bytes(4096), 8 * 4096);
    }

    #[test]
    fn multi_plane_latency_is_max_not_sum() {
        let t = FlashTiming::ull(); // fixed latencies
        let mut rng = Rng::new(1);
        let one = FlashOp::single(FlashOpKind::Program, addr()).array_latency(&t, &mut rng);
        let eight =
            FlashOp::multi_plane(FlashOpKind::Program, addr(), 8).array_latency(&t, &mut rng);
        assert_eq!(one, eight); // ULL is constant-latency: max == single
    }

    #[test]
    fn multi_plane_latency_at_least_single_for_tlc() {
        let t = FlashTiming::tlc();
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            let l = FlashOp::multi_plane(FlashOpKind::Read, addr(), 4)
                .array_latency(&t, &mut rng);
            assert!(l >= t.read.min && l <= t.read.max);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_planes_panics() {
        let _ = FlashOp::multi_plane(FlashOpKind::Read, addr(), 0);
    }
}
