//! The PR-6 acceptance sweep: ≥ 200 crashpoints across ≥ 3 seeds with
//! in-band fault injection enabled, zero recovery-invariant violations,
//! and recovery cost actually reported.

use dssd_kernel::SimSpan;
use dssd_reliability::{sweep, CrashpointConfig};
use dssd_ssd::{Architecture, DurabilityConfig, FaultConfig, SsdConfig};
use dssd_workload::{AccessPattern, SyntheticWorkload};

/// Crash at every 100th event across three seeds of a faulty 1.5 ms
/// run. Every crashpoint mounts, replays, and must recover without
/// losing an acked write or resurrecting a trim — even while transient
/// reads, program failures, erase failures, and NoC degradation are all
/// firing in-band.
#[test]
fn sweep_with_faults_enabled_holds_invariants_at_scale() {
    let mut base = SsdConfig::test_tiny(Architecture::DssdFnoc);
    base.durability = Some(DurabilityConfig::default());
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.05;
    f.read_hard_prob = 0.002;
    f.program_fail_prob = 0.002;
    f.erase_fail_prob = 0.01;
    f.noc_degrade_prob = 0.01;
    base.faults = f;

    let report = sweep(&CrashpointConfig {
        base,
        workload: SyntheticWorkload::mixed(AccessPattern::Random, 8, 0.5),
        duration: SimSpan::from_us(1_500),
        stride: 100,
        seeds: vec![11, 22, 33],
    });

    assert_eq!(report.seeds, vec![11, 22, 33]);
    assert!(
        report.points >= 200,
        "acceptance wants >= 200 crashpoints, swept {}",
        report.points
    );
    assert!(report.passed(), "invariant violations: {:?}", report.violations);
    assert!(report.max_recovery > SimSpan::ZERO, "recovery time must be reported");
    assert!(report.pages_read > 0, "mount scans must read pages");
}
