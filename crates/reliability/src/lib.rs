//! Endurance simulation for the dynamic-superblock experiments (Sec 6.4,
//! Figs 14 and 16).
//!
//! The paper evaluates superblock lifetime with a reduced-scale SSD and a
//! continuous 128 KB write stream: every superblock fill charges one P/E
//! cycle to each constituent block, block P/E limits follow the WAS
//! block-variation model (Gaussian, E = 5578, σ = 826.9), and a block
//! whose limit is exceeded produces an uncorrectable error that kills its
//! superblock. The four policies compared:
//!
//! * [`SuperblockPolicy::Baseline`] — static superblocks; a dead
//!   superblock is retired whole.
//! * [`SuperblockPolicy::Recycled`] — the dSSD hardware recycles the
//!   still-good sub-blocks of dead superblocks through the per-controller
//!   RBT and remaps later failures through the bounded SRT (Sec 5.1–5.2).
//! * [`SuperblockPolicy::Reserved`] — RBTs are pre-filled with
//!   provisioned blocks (7 % by default), delaying the first visible bad
//!   superblock (Sec 5.3).
//! * [`SuperblockPolicy::WearAware`] — the software WAS comparison point:
//!   the FTL regroups blocks by remaining endurance every fill, at the
//!   cost of the scan traffic measured in Fig 14c.
//!
//! This simulator reuses the `dssd-ctrl` hardware-table types, so table
//! capacities (SRT entries, RBT size) bound exactly what the hardware
//! could hold.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crashpoint;
mod endurance;

pub use crashpoint::{sweep, CrashpointConfig, CrashpointReport, CrashpointViolation};
pub use endurance::{
    EnduranceConfig, EnduranceReport, EnduranceSim, PowerLossPoint, SuperblockPolicy,
};
