//! Crashpoint sweep: power loss at every k-th event, recovery verified
//! at each point.
//!
//! The sweep steps one *mother* simulation per seed through its workload
//! and, every `stride` handled events, forks the entire simulation state
//! (`SsdSim` is `Clone`), forces power loss on the fork, and mounts. The
//! fork's recovery must satisfy both crash-consistency invariants — no
//! acknowledged write lost, no trimmed data resurrected — and the mother
//! continues unperturbed, so an N-point sweep costs one full run plus N
//! cheap mounts instead of N runs.

use dssd_kernel::{SimSpan, SimTime};
use dssd_ssd::{PowerLossConfig, SsdConfig, SsdSim};
use dssd_workload::SyntheticWorkload;

/// Crashpoint sweep parameters.
#[derive(Debug, Clone)]
pub struct CrashpointConfig {
    /// Simulator configuration; `durability` must be enabled. Any
    /// configured power-loss injection is stripped (the sweep injects
    /// its own losses) and `seed` is overridden per sweep seed.
    pub base: SsdConfig,
    /// The closed-loop workload each mother run executes.
    pub workload: SyntheticWorkload,
    /// Mother-run horizon.
    pub duration: SimSpan,
    /// Crash every `stride`-th handled event.
    pub stride: u64,
    /// One mother run (and its crashpoints) per seed.
    pub seeds: Vec<u64>,
}

/// One crashpoint whose recovery broke an invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashpointViolation {
    /// The sweep seed of the offending run.
    pub seed: u64,
    /// Events handled when the loss was injected.
    pub events: u64,
    /// Simulated instant of the loss.
    pub at: SimTime,
    /// Acknowledged writes the recovered mapping lost.
    pub lost_acked_writes: u64,
    /// Trimmed LPNs that came back mapped.
    pub resurrected_trims: u64,
}

/// Aggregate outcome of a crashpoint sweep.
#[derive(Debug, Clone, Default)]
pub struct CrashpointReport {
    /// Crashpoints injected across all seeds.
    pub points: u64,
    /// Seeds swept.
    pub seeds: Vec<u64>,
    /// Every invariant-violating point (empty on a passing sweep).
    pub violations: Vec<CrashpointViolation>,
    /// Torn (in-flight, never durable) page programs across all points.
    pub torn_pages: u64,
    /// Host requests in flight at the loss, across all points.
    pub requests_torn: u64,
    /// Sum of per-point mount flash reads (checkpoint + journal + OOB).
    pub pages_read: u64,
    /// Worst-case analytic mount latency.
    pub max_recovery: SimSpan,
    /// Summed mount latency (divide by `points` for the mean).
    pub total_recovery: SimSpan,
}

impl CrashpointReport {
    /// True when every point recovered with both invariants intact.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Mean analytic mount latency across all points.
    #[must_use]
    pub fn mean_recovery(&self) -> SimSpan {
        if self.points == 0 {
            return SimSpan::ZERO;
        }
        SimSpan::from_ns(self.total_recovery.as_ns() / self.points)
    }
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if `config.base.durability` is `None` (there is nothing to
/// recover from without the metadata model) or `stride` is zero.
#[must_use]
pub fn sweep(config: &CrashpointConfig) -> CrashpointReport {
    assert!(
        config.base.durability.is_some(),
        "crashpoint sweep requires the durability model"
    );
    assert!(config.stride > 0, "stride must be non-zero");
    let mut report = CrashpointReport { seeds: config.seeds.clone(), ..Default::default() };
    for &seed in &config.seeds {
        let mut cfg = config.base.clone();
        cfg.seed = seed;
        cfg.power_loss = PowerLossConfig::none();
        let mut mother = SsdSim::new(cfg);
        mother.prefill();
        mother.begin_closed_loop(config.workload.clone(), config.duration);
        loop {
            if mother.run_events(config.stride) != dssd_ssd::RunState::Paused {
                break;
            }
            let mut fork = mother.clone();
            fork.force_power_loss();
            let rec = fork
                .report()
                .recovery
                .expect("forced power loss produces a recovery report");
            report.points += 1;
            report.torn_pages += rec.torn_pages;
            report.requests_torn += rec.requests_torn;
            report.pages_read +=
                rec.checkpoint_pages + rec.journal_pages_replayed + rec.oob_pages_scanned;
            report.max_recovery = report.max_recovery.max(rec.recovery_time);
            report.total_recovery += rec.recovery_time;
            if !rec.invariants_hold() {
                report.violations.push(CrashpointViolation {
                    seed,
                    events: fork.events_handled(),
                    at: rec.power_loss_at,
                    lost_acked_writes: rec.lost_acked_writes,
                    resurrected_trims: rec.resurrected_trims,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssd_ssd::{Architecture, DurabilityConfig};
    use dssd_workload::AccessPattern;

    fn config(seeds: Vec<u64>, stride: u64) -> CrashpointConfig {
        let mut base = SsdConfig::test_tiny(Architecture::DssdFnoc);
        base.durability = Some(DurabilityConfig::default());
        CrashpointConfig {
            base,
            workload: SyntheticWorkload::writes(AccessPattern::Random, 8),
            duration: SimSpan::from_ms(2),
            stride,
            seeds,
        }
    }

    #[test]
    fn sweep_finds_no_violations() {
        let report = sweep(&config(vec![1, 2], 500));
        assert!(report.points > 0);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.max_recovery > SimSpan::ZERO);
        assert!(report.mean_recovery() <= report.max_recovery);
        assert!(report.pages_read > 0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep(&config(vec![7], 700));
        let b = sweep(&config(vec![7], 700));
        assert_eq!(a.points, b.points);
        assert_eq!(a.pages_read, b.pages_read);
        assert_eq!(a.max_recovery, b.max_recovery);
    }

    #[test]
    #[should_panic(expected = "requires the durability model")]
    fn sweep_rejects_missing_durability() {
        let mut c = config(vec![1], 100);
        c.base.durability = None;
        let _ = sweep(&c);
    }
}
