//! The superblock-lifetime simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dssd_ctrl::{RecycleBlockTable, SuperblockRemapTable};
use dssd_flash::{EraseOutcome, WearModel};
use dssd_ftl::{MetaConfig, CHECKPOINT_ENTRY_BYTES};
use dssd_kernel::Rng;

/// Global block identity: `channel * blocks_per_channel + local`.
type BlockId = u32;

/// The superblock-management policies compared in Figs 14 and 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuperblockPolicy {
    /// Static superblocks; retire whole on first uncorrectable error.
    Baseline,
    /// dSSD recycled blocks (RBT + SRT), Sec 5.1–5.2.
    Recycled,
    /// Reservation-based recycling: RBTs pre-filled with provisioned
    /// blocks, Sec 5.3.
    Reserved,
    /// WAS-style software regrouping by remaining endurance.
    WearAware,
}

impl SuperblockPolicy {
    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SuperblockPolicy::Baseline => "BASELINE",
            SuperblockPolicy::Recycled => "RECYCLED",
            SuperblockPolicy::Reserved => "RESERV",
            SuperblockPolicy::WearAware => "WAS",
        }
    }

    /// All four, in presentation order.
    #[must_use]
    pub fn all() -> [SuperblockPolicy; 4] {
        [
            SuperblockPolicy::Baseline,
            SuperblockPolicy::Recycled,
            SuperblockPolicy::Reserved,
            SuperblockPolicy::WearAware,
        ]
    }
}

/// Configuration of the endurance simulation.
#[derive(Debug, Clone, Copy)]
pub struct EnduranceConfig {
    /// Flash channels (= decoupled controllers).
    pub channels: usize,
    /// Sub-blocks each channel contributes to one superblock
    /// (ways × dies × planes).
    pub subs_per_channel: usize,
    /// Superblocks (= blocks per plane).
    pub superblocks: usize,
    /// Pages per block (data-written accounting).
    pub pages_per_block: u32,
    /// Bytes per page.
    pub page_bytes: u32,
    /// Mean block P/E limit (Table 1: 5578).
    pub pe_mean: f64,
    /// P/E limit standard deviation (Table 1: 826.9).
    pub pe_sigma: f64,
    /// SRT capacity per controller (entries). Use a large value to model
    /// an unbounded table for the Fig 16b study.
    pub srt_entries: usize,
    /// RBT capacity per controller (entries).
    pub rbt_entries: usize,
    /// Fraction of superblocks provisioned as reserved recycled blocks
    /// for [`SuperblockPolicy::Reserved`] (Table 1: 7 %).
    pub reserved_fraction: f64,
    /// Stop once this fraction of the initially visible superblocks has
    /// gone (visibly) bad.
    pub stop_bad_fraction: f64,
    /// Standard deviation of WAS's wear-estimation error, in P/E cycles.
    /// 0 models the oracle the paper effectively grants WAS (full wear
    /// visibility from its scans); larger values model stale or noisy
    /// RBER estimates between scan passes.
    pub was_estimation_sigma: f64,
    /// FTL durability-model knobs: when set, every superblock fill also
    /// journals one mapping op per constituent block and checkpoints on
    /// the configured data-page interval, and the run reports the
    /// metadata write traffic ([`EnduranceReport::journal_pages`] /
    /// [`EnduranceReport::checkpoint_pages`]).
    pub journal: Option<MetaConfig>,
    /// Mean superblock fills between injected power losses (exponential,
    /// drawn from the dedicated `seed ^ 0x504C` stream so injection
    /// leaves the endurance curve untouched). 0 disables injection;
    /// requires `journal` to be set.
    pub mean_fills_between_power_loss: f64,
    /// Random seed.
    pub seed: u64,
}

impl EnduranceConfig {
    /// The paper's reduced-scale TLC configuration (Sec 6.1 footnote 10):
    /// 8 channels × (4 ways × 2 dies × 2 planes), 32 pages per 16 KB-page
    /// block, Gaussian P/E limits N(5578, 826.9²), 1 k-entry SRTs, 7 %
    /// reservation.
    #[must_use]
    pub fn paper_tlc() -> Self {
        EnduranceConfig {
            channels: 8,
            subs_per_channel: 16,
            superblocks: 256,
            pages_per_block: 32,
            page_bytes: 16384,
            pe_mean: 5578.0,
            pe_sigma: 826.9,
            srt_entries: 1024,
            rbt_entries: 1 << 20,
            reserved_fraction: 0.07,
            stop_bad_fraction: 0.5,
            was_estimation_sigma: 0.0,
            journal: None,
            mean_fills_between_power_loss: 0.0,
            seed: 0xE2D,
        }
    }

    /// A small configuration for fast tests.
    #[must_use]
    pub fn test_small() -> Self {
        EnduranceConfig {
            superblocks: 64,
            subs_per_channel: 4,
            pe_mean: 200.0,
            pe_sigma: 30.0,
            ..Self::paper_tlc()
        }
    }

    fn blocks_per_channel(&self) -> usize {
        self.subs_per_channel * self.superblocks
    }

    fn superblock_bytes(&self) -> u64 {
        self.channels as u64
            * self.subs_per_channel as u64
            * self.pages_per_block as u64
            * self.page_bytes as u64
    }
}

/// One injected power loss during an endurance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerLossPoint {
    /// Superblock fills completed when the loss struck.
    pub fills: u64,
    /// Host bytes written by then.
    pub bytes_written: u64,
    /// Journal pages the mount had to replay (flushed since the last
    /// durable checkpoint).
    pub journal_pages_replayed: u64,
}

/// The outcome of one endurance run.
#[derive(Debug, Clone)]
pub struct EnduranceReport {
    /// The policy that produced this report.
    pub policy: SuperblockPolicy,
    /// `(bytes written, visible bad superblocks)` at each visible death —
    /// the Fig 14a curve.
    pub curve: Vec<(u64, u32)>,
    /// Total bytes written before the stop condition.
    pub total_written: u64,
    /// `(remap event index, total active SRT entries)` after each
    /// remapping — the Fig 16b curve.
    pub remap_curve: Vec<(u64, usize)>,
    /// Total remapping events.
    pub remap_events: u64,
    /// Superblocks visible to the FTL at the start.
    pub initial_visible: u32,
    /// Superblock fills performed.
    pub fills: u64,
    /// Block erase operations performed (one per constituent block per
    /// fill) — the run's deterministic unit of work, reported as the
    /// event count in `results/bench.json` so the perf guard can gate
    /// the endurance benches on events/sec.
    pub erase_ops: u64,
    /// Injected power losses, in order (empty when injection is off).
    pub power_loss_points: Vec<PowerLossPoint>,
    /// Mapping-journal pages flushed ([`EnduranceConfig::journal`]).
    pub journal_pages: u64,
    /// Flash pages consumed by L2P checkpoints (including the one each
    /// post-loss mount takes).
    pub checkpoint_pages: u64,
}

impl EnduranceReport {
    /// Bytes written before the first visible bad superblock.
    #[must_use]
    pub fn first_bad_bytes(&self) -> Option<u64> {
        self.curve.first().map(|&(b, _)| b)
    }

    /// Bytes written when the visible bad count first reached
    /// `fraction` of the initially visible superblocks — the lifetime
    /// definition of Sec 6.4 ("when a certain fraction of the blocks
    /// become bad-blocks"). `None` if the run stopped earlier.
    #[must_use]
    pub fn written_at_bad_fraction(&self, fraction: f64) -> Option<u64> {
        let threshold = (self.initial_visible as f64 * fraction).ceil() as u32;
        self.curve
            .iter()
            .find(|&&(_, bad)| bad >= threshold.max(1))
            .map(|&(b, _)| b)
    }

    /// Final visible-bad superblock count.
    #[must_use]
    pub fn bad_superblocks(&self) -> u32 {
        self.curve.last().map_or(0, |&(_, bad)| bad)
    }
}

/// Per-fill metadata accounting: journal flushes on the FTL durability
/// model's page-packing rule, checkpoints on its data-page cadence, and
/// power-loss injection from the dedicated `seed ^ 0x504C` stream.
#[derive(Debug)]
struct MetaPump {
    journal: Option<MetaConfig>,
    /// Mapping ops appended per fill (one per constituent block).
    entries_per_fill: u64,
    /// Data-page programs per fill (drives the checkpoint cadence).
    data_pages_per_fill: u64,
    /// Flash pages one superblock-mapping checkpoint occupies.
    ckpt_pages: u64,
    pending_entries: u64,
    pages_since_ckpt: u64,
    /// Journal pages flushed since the last checkpoint — what a mount
    /// right now would replay.
    unreplayed_pages: u64,
    loss_rng: Option<Rng>,
    mean_fills: f64,
    next_loss_at_fill: u64,
}

impl MetaPump {
    fn new(cfg: &EnduranceConfig) -> MetaPump {
        assert!(
            cfg.mean_fills_between_power_loss <= 0.0 || cfg.journal.is_some(),
            "power-loss injection requires the journal model"
        );
        let blocks = (cfg.channels * cfg.subs_per_channel) as u64;
        let ckpt_pages = cfg.journal.map_or(0, |j| {
            (cfg.superblocks as u64 * CHECKPOINT_ENTRY_BYTES).div_ceil(u64::from(j.page_bytes))
        });
        let mut pump = MetaPump {
            journal: cfg.journal,
            entries_per_fill: blocks,
            data_pages_per_fill: blocks * u64::from(cfg.pages_per_block),
            ckpt_pages,
            pending_entries: 0,
            pages_since_ckpt: 0,
            unreplayed_pages: 0,
            loss_rng: None,
            mean_fills: cfg.mean_fills_between_power_loss,
            next_loss_at_fill: 0,
        };
        if cfg.mean_fills_between_power_loss > 0.0 {
            pump.loss_rng = Some(Rng::new(cfg.seed ^ 0x504C));
            pump.schedule_loss(0);
        }
        pump
    }

    fn schedule_loss(&mut self, fills: u64) {
        let rng = self.loss_rng.as_mut().expect("loss stream armed");
        let gap = rng.exponential(self.mean_fills).round().max(1.0) as u64;
        self.next_loss_at_fill = fills + gap;
    }

    /// Accounts one completed fill (`report.fills`/`total_written`
    /// already bumped by the caller).
    fn on_fill(&mut self, report: &mut EnduranceReport) {
        let Some(j) = self.journal else { return };
        self.pending_entries += self.entries_per_fill;
        let per_page = u64::from(j.journal_entries_per_page);
        let pages = self.pending_entries / per_page;
        self.pending_entries %= per_page;
        report.journal_pages += pages;
        self.unreplayed_pages += pages;
        if j.checkpoint_interval_pages > 0 {
            self.pages_since_ckpt += self.data_pages_per_fill;
            if self.pages_since_ckpt >= j.checkpoint_interval_pages {
                self.pages_since_ckpt = 0;
                report.checkpoint_pages += self.ckpt_pages;
                self.unreplayed_pages = 0;
            }
        }
        if self.loss_rng.is_some() && report.fills >= self.next_loss_at_fill {
            report.power_loss_points.push(PowerLossPoint {
                fills: report.fills,
                bytes_written: report.total_written,
                journal_pages_replayed: self.unreplayed_pages,
            });
            // The mount re-checkpoints, emptying the replay window.
            report.checkpoint_pages += self.ckpt_pages;
            self.unreplayed_pages = 0;
            self.pages_since_ckpt = 0;
            self.schedule_loss(report.fills);
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    /// The FTL-visible (static) block backing this slot.
    static_id: BlockId,
    /// The block physically backing it now (differs once remapped).
    current: BlockId,
}

/// The endurance simulator.
///
/// # Example
///
/// ```
/// use dssd_reliability::{EnduranceConfig, EnduranceSim, SuperblockPolicy};
///
/// let cfg = EnduranceConfig::test_small();
/// let base = EnduranceSim::new(cfg).run(SuperblockPolicy::Baseline);
/// let rec = EnduranceSim::new(cfg).run(SuperblockPolicy::Recycled);
/// // Recycling sacrifices the first superblock but outlives the baseline.
/// assert_eq!(base.first_bad_bytes(), rec.first_bad_bytes());
/// assert!(rec.total_written >= base.total_written);
/// ```
#[derive(Debug)]
pub struct EnduranceSim {
    config: EnduranceConfig,
    wear: WearModel,
}

impl EnduranceSim {
    /// Builds a simulator, drawing every block's P/E limit.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero channels/superblocks or
    /// a reservation that leaves no visible superblocks).
    #[must_use]
    pub fn new(config: EnduranceConfig) -> Self {
        assert!(config.channels > 0 && config.superblocks > 1, "degenerate geometry");
        assert!(
            (0.0..1.0).contains(&config.reserved_fraction),
            "reservation must be in [0, 1)"
        );
        let mut rng = Rng::new(config.seed);
        let blocks = config.channels * config.blocks_per_channel();
        let wear = WearModel::with_block_count(blocks, config.pe_mean, config.pe_sigma, &mut rng);
        EnduranceSim { config, wear }
    }

    /// Runs the write-stream-until-worn-out experiment under `policy`.
    pub fn run(mut self, policy: SuperblockPolicy) -> EnduranceReport {
        match policy {
            SuperblockPolicy::WearAware => self.run_wear_aware(),
            _ => self.run_static(policy),
        }
    }

    fn block_id(&self, channel: usize, local: usize) -> BlockId {
        (channel * self.config.blocks_per_channel() + local) as BlockId
    }

    fn run_static(&mut self, policy: SuperblockPolicy) -> EnduranceReport {
        let cfg = self.config;
        let subs = cfg.subs_per_channel;

        // Reservation: the last `n_reserved` superblocks are invisible and
        // their blocks seed the RBTs.
        let n_reserved = if policy == SuperblockPolicy::Reserved {
            ((cfg.superblocks as f64 * cfg.reserved_fraction).round() as usize)
                .min(cfg.superblocks - 2)
        } else {
            0
        };
        let visible = cfg.superblocks - n_reserved;

        let mut rbt: Vec<RecycleBlockTable<BlockId>> = (0..cfg.channels)
            .map(|_| RecycleBlockTable::new(cfg.rbt_entries))
            .collect();
        if n_reserved > 0 {
            for sb in visible..cfg.superblocks {
                for (c, table) in rbt.iter_mut().enumerate() {
                    for k in 0..subs {
                        let _ = table.deposit(self.block_id(c, sb * subs + k));
                    }
                }
            }
        }
        let mut srt: Vec<SuperblockRemapTable<BlockId>> = (0..cfg.channels)
            .map(|_| SuperblockRemapTable::new(cfg.srt_entries))
            .collect();

        // Superblock slot tables (static layout).
        let mut slots: Vec<Vec<Slot>> = (0..visible)
            .map(|sb| {
                (0..cfg.channels)
                    .flat_map(|c| {
                        (0..subs).map(move |k| (c, sb * subs + k))
                    })
                    .map(|(c, local)| {
                        let id = self.block_id(c, local);
                        Slot { static_id: id, current: id }
                    })
                    .collect()
            })
            .collect();
        let mut alive: Vec<u32> = (0..visible as u32).collect();

        let mut report = EnduranceReport {
            policy,
            curve: Vec::new(),
            total_written: 0,
            remap_curve: Vec::new(),
            remap_events: 0,
            initial_visible: visible as u32,
            fills: 0,
            erase_ops: 0,
            power_loss_points: Vec::new(),
            journal_pages: 0,
            checkpoint_pages: 0,
        };
        let mut pump = MetaPump::new(&cfg);
        let stop_bad = ((visible as f64 * cfg.stop_bad_fraction).ceil() as u32).max(1);
        let sb_bytes = cfg.superblock_bytes();
        let recycling = policy != SuperblockPolicy::Baseline;

        let mut rr = 0usize;
        let mut bad = 0u32;
        'outer: while bad < stop_bad && alive.len() >= 2 {
            rr = (rr + 1) % alive.len();
            let sb = alive[rr] as usize;
            report.fills += 1;
            report.total_written += sb_bytes;
            pump.on_fill(&mut report);

            // One P/E cycle per constituent block.
            let mut worn: Vec<usize> = Vec::new();
            for (i, slot) in slots[sb].iter().enumerate() {
                report.erase_ops += 1;
                if self.wear.erase(slot.current as usize) == EraseOutcome::WornOut {
                    worn.push(i);
                }
            }
            if worn.is_empty() {
                continue;
            }

            // Try to keep the superblock alive by remapping each worn
            // slot to a recycled block.
            let mut dead = !recycling;
            if recycling {
                for &i in &worn {
                    let channel = i / subs;
                    let taken = Self::take_recycled(&mut rbt, channel);
                    let Some(replacement) = taken else {
                        dead = true;
                        break;
                    };
                    let slot = &mut slots[sb][i];
                    if srt[channel].insert(slot.static_id, replacement).is_err() {
                        // SRT full: the remap cannot be recorded; the
                        // replacement goes back to the bin and the
                        // superblock dies.
                        let _ = rbt[channel].deposit(replacement);
                        dead = true;
                        break;
                    }
                    slot.current = replacement;
                    report.remap_events += 1;
                    let active: usize = srt.iter().map(|t| t.active_entries()).sum();
                    report.remap_curve.push((report.remap_events, active));
                }
            }

            if dead {
                bad += 1;
                report.curve.push((report.total_written, bad));
                // Retire: still-good blocks are recycled (dSSD policies
                // only), SRT entries for this superblock are freed.
                let retired = slots[sb].clone();
                for (i, slot) in retired.iter().enumerate() {
                    let channel = i / subs;
                    if recycling {
                        srt[channel].remove(slot.static_id);
                        if !self.wear.is_worn_out(slot.current as usize) {
                            let _ = rbt[channel].deposit(slot.current);
                        }
                    }
                }
                alive.swap_remove(rr);
                if rr == alive.len() && rr > 0 {
                    rr -= 1;
                }
                if alive.len() < 2 {
                    break 'outer;
                }
            }
        }
        report
    }

    /// Prefer the failing channel's own bin; fall back to any channel
    /// (global copyback makes cross-channel recycled blocks reachable,
    /// at the performance cost studied in Fig 15).
    fn take_recycled(
        rbt: &mut [RecycleBlockTable<BlockId>],
        channel: usize,
    ) -> Option<BlockId> {
        if let Some(b) = rbt[channel].take() {
            return Some(b);
        }
        for (c, table) in rbt.iter_mut().enumerate() {
            if c != channel {
                if let Some(b) = table.take() {
                    return Some(b);
                }
            }
        }
        None
    }

    fn run_wear_aware(&mut self) -> EnduranceReport {
        let cfg = self.config;
        let subs = cfg.subs_per_channel;
        let mut est_rng = Rng::new(cfg.seed ^ 0x3A5);
        let estimate = move |rng: &mut Rng, remaining: u32| -> u32 {
            if cfg.was_estimation_sigma <= 0.0 {
                return remaining;
            }
            (remaining as f64 + rng.gaussian(0.0, cfg.was_estimation_sigma))
                .max(0.0)
                .round() as u32
        };
        // Per-channel max-heaps keyed by (estimated) remaining endurance:
        // every fill uses each channel's `subs` healthiest-looking blocks.
        // With zero estimation error this is the oracle WAS the paper
        // effectively grants the software approach.
        let mut pools: Vec<BinaryHeap<(u32, Reverse<BlockId>)>> = (0..cfg.channels)
            .map(|c| {
                (0..cfg.blocks_per_channel())
                    .map(|local| {
                        let id = self.block_id(c, local);
                        let est = estimate(&mut est_rng, self.wear.remaining(id as usize));
                        (est, Reverse(id))
                    })
                    .collect()
            })
            .collect();

        let mut report = EnduranceReport {
            policy: SuperblockPolicy::WearAware,
            curve: Vec::new(),
            total_written: 0,
            remap_curve: Vec::new(),
            remap_events: 0,
            initial_visible: cfg.superblocks as u32,
            fills: 0,
            erase_ops: 0,
            power_loss_points: Vec::new(),
            journal_pages: 0,
            checkpoint_pages: 0,
        };
        let mut pump = MetaPump::new(&cfg);
        let sb_bytes = cfg.superblock_bytes();
        let formable = |pools: &[BinaryHeap<(u32, Reverse<BlockId>)>]| {
            pools.iter().map(|p| p.len() / subs).min().unwrap_or(0) as u32
        };
        let initial_formable = formable(&pools);
        let stop_bad =
            ((initial_formable as f64 * cfg.stop_bad_fraction).ceil() as u32).max(1);
        let mut last_bad = 0u32;

        loop {
            let bad = initial_formable - formable(&pools);
            if bad > last_bad {
                report.curve.push((report.total_written, bad));
                last_bad = bad;
            }
            if bad >= stop_bad || formable(&pools) == 0 {
                break;
            }
            report.fills += 1;
            report.total_written += sb_bytes;
            pump.on_fill(&mut report);
            for pool in &mut pools {
                let mut used = Vec::with_capacity(subs);
                for _ in 0..subs {
                    let (_, Reverse(id)) = pool.pop().expect("formable() guaranteed blocks");
                    used.push(id);
                }
                for id in used {
                    report.erase_ops += 1;
                    if self.wear.erase(id as usize) == EraseOutcome::Healthy {
                        let est = estimate(&mut est_rng, self.wear.remaining(id as usize));
                        pool.push((est, Reverse(id)));
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EnduranceConfig {
        EnduranceConfig::test_small()
    }

    fn run(policy: SuperblockPolicy) -> EnduranceReport {
        EnduranceSim::new(cfg()).run(policy)
    }

    #[test]
    fn first_bad_equal_baseline_and_recycled() {
        // Sec 5.3: "dynamic superblock does not delay the occurrence of
        // the first bad superblock since a bad superblock is necessary to
        // create an initial set of recycled blocks".
        let base = run(SuperblockPolicy::Baseline);
        let rec = run(SuperblockPolicy::Recycled);
        assert_eq!(base.first_bad_bytes(), rec.first_bad_bytes());
    }

    #[test]
    fn reserved_delays_first_bad() {
        let rec = run(SuperblockPolicy::Recycled);
        let res = run(SuperblockPolicy::Reserved);
        let (a, b) = (rec.first_bad_bytes().unwrap(), res.first_bad_bytes().unwrap());
        assert!(
            b as f64 > a as f64 * 1.2,
            "RESERV first bad {b} must be well past RECYCLED {a}"
        );
    }

    #[test]
    fn endurance_ordering_matches_paper() {
        // Fig 14a/b: WAS >= RESERV >= RECYCLED > BASELINE, measured at a
        // small bad-superblock count — the paper notes "the benefits of
        // RESERV decreases as the number of bad superblock increases",
        // so the ordering is asserted early in the curve.
        let base = run(SuperblockPolicy::Baseline);
        let rec = run(SuperblockPolicy::Recycled);
        let res = run(SuperblockPolicy::Reserved);
        let was = run(SuperblockPolicy::WearAware);
        let at = |r: &EnduranceReport| {
            r.written_at_bad_fraction(0.05)
                .unwrap_or(r.total_written)
        };
        assert!(at(&rec) > at(&base), "RECYCLED {} vs BASELINE {}", at(&rec), at(&base));
        assert!(at(&res) >= at(&rec), "RESERV {} vs RECYCLED {}", at(&res), at(&rec));
        assert!(at(&was) >= at(&res), "WAS {} vs RESERV {}", at(&was), at(&res));
    }

    #[test]
    fn benefit_grows_with_variation() {
        // Fig 14b: the benefit of RECYCLED over BASELINE grows with the
        // block-wear sigma.
        let gain_at = |sigma: f64| {
            let c = EnduranceConfig { pe_sigma: sigma, ..cfg() };
            let base = EnduranceSim::new(c).run(SuperblockPolicy::Baseline);
            let rec = EnduranceSim::new(c).run(SuperblockPolicy::Recycled);
            let at = |r: &EnduranceReport| {
                r.written_at_bad_fraction(0.1).unwrap_or(r.total_written) as f64
            };
            at(&rec) / at(&base)
        };
        let low = gain_at(5.0);
        let high = gain_at(60.0);
        assert!(
            high > low,
            "gain must grow with sigma: {low} at sigma=5, {high} at sigma=60"
        );
    }

    #[test]
    fn tiny_srt_limits_endurance() {
        // Fig 16a: more SRT entries -> higher endurance, saturating.
        let with_srt = |entries: usize| {
            let c = EnduranceConfig { srt_entries: entries, ..cfg() };
            EnduranceSim::new(c).run(SuperblockPolicy::Recycled).total_written
        };
        let tiny = with_srt(1);
        let small = with_srt(16);
        let large = with_srt(1 << 20);
        assert!(small > tiny, "16-entry SRT {small} vs 1-entry {tiny}");
        assert!(large >= small);
    }

    #[test]
    fn active_srt_entries_grow_then_saturate() {
        // Fig 16b: active entries increase with remap events and stop
        // growing once no static superblock remains unremapped.
        let c = EnduranceConfig { srt_entries: 1 << 20, ..cfg() };
        let r = EnduranceSim::new(c).run(SuperblockPolicy::Recycled);
        assert!(r.remap_events > 0);
        let active: Vec<usize> = r.remap_curve.iter().map(|&(_, a)| a).collect();
        // Monotone non-decreasing until retirements free entries; peak
        // bounded by total sub-block slots.
        let peak = *active.iter().max().unwrap();
        assert!(peak <= cfg().channels * cfg().subs_per_channel * cfg().superblocks);
        assert!(active[0] <= peak);
    }

    #[test]
    fn reserved_has_more_active_entries() {
        let c = EnduranceConfig { srt_entries: 1 << 20, ..cfg() };
        let rec = EnduranceSim::new(c).run(SuperblockPolicy::Recycled);
        let res = EnduranceSim::new(c).run(SuperblockPolicy::Reserved);
        let peak = |r: &EnduranceReport| {
            r.remap_curve.iter().map(|&(_, a)| a).max().unwrap_or(0)
        };
        assert!(
            peak(&res) >= peak(&rec),
            "RESERV peak {} vs RECYCLED {}",
            peak(&res),
            peak(&rec)
        );
    }

    #[test]
    fn curves_are_monotone() {
        for policy in SuperblockPolicy::all() {
            let r = run(policy);
            for w in r.curve.windows(2) {
                assert!(w[0].0 <= w[1].0, "{policy:?} bytes must not decrease");
                assert!(w[0].1 <= w[1].1, "{policy:?} bad count must not decrease");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = run(SuperblockPolicy::Reserved);
        let b = run(SuperblockPolicy::Reserved);
        assert_eq!(a.total_written, b.total_written);
        assert_eq!(a.curve, b.curve);
    }

    #[test]
    fn report_helpers() {
        let r = run(SuperblockPolicy::Baseline);
        assert!(r.first_bad_bytes().is_some());
        assert!(r.bad_superblocks() > 0);
        assert!(r.written_at_bad_fraction(0.05).is_some());
        assert!(r.fills > 0);
        assert_eq!(r.initial_visible, 64);
    }

    #[test]
    fn was_estimation_noise_erodes_its_advantage() {
        let at = |sigma: f64| {
            let c = EnduranceConfig { was_estimation_sigma: sigma, ..cfg() };
            let r = EnduranceSim::new(c).run(SuperblockPolicy::WearAware);
            r.written_at_bad_fraction(0.05).unwrap_or(r.total_written)
        };
        let oracle = at(0.0);
        let noisy = at(500.0); // noise far beyond the wear spread
        assert!(
            oracle > noisy,
            "oracle WAS {oracle} must beat noisy WAS {noisy}"
        );
    }

    fn journaled() -> EnduranceConfig {
        EnduranceConfig {
            journal: Some(MetaConfig {
                journal_entries_per_page: 64,
                checkpoint_interval_pages: 1 << 16,
                page_bytes: 16384,
            }),
            mean_fills_between_power_loss: 200.0,
            ..cfg()
        }
    }

    #[test]
    fn power_loss_points_are_recorded_and_deterministic() {
        let a = EnduranceSim::new(journaled()).run(SuperblockPolicy::Recycled);
        let b = EnduranceSim::new(journaled()).run(SuperblockPolicy::Recycled);
        assert!(!a.power_loss_points.is_empty());
        assert_eq!(a.power_loss_points, b.power_loss_points);
        assert!(a.journal_pages > 0);
        assert!(a.checkpoint_pages > 0);
        for w in a.power_loss_points.windows(2) {
            assert!(w[0].fills < w[1].fills, "losses must strictly advance");
        }
    }

    #[test]
    fn power_loss_injection_leaves_the_endurance_curve_untouched() {
        // The loss stream is dedicated (`seed ^ 0x504C`), so injection
        // must not perturb wear evolution.
        let plain = EnduranceSim::new(cfg()).run(SuperblockPolicy::Recycled);
        let inj = EnduranceSim::new(journaled()).run(SuperblockPolicy::Recycled);
        assert_eq!(plain.curve, inj.curve);
        assert_eq!(plain.total_written, inj.total_written);
    }

    #[test]
    fn journal_traffic_scales_with_fills() {
        let r = EnduranceSim::new(journaled()).run(SuperblockPolicy::Baseline);
        // One op per constituent block per fill, 64 ops per page.
        let c = cfg();
        let expected =
            r.fills * (c.channels * c.subs_per_channel) as u64 / 64;
        assert!(r.journal_pages >= expected.saturating_sub(1));
        assert!(r.journal_pages <= expected + 1);
    }

    #[test]
    fn no_journal_means_no_metadata_traffic() {
        let r = run(SuperblockPolicy::Recycled);
        assert_eq!(r.journal_pages, 0);
        assert_eq!(r.checkpoint_pages, 0);
        assert!(r.power_loss_points.is_empty());
    }

    #[test]
    #[should_panic(expected = "power-loss injection requires the journal model")]
    fn loss_without_journal_panics() {
        let c = EnduranceConfig { mean_fills_between_power_loss: 10.0, ..cfg() };
        let _ = EnduranceSim::new(c).run(SuperblockPolicy::Baseline);
    }

    #[test]
    fn reserved_sees_fewer_visible_superblocks() {
        let res = run(SuperblockPolicy::Reserved);
        assert!(res.initial_visible < 64);
        assert_eq!(res.initial_visible, 64 - (64.0f64 * 0.07).round() as u32);
    }
}
