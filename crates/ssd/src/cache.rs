//! DRAM write-back buffer cache.
//!
//! The paper's background (Sec 2.1): "a significant fraction of DRAM is
//! used as a write-buffer cache by the firmware to hide the relatively
//! slow flash memory latency/bandwidth". This module provides an LRU
//! write-back cache over logical pages: writes are absorbed into DRAM
//! and acknowledged immediately; dirty pages are flushed to flash in the
//! background once a high-water mark is crossed; reads that hit recent
//! writes are served from DRAM.

use std::collections::VecDeque;

use dssd_kernel::FxHashMap;

/// An LRU cache of logical pages with dirty tracking.
///
/// Recency is tracked with the stamp/queue technique: every touch pushes
/// a `(lpn, stamp)` pair and bumps the page's current stamp; stale queue
/// entries are discarded lazily during eviction.
///
/// # Example
///
/// ```
/// use dssd_ssd::WriteCache;
///
/// let mut c = WriteCache::new(2);
/// c.write(1);
/// c.write(2);
/// assert!(c.contains(1));
/// c.write(3); // evicts the LRU *clean* page only — all dirty: grows
/// assert_eq!(c.dirty_count(), 3);
/// let flush = c.take_dirty(8);
/// assert_eq!(flush.len(), 3);
/// assert_eq!(c.dirty_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct WriteCache {
    capacity: usize,
    /// LPN -> (current stamp, dirty).
    pages: FxHashMap<u64, (u64, bool)>,
    /// Recency queue of (lpn, stamp); stale pairs are skipped lazily.
    order: VecDeque<(u64, u64)>,
    stamp: u64,
    dirty: usize,
    hits: u64,
    misses: u64,
}

impl WriteCache {
    /// Creates a cache with room for `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        WriteCache {
            capacity,
            pages: FxHashMap::default(),
            order: VecDeque::new(),
            stamp: 0,
            dirty: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Page capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Dirty (unflushed) pages.
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.dirty
    }

    /// True once the dirty population crosses the flush high-water mark
    /// (¾ of capacity).
    #[must_use]
    pub fn needs_flush(&self) -> bool {
        self.dirty * 4 > self.capacity * 3
    }

    /// Read-path lookup; counts hit/miss and refreshes recency on a hit.
    pub fn read(&mut self, lpn: u64) -> bool {
        if self.pages.contains_key(&lpn) {
            self.touch(lpn);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// True if the page is cached (no statistics side effects).
    #[must_use]
    pub fn contains(&self, lpn: u64) -> bool {
        self.pages.contains_key(&lpn)
    }

    /// Absorbs a write: the page becomes cached and dirty. Clean LRU
    /// pages are evicted to stay within capacity; dirty pages are never
    /// dropped (they leave via [`WriteCache::take_dirty`]), so the cache
    /// can temporarily exceed capacity under flush back-pressure.
    pub fn write(&mut self, lpn: u64) {
        match self.pages.get_mut(&lpn) {
            Some((_, dirty)) => {
                if !*dirty {
                    *dirty = true;
                    self.dirty += 1;
                }
            }
            None => {
                self.pages.insert(lpn, (0, true));
                self.dirty += 1;
            }
        }
        self.touch(lpn);
        self.evict_clean();
    }

    /// Takes up to `max` of the least-recently-used dirty pages for
    /// flushing; they remain cached as clean pages.
    pub fn take_dirty(&mut self, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut keep = VecDeque::new();
        while out.len() < max {
            let Some((lpn, stamp)) = self.order.pop_front() else { break };
            match self.pages.get_mut(&lpn) {
                Some((cur, dirty)) if *cur == stamp => {
                    if *dirty {
                        *dirty = false;
                        self.dirty -= 1;
                        out.push(lpn);
                    }
                    keep.push_back((lpn, stamp));
                }
                _ => {} // stale entry
            }
        }
        // The scanned (still-valid) entries stay in LRU order at the front.
        while let Some(e) = keep.pop_back() {
            self.order.push_front(e);
        }
        self.evict_clean();
        out
    }

    /// Cache hits observed on the read path.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed on the read path.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn touch(&mut self, lpn: u64) {
        self.stamp += 1;
        if let Some((cur, _)) = self.pages.get_mut(&lpn) {
            *cur = self.stamp;
        }
        self.order.push_back((lpn, self.stamp));
    }

    fn evict_clean(&mut self) {
        while self.pages.len() > self.capacity {
            let Some((lpn, stamp)) = self.order.pop_front() else { break };
            match self.pages.get(&lpn) {
                Some((cur, dirty)) if *cur == stamp => {
                    if *dirty {
                        // Dirty pages cannot be dropped; put it back and
                        // stop — flushing will restore capacity.
                        self.order.push_front((lpn, stamp));
                        break;
                    }
                    self.pages.remove(&lpn);
                }
                _ => {} // stale entry
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_hits() {
        let mut c = WriteCache::new(8);
        c.write(5);
        assert!(c.read(5));
        assert!(!c.read(6));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_clean_pages_in_order() {
        let mut c = WriteCache::new(2);
        c.write(1);
        c.write(2);
        let flushed = c.take_dirty(2);
        assert_eq!(flushed, vec![1, 2]);
        c.write(3); // over capacity: clean LRU (1) is dropped
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn read_refreshes_recency() {
        let mut c = WriteCache::new(2);
        c.write(1);
        c.write(2);
        c.take_dirty(2);
        assert!(c.read(1)); // 1 becomes MRU
        c.write(3); // evicts 2, not 1
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        let mut c = WriteCache::new(2);
        for lpn in 0..5 {
            c.write(lpn);
        }
        assert_eq!(c.dirty_count(), 5);
        assert_eq!(c.len(), 5, "dirty pages must not be dropped");
        assert!(c.needs_flush());
        let flushed = c.take_dirty(5);
        assert_eq!(flushed.len(), 5);
        assert!(c.len() <= 2, "capacity enforced once clean");
    }

    #[test]
    fn take_dirty_prefers_lru_and_keeps_pages_cached() {
        let mut c = WriteCache::new(8);
        c.write(1);
        c.write(2);
        c.write(3);
        let f = c.take_dirty(2);
        assert_eq!(f, vec![1, 2]);
        assert_eq!(c.dirty_count(), 1);
        assert!(c.contains(1) && c.contains(2), "flushed pages stay clean-cached");
    }

    #[test]
    fn rewrite_of_dirty_page_does_not_double_count() {
        let mut c = WriteCache::new(4);
        c.write(7);
        c.write(7);
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(c.take_dirty(4), vec![7]);
    }

    #[test]
    fn flush_watermark() {
        let mut c = WriteCache::new(4);
        c.write(0);
        c.write(1);
        c.write(2);
        assert!(!c.needs_flush()); // 3 dirty of 4 = 75%, not above
        c.write(3);
        assert!(c.needs_flush());
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = WriteCache::new(0);
    }
}
