//! Snapshot/restore of a running simulation.
//!
//! A snapshot is a *replay cursor*, not a memory image: it records
//! fingerprints of the config and run plan, whether the drive was
//! prefilled, the horizon, the number of events handled so far, and an
//! order-sensitive digest of the live state. Restoring rebuilds the sim
//! from the same config, replays exactly `cursor` events — deterministic
//! by construction — and verifies the digest, so a resumed run's
//! [`RunReport`](crate::RunReport) is byte-identical to the
//! uninterrupted run's. This leans on the simulator's core discipline
//! (every random draw comes from a seeded stream, every tie-break is
//! explicit) instead of serializing hundreds of fields, and the digest
//! check turns any violation of that discipline into a load-time error
//! rather than silent divergence.

use dssd_kernel::{SimSpan, SimTime, SnapError, SnapReader, SnapWriter};
use dssd_workload::SyntheticWorkload;

use crate::{RunState, SsdConfig, SsdSim};

const MAGIC: &[u8; 8] = b"DSSDSNAP";
const VERSION: u32 = 1;

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The run a snapshot belongs to: the closed-loop workload and the
/// horizon. The restore path re-derives both from the original
/// invocation (e.g. the same CLI flags) and the snapshot verifies them
/// by fingerprint.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// The (unbound) closed-loop workload driving the run.
    pub workload: SyntheticWorkload,
    /// The run duration.
    pub duration: SimSpan,
}

impl RunPlan {
    fn fingerprint(&self) -> u64 {
        fnv(format!("{:?}|{:?}", self.workload, self.duration).as_bytes())
    }
}

fn config_fingerprint(config: &SsdConfig) -> u64 {
    // The shard count selects an execution engine, not a simulated
    // machine — results are byte-identical for every value — so it is
    // normalized out of the fingerprint: a snapshot taken under
    // `--shards 4` restores under `--shards 1` and vice versa.
    let mut canon = config.clone();
    canon.shards = 1;
    fnv(format!("{canon:?}").as_bytes())
}

/// A point-in-time capture of a stepped run; see the [module
/// docs](self) for the replay-based restore contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSnapshot {
    config_fp: u64,
    plan_fp: u64,
    prefilled: bool,
    duration: SimSpan,
    cursor: u64,
    now: SimTime,
    state_digest: u64,
}

impl SimSnapshot {
    /// Captures the state of `sim`, paused mid-run via
    /// [`SsdSim::run_until`] / [`SsdSim::run_events`], under `plan`.
    #[must_use]
    pub fn capture(sim: &SsdSim, plan: &RunPlan) -> SimSnapshot {
        SimSnapshot {
            config_fp: config_fingerprint(sim.config()),
            plan_fp: plan.fingerprint(),
            prefilled: sim.is_prefilled(),
            duration: plan.duration,
            cursor: sim.events_handled(),
            now: sim.now(),
            state_digest: sim.state_digest(),
        }
    }

    /// Events the snapshotted run had handled.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Simulated instant of the capture.
    #[must_use]
    pub fn taken_at(&self) -> SimTime {
        self.now
    }

    /// Serializes to the snapshot byte format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        w.put_u64(self.config_fp);
        w.put_u64(self.plan_fp);
        w.put_bool(self.prefilled);
        w.put_u64(self.duration.as_ns());
        w.put_u64(self.cursor);
        w.put_u64(self.now.as_ns());
        w.put_u64(self.state_digest);
        w.into_bytes()
    }

    /// Decodes a snapshot produced by [`SimSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncation, a foreign magic, or a
    /// version mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<SimSnapshot, SnapError> {
        let mut r = SnapReader::new(bytes);
        if r.take_bytes()? != MAGIC {
            return Err(SnapError { message: "not a dSSD snapshot".into(), offset: 0 });
        }
        let version = r.take_u32()?;
        if version != VERSION {
            return Err(SnapError {
                message: format!("snapshot format v{version}, this build reads v{VERSION}"),
                offset: r.offset(),
            });
        }
        Ok(SimSnapshot {
            config_fp: r.take_u64()?,
            plan_fp: r.take_u64()?,
            prefilled: r.take_bool()?,
            duration: SimSpan::from_ns(r.take_u64()?),
            cursor: r.take_u64()?,
            now: SimTime::ZERO + SimSpan::from_ns(r.take_u64()?),
            state_digest: r.take_u64()?,
        })
    }

    /// Rebuilds a sim in exactly the snapshotted state: constructs it
    /// from `config`, prefills if the original was prefilled, replays
    /// `cursor` events of `plan`, and verifies clock and state digest.
    /// Continue with [`SsdSim::run_events`] and [`SsdSim::finish_run`].
    ///
    /// # Errors
    ///
    /// Returns a message when `config`/`plan` differ from the capture's,
    /// or when the replay fails to reproduce the captured state.
    pub fn restore(&self, config: SsdConfig, plan: &RunPlan) -> Result<SsdSim, String> {
        if config_fingerprint(&config) != self.config_fp {
            return Err("snapshot was taken under a different config".into());
        }
        if plan.fingerprint() != self.plan_fp {
            return Err("snapshot was taken under a different run plan".into());
        }
        let mut sim = SsdSim::new(config);
        if self.prefilled {
            sim.prefill();
        }
        sim.begin_closed_loop(plan.workload.clone(), self.duration);
        if sim.run_events(self.cursor) == RunState::Halted {
            return Err("replay hit injected power loss before the cursor".into());
        }
        if sim.events_handled() != self.cursor {
            return Err(format!(
                "replay ended after {} events; the snapshot recorded {}",
                sim.events_handled(),
                self.cursor
            ));
        }
        if sim.now() != self.now || sim.state_digest() != self.state_digest {
            return Err("replay diverged from the snapshotted state \
                        (non-deterministic build or corrupted snapshot)"
                .into());
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Architecture;
    use dssd_workload::AccessPattern;

    fn plan() -> RunPlan {
        RunPlan {
            workload: SyntheticWorkload::writes(AccessPattern::Random, 8),
            duration: SimSpan::from_ms(5),
        }
    }

    fn paused_sim() -> SsdSim {
        let mut sim = SsdSim::new(SsdConfig::test_tiny(Architecture::DssdFnoc));
        sim.prefill();
        let p = plan();
        sim.begin_closed_loop(p.workload, p.duration);
        sim.run_events(2_000);
        sim
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let sim = paused_sim();
        let snap = SimSnapshot::capture(&sim, &plan());
        let bytes = snap.to_bytes();
        assert_eq!(SimSnapshot::from_bytes(&bytes).unwrap(), snap);
        assert!(SimSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut foreign = bytes.clone();
        foreign[8] = b'X';
        assert!(SimSnapshot::from_bytes(&foreign).is_err());
    }

    #[test]
    fn restore_reproduces_state_and_final_report() {
        let mut sim = paused_sim();
        let snap = SimSnapshot::capture(&sim, &plan());
        let mut resumed = snap
            .restore(SsdConfig::test_tiny(Architecture::DssdFnoc), &plan())
            .expect("restore");
        assert_eq!(resumed.state_digest(), sim.state_digest());
        // Both halves complete; the resumed report must be identical.
        sim.run_events(u64::MAX);
        resumed.run_events(u64::MAX);
        let a = sim.finish_run().clone();
        let b = resumed.finish_run().clone();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let sim = paused_sim();
        let snap = SimSnapshot::capture(&sim, &plan());
        let mut other = SsdConfig::test_tiny(Architecture::DssdFnoc);
        other.seed ^= 1;
        assert!(snap.restore(other, &plan()).is_err());
        let mut p = plan();
        p.duration = SimSpan::from_ms(6);
        assert!(snap
            .restore(SsdConfig::test_tiny(Architecture::DssdFnoc), &p)
            .is_err());
    }
}
