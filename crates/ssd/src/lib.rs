//! The integrated event-driven SSD simulator — the dSSD reproduction's
//! SimpleSSD-standalone substitute.
//!
//! [`SsdSim`] binds every substrate together: host interface (closed-loop
//! queue-depth-64 synthetic streams or open-loop trace replay), the FTL,
//! the system bus and DRAM bandwidth servers, per-channel flash buses and
//! ECC engines, the die grid, and — for the decoupled architectures — the
//! dedicated GC bus or the flit-level fNoC.
//!
//! The five architectures of Table 2 are selected by [`Architecture`]:
//!
//! | Config | GC copy path |
//! |---|---|
//! | `Baseline` | flash → ECC → **system bus** → DRAM → **system bus** → flash |
//! | `BW` | same path, 1.25× system-bus bandwidth |
//! | `dSSD` | flash → ECC@controller → **system bus** (one crossing, controller-to-controller) → flash |
//! | `dSSD_b` | flash → ECC@controller → **dedicated bus** → flash |
//! | `dSSD_f` | flash → ECC@controller → dBUF → **fNoC packets** → dBUF → flash |
//!
//! Same-channel copies in all dSSD variants never leave the controller.
//!
//! # Example
//!
//! ```no_run
//! use dssd_ssd::{Architecture, SsdConfig, SsdSim};
//! use dssd_workload::{AccessPattern, SyntheticWorkload};
//! use dssd_kernel::SimSpan;
//!
//! let config = SsdConfig::scaled_ull(Architecture::DssdFnoc);
//! let mut sim = SsdSim::new(config);
//! sim.prefill();
//! let workload = SyntheticWorkload::writes(AccessPattern::Random, 8);
//! let report = sim.run_closed_loop(workload, SimSpan::from_ms(50));
//! println!("I/O bandwidth: {:.2} GB/s", report.io_bandwidth_gbps());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod faults;
mod metrics;
mod shard;
mod sim;
mod snapshot;

pub use config::{
    Architecture, DurabilityConfig, DynamicSbConfig, PowerLossConfig, SsdConfig, WasScanConfig,
};
pub use faults::{FaultConfig, FaultInjector, ReadFault};
pub use metrics::{FaultCounters, RecoveryReport, RunReport, StageBreakdown, StageKind};
pub use cache::WriteCache;
pub use shard::ShardPlan;
pub use sim::{Completion, RunState, SsdSim, EPOCH_COLUMNS};
pub use snapshot::{RunPlan, SimSnapshot};

// Re-exported so embedders can read durability-model stats without a
// separate dependency on the FTL crate.
pub use dssd_ftl::{MetaStats, RecoveryOutcome};

// Re-exported so embedders can configure tracing without a separate
// dependency on the telemetry crate.
pub use dssd_telemetry::{TraceConfig, Tracer};
