//! Run-level measurements: bandwidth timelines, latency histograms,
//! utilization splits and per-stage latency breakdowns.

use dssd_kernel::stats::{BandwidthMeter, Histogram, OnlineMean, UtilizationMeter};
use dssd_kernel::{SimSpan, SimTime};

/// The latency components of the Fig 9 breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Flash array (die) wait + operation time.
    FlashChip,
    /// Flash channel bus wait + transfer.
    FlashBus,
    /// System bus wait + transfer.
    SystemBus,
    /// DRAM wait + access.
    Dram,
    /// ECC pipeline wait + decode.
    Ecc,
    /// fNoC (or dedicated GC bus) transit.
    Noc,
}

impl StageKind {
    /// All stages, in display order.
    #[must_use]
    pub fn all() -> [StageKind; 6] {
        [
            StageKind::FlashChip,
            StageKind::FlashBus,
            StageKind::SystemBus,
            StageKind::Dram,
            StageKind::Ecc,
            StageKind::Noc,
        ]
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StageKind::FlashChip => "flash chip",
            StageKind::FlashBus => "flash bus",
            StageKind::SystemBus => "system bus",
            StageKind::Dram => "dram",
            StageKind::Ecc => "ecc",
            StageKind::Noc => "fnoc",
        }
    }

    /// Dense index in [`StageKind::all`] order (shared with the telemetry
    /// crate's `Stage::index`, so per-stage arrays line up across crates).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StageKind::FlashChip => 0,
            StageKind::FlashBus => 1,
            StageKind::SystemBus => 2,
            StageKind::Dram => 3,
            StageKind::Ecc => 4,
            StageKind::Noc => 5,
        }
    }
}

/// Mean time spent per pipeline stage (wait + service), accumulated over
/// completed operations.
#[derive(Debug, Clone, Default)]
pub struct StageBreakdown {
    means: [OnlineMean; 6],
}

impl StageBreakdown {
    /// Records one operation's per-stage spans (microseconds are derived
    /// internally; pass raw spans).
    pub fn record(&mut self, spans: &[(StageKind, SimSpan)]) {
        let mut totals = [0.0f64; 6];
        for (kind, span) in spans {
            totals[kind.index()] += span.as_us_f64();
        }
        for (i, t) in totals.iter().enumerate() {
            self.means[i].record(*t);
        }
    }

    /// Mean microseconds spent in `stage` per operation.
    #[must_use]
    pub fn mean_us(&self, stage: StageKind) -> f64 {
        self.means[stage.index()].mean()
    }

    /// Mean total microseconds per operation.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        StageKind::all().iter().map(|&s| self.mean_us(s)).sum()
    }

    /// Operations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.means[0].count()
    }

    /// Merges another breakdown into this one (e.g. per-shard breakdowns
    /// from a parallel sweep). Stage means combine count-weighted, so the
    /// result equals a single breakdown over the union of operations.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (m, o) in self.means.iter_mut().zip(&other.means) {
            m.merge(o);
        }
    }
}

/// Counts of injected faults and the recovery actions they triggered.
///
/// All zeros unless fault injection is enabled (see
/// [`FaultConfig`](crate::FaultConfig)). `PartialEq` so determinism tests
/// can compare whole counter sets across same-seed runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Read-retry attempts issued after a failed decode.
    pub read_retries: u64,
    /// Extra sense latency added by read retries (sum over all retries).
    pub retry_latency: SimSpan,
    /// Read groups recovered by a retry (decoded as `Corrected`).
    pub reads_recovered: u64,
    /// Read groups declared uncorrectable after exhausting the retry
    /// budget (or hitting a hard media failure that outlived it).
    pub uncorrectable_reads: u64,
    /// Program operations that reported a program failure.
    pub program_failures: u64,
    /// Erase operations that failed at GC time.
    pub erase_failures: u64,
    /// Erase blocks marked bad by a fault (distinct blocks; each feeds
    /// either an SRT/RBT remap or a superblock retirement).
    pub blocks_retired: u64,
    /// Superblocks retired online because a bad block could not be
    /// remapped (relocation GC round + removal from the allocator pools).
    pub superblocks_retired: u64,
    /// fNoC packets delayed by an injected link degradation.
    pub noc_faults: u64,
    /// Host requests completed with a failure (data loss surfaced to the
    /// host: retries exhausted or program attempts exhausted).
    pub requests_failed: u64,
}

impl FaultCounters {
    /// Sum of injected-fault events (excluding recovery-action counters),
    /// used by the telemetry epoch probe as a single fault-rate column.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.program_failures + self.erase_failures + self.uncorrectable_reads
            + self.noc_faults
    }

    /// Merges another counter set into this one (element-wise sums, e.g.
    /// per-shard counters from a parallel sweep).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.read_retries += other.read_retries;
        self.retry_latency += other.retry_latency;
        self.reads_recovered += other.reads_recovered;
        self.uncorrectable_reads += other.uncorrectable_reads;
        self.program_failures += other.program_failures;
        self.erase_failures += other.erase_failures;
        self.blocks_retired += other.blocks_retired;
        self.superblocks_retired += other.superblocks_retired;
        self.noc_faults += other.noc_faults;
        self.requests_failed += other.requests_failed;
    }
}

/// What a simulated post-power-loss mount observed: scan/replay costs,
/// the analytic mount latency, and the crash-consistency invariant
/// verdicts (both violation counters must be zero on a correct FTL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The instant power was cut.
    pub power_loss_at: SimTime,
    /// Analytic mount latency (checkpoint load + journal replay + OOB
    /// scan, channel-parallel page reads).
    pub recovery_time: SimSpan,
    /// Flash pages read to load the newest durable checkpoint.
    pub checkpoint_pages: u64,
    /// Durable journal pages replayed.
    pub journal_pages_replayed: u64,
    /// Journal ops examined during replay.
    pub journal_entries_replayed: u64,
    /// OOB records scanned in the open (post-journal-tip) region.
    pub oob_pages_scanned: u64,
    /// In-flight programs torn by the crash.
    pub torn_pages: u64,
    /// Invariant violations: acknowledged writes lost by recovery.
    pub lost_acked_writes: u64,
    /// Invariant violations: trimmed LPNs resurrected with stale data.
    pub resurrected_trims: u64,
    /// Host requests in flight (never acknowledged) when power failed.
    pub requests_torn: u64,
}

impl RecoveryReport {
    /// True when both crash-consistency invariants held.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.lost_acked_writes == 0 && self.resurrected_trims == 0
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Host I/O bytes completed, 1 ms bins (Fig 2's y-axis).
    pub io_bw: BandwidthMeter,
    /// GC bytes copied, 1 ms bins.
    pub gc_bw: BandwidthMeter,
    /// End-to-end host request latency.
    pub io_latency: Histogram,
    /// Read-request latency.
    pub read_latency: Histogram,
    /// Write-request latency.
    pub write_latency: Histogram,
    /// System-bus busy time attributed to host I/O, 1 ms bins.
    pub sysbus_io_util: UtilizationMeter,
    /// System-bus busy time attributed to GC, 1 ms bins.
    pub sysbus_gc_util: UtilizationMeter,
    /// Per-stage latency of host I/O page groups (Fig 9a).
    pub io_breakdown: StageBreakdown,
    /// Per-stage latency of copyback groups (Fig 9b).
    pub copyback_breakdown: StageBreakdown,
    /// Host requests completed.
    pub requests_completed: u64,
    /// GC page copies completed.
    pub gc_pages_copied: u64,
    /// GC rounds completed.
    pub gc_rounds: u64,
    /// First instant GC was triggered, if ever.
    pub first_gc_at: Option<SimTime>,
    /// Superblocks retired as bad (online dynamic-superblock mode).
    pub bad_superblocks: u32,
    /// Worn sub-blocks silently repaired through the SRT/RBT.
    pub dynamic_remaps: u64,
    /// When the device ran out of erased superblocks (wear-out end of
    /// life), if it did.
    pub end_of_life: Option<SimTime>,
    /// Injected-fault and recovery-action counts.
    pub faults: FaultCounters,
    /// Kernel events delivered by the run's event loop — divide by
    /// wall-clock time for the simulator's events/sec throughput.
    pub events_delivered: u64,
    /// Rolling hash over `(time, source channel)` of every GC copy
    /// issued: two runs produce the same digest exactly when their GC
    /// scheduling traces are identical.
    pub gc_issue_digest: u64,
    /// Wall-clock end of the measured window.
    pub elapsed: SimSpan,
    /// Power-loss mount outcome (`None` unless power was cut).
    pub recovery: Option<RecoveryReport>,
}

impl RunReport {
    pub(crate) fn new(window: SimSpan) -> Self {
        RunReport {
            io_bw: BandwidthMeter::new(window),
            gc_bw: BandwidthMeter::new(window),
            io_latency: Histogram::new(),
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            sysbus_io_util: UtilizationMeter::new(window),
            sysbus_gc_util: UtilizationMeter::new(window),
            io_breakdown: StageBreakdown::default(),
            copyback_breakdown: StageBreakdown::default(),
            requests_completed: 0,
            gc_pages_copied: 0,
            gc_rounds: 0,
            first_gc_at: None,
            bad_superblocks: 0,
            dynamic_remaps: 0,
            end_of_life: None,
            faults: FaultCounters::default(),
            events_delivered: 0,
            gc_issue_digest: 0,
            elapsed: SimSpan::ZERO,
            recovery: None,
        }
    }

    /// Mean host I/O bandwidth over the run, in GB/s.
    #[must_use]
    pub fn io_bandwidth_gbps(&self) -> f64 {
        self.io_bw.mean_rate(self.elapsed) / 1e9
    }

    /// Mean GC copy bandwidth over the run, in GB/s — the "GC
    /// performance" metric of Figs 7, 8, 12 and 13.
    #[must_use]
    pub fn gc_bandwidth_gbps(&self) -> f64 {
        self.gc_bw.mean_rate(self.elapsed) / 1e9
    }

    /// The `p`-quantile of host request latency.
    pub fn latency_percentile(&mut self, p: f64) -> SimSpan {
        self.io_latency.percentile(p)
    }

    /// Mean host request latency.
    #[must_use]
    pub fn mean_latency(&self) -> SimSpan {
        self.io_latency.mean()
    }

    /// Mean system-bus utilization attributed to host I/O.
    #[must_use]
    pub fn sysbus_io_utilization(&self) -> f64 {
        self.sysbus_io_util.mean(self.elapsed)
    }

    /// Mean system-bus utilization attributed to GC.
    #[must_use]
    pub fn sysbus_gc_utilization(&self) -> f64 {
        self.sysbus_gc_util.mean(self.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_means() {
        let mut b = StageBreakdown::default();
        b.record(&[
            (StageKind::FlashChip, SimSpan::from_us(50)),
            (StageKind::SystemBus, SimSpan::from_us(10)),
        ]);
        b.record(&[
            (StageKind::FlashChip, SimSpan::from_us(100)),
            (StageKind::SystemBus, SimSpan::from_us(0)),
        ]);
        assert_eq!(b.count(), 2);
        assert!((b.mean_us(StageKind::FlashChip) - 75.0).abs() < 1e-9);
        assert!((b.mean_us(StageKind::SystemBus) - 5.0).abs() < 1e-9);
        assert!((b.mean_us(StageKind::Noc)).abs() < 1e-9);
        assert!((b.total_us() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_merges_duplicate_stage_entries() {
        let mut b = StageBreakdown::default();
        b.record(&[
            (StageKind::FlashBus, SimSpan::from_us(3)),
            (StageKind::FlashBus, SimSpan::from_us(4)),
        ]);
        assert!((b.mean_us(StageKind::FlashBus) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn report_rates() {
        let mut r = RunReport::new(SimSpan::from_ms(1));
        r.io_bw.record(SimTime::from_us(10), 8_000_000);
        r.elapsed = SimSpan::from_ms(1);
        assert!((r.io_bandwidth_gbps() - 8.0).abs() < 1e-9);
        assert_eq!(r.gc_bandwidth_gbps(), 0.0);
    }

    #[test]
    fn stage_labels_cover_all() {
        for s in StageKind::all() {
            assert!(!s.label().is_empty());
        }
    }
}
