//! Deterministic in-band fault injection.
//!
//! The live pipeline never sees a NAND failure unless one is injected:
//! ULL media at the simulated ages stays well under the LDPC correction
//! threshold, so every read decodes cleanly and every program sticks.
//! [`FaultInjector`] puts failures back: driven by its own fork of the
//! seeded [`Rng`], it decides per read group whether the ECC check comes
//! back transient (retryable) or hard (media), per program group whether
//! the program fails, per erase whether the erase fails, and per fNoC
//! packet whether the link degrades. The simulation *handles* each
//! outcome in-band — read-retry with escalating sense latency, program
//! re-allocation, online superblock retirement through the SRT/RBT remap
//! path — instead of panicking.
//!
//! Determinism contract: the injector draws from a dedicated RNG stream
//! (`seed ^ 0xFA17`), never from the simulator's main stream, and each
//! draw is guarded by its own rate — a knob left at zero draws nothing.
//! With [`FaultConfig::none()`] the injector is not even constructed, so
//! a zero-rate run is bit-identical to one without the subsystem.

use dssd_kernel::{Rng, SimSpan};

/// Outcome of the per-read-group fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// No injected fault; the wear model's RBER decides the verdict.
    None,
    /// A transient raw-bit-error burst (read disturb, retention): the
    /// page fails its first decode but a re-read at a shifted reference
    /// voltage may recover it.
    Transient,
    /// A hard media failure: no number of retries will recover the page,
    /// and its block must be retired.
    Hard,
}

/// Fault-injection rates and failure-handling knobs.
///
/// All rates are per-event probabilities in `[0, 1]`: reads and programs
/// draw once per die group (the scheduling unit of the pipeline), erases
/// once per erase block, the fNoC once per injected packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a read group suffers a transient, retryable
    /// decode failure.
    pub read_transient_prob: f64,
    /// Probability that a read group hits a hard media failure that
    /// retries cannot recover.
    pub read_hard_prob: f64,
    /// Probability that one retry of a transient failure recovers the
    /// data (each retry draws independently).
    pub retry_success_prob: f64,
    /// Retry budget before a read is declared uncorrectable.
    pub max_read_retries: u32,
    /// Sense-latency escalation per retry: attempt `n` costs
    /// `read_latency * retry_latency_factor^n` (deeper reference-voltage
    /// sweeps take longer).
    pub retry_latency_factor: f64,
    /// Probability that a program group reports a program failure.
    pub program_fail_prob: f64,
    /// Allocation attempts per write group before the request is failed.
    pub max_program_attempts: u32,
    /// Probability that an erase block fails its erase at GC time.
    pub erase_fail_prob: f64,
    /// Probability that an fNoC packet hits a degraded link and must be
    /// re-serialized after a timeout.
    pub noc_degrade_prob: f64,
    /// The timeout added before a degraded packet is re-injected.
    pub noc_degrade_latency: SimSpan,
}

impl FaultConfig {
    /// All injection rates zero: the injector is never constructed and
    /// the simulation behaves bit-identically to one without the fault
    /// subsystem.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            read_transient_prob: 0.0,
            read_hard_prob: 0.0,
            retry_success_prob: 0.75,
            max_read_retries: 4,
            retry_latency_factor: 1.5,
            program_fail_prob: 0.0,
            max_program_attempts: 3,
            erase_fail_prob: 0.0,
            noc_degrade_prob: 0.0,
            noc_degrade_latency: SimSpan::from_us(10),
        }
    }

    /// True if any injection rate is nonzero — the gate for constructing
    /// a [`FaultInjector`] at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.read_transient_prob > 0.0
            || self.read_hard_prob > 0.0
            || self.program_fail_prob > 0.0
            || self.erase_fail_prob > 0.0
            || self.noc_degrade_prob > 0.0
    }

    /// First validation error, if any.
    #[must_use]
    pub fn validate(&self) -> Option<String> {
        let rates = [
            ("fault read_transient_prob", self.read_transient_prob),
            ("fault read_hard_prob", self.read_hard_prob),
            ("fault retry_success_prob", self.retry_success_prob),
            ("fault program_fail_prob", self.program_fail_prob),
            ("fault erase_fail_prob", self.erase_fail_prob),
            ("fault noc_degrade_prob", self.noc_degrade_prob),
        ];
        for (name, p) in rates {
            if !(0.0..=1.0).contains(&p) {
                return Some(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.read_transient_prob + self.read_hard_prob > 1.0 {
            return Some("fault read probabilities must sum to <= 1".into());
        }
        if self.retry_latency_factor < 1.0 {
            return Some(format!(
                "fault retry_latency_factor must be >= 1, got {}",
                self.retry_latency_factor
            ));
        }
        if self.max_program_attempts == 0 {
            return Some("fault max_program_attempts must be >= 1".into());
        }
        None
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// The per-simulation fault source: a [`FaultConfig`] plus a dedicated
/// RNG stream. Every decision method guards its draw behind the
/// corresponding rate, so enabling one fault class does not perturb the
/// outcome sequence of another.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Rng,
}

/// XOR'd into the seed so fault draws never share a stream with wear,
/// remaps, or workload generation.
const FAULT_STREAM: u64 = 0xFA17;

impl FaultInjector {
    /// Creates an injector drawing from `seed`'s dedicated fault stream.
    #[must_use]
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector { config, rng: Rng::new(seed ^ FAULT_STREAM) }
    }

    /// The injection configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decomposes the injector into its config and raw RNG state so a
    /// snapshot can serialize the fault stream position exactly.
    #[must_use]
    pub fn to_parts(&self) -> (FaultConfig, [u64; 4], Option<f64>) {
        let (state, gauss) = self.rng.to_parts();
        (self.config, state, gauss)
    }

    /// Rebuilds an injector from [`FaultInjector::to_parts`] output. The
    /// restored stream continues bit-identically from the capture point.
    #[must_use]
    pub fn from_parts(config: FaultConfig, state: [u64; 4], gauss_cache: Option<f64>) -> Self {
        FaultInjector { config, rng: Rng::from_parts(state, gauss_cache) }
    }

    /// Digest of the fault stream position. Changes iff a draw was
    /// consumed, so zero-rate decision calls leave it untouched.
    #[must_use]
    pub fn stream_digest(&self) -> u64 {
        self.rng.state_digest()
    }

    /// Draws the fault class for one read group. Hard failures are drawn
    /// first so `read_hard_prob` is an absolute rate, not conditional on
    /// surviving the transient draw.
    pub fn read_outcome(&mut self) -> ReadFault {
        if self.config.read_hard_prob > 0.0 && self.rng.chance(self.config.read_hard_prob) {
            return ReadFault::Hard;
        }
        if self.config.read_transient_prob > 0.0
            && self.rng.chance(self.config.read_transient_prob)
        {
            return ReadFault::Transient;
        }
        ReadFault::None
    }

    /// Whether one retry of a transient failure recovers the data.
    pub fn retry_recovers(&mut self) -> bool {
        self.config.retry_success_prob > 0.0 && self.rng.chance(self.config.retry_success_prob)
    }

    /// Whether one program group fails.
    pub fn program_fails(&mut self) -> bool {
        self.config.program_fail_prob > 0.0 && self.rng.chance(self.config.program_fail_prob)
    }

    /// Whether one erase block fails its erase.
    pub fn erase_fails(&mut self) -> bool {
        self.config.erase_fail_prob > 0.0 && self.rng.chance(self.config.erase_fail_prob)
    }

    /// Whether one fNoC packet hits a degraded link.
    pub fn noc_degrades(&mut self) -> bool {
        self.config.noc_degrade_prob > 0.0 && self.rng.chance(self.config.noc_degrade_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_valid() {
        let c = FaultConfig::none();
        assert!(!c.enabled());
        assert!(c.validate().is_none());
        assert_eq!(c, FaultConfig::default());
    }

    #[test]
    fn any_nonzero_rate_enables() {
        for set in [
            |c: &mut FaultConfig| c.read_transient_prob = 0.1,
            |c: &mut FaultConfig| c.read_hard_prob = 0.1,
            |c: &mut FaultConfig| c.program_fail_prob = 0.1,
            |c: &mut FaultConfig| c.erase_fail_prob = 0.1,
            |c: &mut FaultConfig| c.noc_degrade_prob = 0.1,
        ] {
            let mut c = FaultConfig::none();
            set(&mut c);
            assert!(c.enabled());
            assert!(c.validate().is_none());
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut c = FaultConfig::none();
        c.read_transient_prob = 1.5;
        assert!(c.validate().is_some());

        let mut c = FaultConfig::none();
        c.read_transient_prob = 0.6;
        c.read_hard_prob = 0.6;
        assert!(c.validate().is_some());

        let mut c = FaultConfig::none();
        c.retry_latency_factor = 0.5;
        assert!(c.validate().is_some());

        let mut c = FaultConfig::none();
        c.max_program_attempts = 0;
        assert!(c.validate().is_some());
    }

    #[test]
    fn outcomes_are_deterministic_per_seed() {
        let mut cfg = FaultConfig::none();
        cfg.read_transient_prob = 0.3;
        cfg.read_hard_prob = 0.05;
        cfg.program_fail_prob = 0.1;
        let mut a = FaultInjector::new(cfg, 99);
        let mut b = FaultInjector::new(cfg, 99);
        for _ in 0..1000 {
            assert_eq!(a.read_outcome(), b.read_outcome());
            assert_eq!(a.program_fails(), b.program_fails());
            assert_eq!(a.retry_recovers(), b.retry_recovers());
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut cfg = FaultConfig::none();
        cfg.read_transient_prob = 0.2;
        cfg.read_hard_prob = 0.05;
        let mut inj = FaultInjector::new(cfg, 7);
        let (mut t, mut h) = (0u32, 0u32);
        for _ in 0..10_000 {
            match inj.read_outcome() {
                ReadFault::Transient => t += 1,
                ReadFault::Hard => h += 1,
                ReadFault::None => {}
            }
        }
        // Transient rate is conditional on not drawing hard: ~0.19.
        assert!((1500..2500).contains(&t), "transient {t}");
        assert!((300..800).contains(&h), "hard {h}");
    }

    #[test]
    fn zero_rate_knobs_draw_nothing() {
        // With every rate zero, no method touches the RNG — two injectors
        // stay in lockstep even if one is "used" heavily.
        let mut cfg = FaultConfig::none();
        cfg.retry_success_prob = 0.0;
        let mut a = FaultInjector::new(cfg, 3);
        let b = FaultInjector::new(cfg, 3);
        for _ in 0..100 {
            assert_eq!(a.read_outcome(), ReadFault::None);
            assert!(!a.program_fails());
            assert!(!a.erase_fails());
            assert!(!a.noc_degrades());
            assert!(!a.retry_recovers());
        }
        // Identical internal state: same next draw after re-enabling.
        let mut a2 = a;
        let mut b2 = b;
        a2.config.read_hard_prob = 1.0;
        b2.config.read_hard_prob = 1.0;
        assert_eq!(a2.read_outcome(), b2.read_outcome());
    }
}
