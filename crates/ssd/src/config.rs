//! SSD configuration: Table 1 parameters and the Table 2 architectures.

use crate::faults::FaultConfig;
use dssd_ctrl::EccConfig;
use dssd_flash::{FlashGeometry, FlashTiming};
use dssd_ftl::FtlConfig;
use dssd_kernel::{SimSpan, SimTime};
use dssd_noc::{NocConfig, TopologyKind};

/// The five architectural configurations compared in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Conventional SSD with parallel GC (PaGC).
    Baseline,
    /// `BW`: Baseline with the extra on-chip bandwidth given to the
    /// system bus.
    ExtraBandwidth,
    /// `dSSD`: decoupled controllers; copybacks cross the (widened,
    /// shared) system bus once, controller-to-controller.
    Dssd,
    /// `dSSD_b`: decoupled controllers with a separate dedicated bus
    /// interconnecting the flash controllers.
    DssdBus,
    /// `dSSD_f`: decoupled controllers interconnected by the fNoC.
    DssdFnoc,
}

impl Architecture {
    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Baseline => "Baseline",
            Architecture::ExtraBandwidth => "BW",
            Architecture::Dssd => "dSSD",
            Architecture::DssdBus => "dSSD_b",
            Architecture::DssdFnoc => "dSSD_f",
        }
    }

    /// All five, in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Architecture; 5] {
        [
            Architecture::Baseline,
            Architecture::ExtraBandwidth,
            Architecture::Dssd,
            Architecture::DssdBus,
            Architecture::DssdFnoc,
        ]
    }

    /// True for the three decoupled-controller variants.
    #[must_use]
    pub fn is_decoupled(self) -> bool {
        matches!(
            self,
            Architecture::Dssd | Architecture::DssdBus | Architecture::DssdFnoc
        )
    }
}

/// Online dynamic-superblock management (Sec 5) inside the event
/// simulator: every erase charges accelerated wear to the victim's
/// sub-blocks; a worn sub-block either kills its superblock (conventional
/// bad-superblock management) or — on the decoupled architectures — is
/// silently replaced by a recycled block through the controller's
/// SRT/RBT, with the replacement's channel/die conflicts visible in the
/// timing (the same mechanism Fig 15a measures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicSbConfig {
    /// SRT capacity per controller.
    pub srt_entries: usize,
    /// Fraction of superblocks provisioned as reserved recycled blocks
    /// (0.0 = plain RECYCLED behaviour).
    pub reserved_fraction: f64,
    /// Mean block P/E limit.
    pub pe_mean: f64,
    /// P/E limit standard deviation.
    pub pe_sigma: f64,
    /// P/E cycles charged per physical erase — an accelerated-aging
    /// knob so wear-out events occur within millisecond-scale windows.
    pub wear_acceleration: u32,
}

impl Default for DynamicSbConfig {
    fn default() -> Self {
        DynamicSbConfig {
            srt_entries: 1024,
            reserved_fraction: 0.0,
            pe_mean: 5578.0,
            pe_sigma: 826.9,
            wear_acceleration: 1,
        }
    }
}

/// Periodic WAS endurance-scan traffic (the Fig 14c overhead model):
/// every `interval`, one page read per tracked block is pushed through
/// the normal read path, contending with host I/O on the system bus and
/// DRAM exactly as the software approach must.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WasScanConfig {
    /// Blocks whose RBER state is refreshed per pass.
    pub tracked_blocks: u64,
    /// Time between passes.
    pub interval: SimSpan,
}

/// FTL metadata durability model knobs (crash consistency; see
/// `dssd_ftl::meta`). Off by default: without it the mapping lives in
/// (free) simulated DRAM and no journal/checkpoint traffic is charged,
/// keeping runs bit-identical to the pre-durability simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Mapping-journal entries per flash journal page; the volatile
    /// journal buffer flushes (one charged page program) when it fills.
    pub journal_entries_per_page: u32,
    /// Data-page programs between full L2P checkpoint flushes
    /// (0 = only the mount baseline).
    pub checkpoint_interval_pages: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            journal_entries_per_page: 256,
            checkpoint_interval_pages: 0,
        }
    }
}

/// Deterministic power-loss injection. All knobs zero ([`PowerLossConfig
/// ::none()`]) means power never fails and no RNG stream is constructed,
/// so runs stay bit-identical to the pre-power-loss simulator.
///
/// Stream discipline matches the fault injector: the loss instant drawn
/// for `mean_time_to_loss` comes from a dedicated stream
/// (`seed ^ 0x504C`), never from the simulator's main stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLossConfig {
    /// Cut power at this exact instant (ZERO = disabled).
    pub at: SimTime,
    /// Cut power after this many delivered events (0 = disabled).
    pub at_event: u64,
    /// Draw the loss instant from an exponential with this mean
    /// (ZERO = disabled).
    pub mean_time_to_loss: SimSpan,
}

impl PowerLossConfig {
    /// Power never fails.
    #[must_use]
    pub fn none() -> Self {
        PowerLossConfig {
            at: SimTime::ZERO,
            at_event: 0,
            mean_time_to_loss: SimSpan::ZERO,
        }
    }

    /// True if any injection mode is armed.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.at > SimTime::ZERO || self.at_event > 0 || !self.mean_time_to_loss.is_zero()
    }
}

/// Full simulator configuration.
///
/// Presets encode Table 1; the `scaled_*` variants shrink per-plane block
/// count so GC-heavy experiments run in seconds (the paper itself
/// simplifies the SSD size for the superblock evaluation, footnote 10 —
/// we document the same trick here for the performance experiments; all
/// per-page timing is unchanged, so bandwidth and latency shapes are
/// preserved while total capacity shrinks).
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Which Table 2 architecture to build.
    pub architecture: Architecture,
    /// Flash organization.
    pub geometry: FlashGeometry,
    /// Flash timing (ULL or TLC).
    pub timing: FlashTiming,
    /// Per-channel flash bus bandwidth (Table 1: 1 GB/s).
    pub flash_bus_bytes_per_sec: u64,
    /// Base system-bus bandwidth (Table 1: 8 GB/s, the aggregate of all
    /// flash channels).
    pub system_bus_base_bytes_per_sec: u64,
    /// DRAM bandwidth (Table 1: 8 GB/s).
    pub dram_bytes_per_sec: u64,
    /// Extra on-chip bandwidth factor for the non-baseline configs
    /// (Sec 6.1: "all of the other architecture configurations compared
    /// have 1.25× extra on-chip bandwidth").
    pub onchip_bw_factor: f64,
    /// Per-bus-transaction overhead (arbitration/burst setup for
    /// streamed host DMA).
    pub bus_overhead: SimSpan,
    /// Additional per-page management overhead for *firmware-shepherded*
    /// GC copies in the conventional architectures: the FTL issues and
    /// tracks every scattered 4 KB page individually through the system
    /// bus and DRAM (descriptor setup, completion handling, mapping
    /// update). The decoupled architectures do not pay this on the data
    /// path — copy management is offloaded to the controller hardware,
    /// which is exactly the paper's offloading argument.
    pub gc_page_overhead: SimSpan,
    /// FTL configuration.
    pub ftl: FtlConfig,
    /// ECC engine configuration.
    pub ecc: EccConfig,
    /// fNoC configuration (used by `DssdFnoc`; terminals must equal
    /// `geometry.channels`). A link bandwidth of 0 means "derive from the
    /// dedicated on-chip budget" (bisection normalization); any non-zero
    /// value is respected as-is.
    pub noc: NocConfig,
    /// Decoupled-buffer capacity per controller, in pages (the paper's
    /// two 32 KB dBUFs = 16 ULL pages).
    pub dbuf_pages: usize,
    /// Number of *active* timing-level SRT remappings to inject for the
    /// dynamic-superblock overhead experiments (Fig 15a); 0 disables.
    pub srt_active_remaps: usize,
    /// Optional periodic WAS endurance-scan traffic (Fig 14c).
    pub was_scan: Option<WasScanConfig>,
    /// Optional online dynamic-superblock management (Sec 5).
    pub dynamic_sb: Option<DynamicSbConfig>,
    /// Optional DRAM write-back buffer cache, in pages (Sec 2.1's
    /// "significant fraction of DRAM is used as a write-buffer cache").
    /// `None` disables caching: every request goes to flash (plus the
    /// workload-level `dram_hit` modeling used by the Fig 10a scenario).
    pub write_cache_pages: Option<usize>,
    /// Free-superblock level the prefill leaves behind (defaults to the
    /// GC trigger threshold, so the first write burst starts GC).
    pub prefill_target_free: usize,
    /// Fraction of logical pages trimmed by the prefill so GC has
    /// steady-state work (Sec 6.1: "some random fraction of the pages
    /// are invalidated such that garbage collection will be triggered").
    pub prefill_invalid_fraction: f64,
    /// Deterministic in-band fault injection ([`FaultConfig::none()`] by
    /// default: no faults, and the injector is never constructed).
    pub faults: FaultConfig,
    /// Optional FTL metadata durability model (`None` = mapping
    /// persistence is free, as before this model existed).
    pub durability: Option<DurabilityConfig>,
    /// Deterministic power-loss injection (requires `durability`).
    pub power_loss: PowerLossConfig,
    /// When true, a GC round is always in flight (back-to-back rounds),
    /// modeling the paper's measurement regime for Figs 2/7/8/12/13:
    /// I/O fully utilizes the SSD *while GC is performed*, so GC demand
    /// is continuous rather than space-triggered. When false, GC runs
    /// only when the free pool is below the trigger threshold.
    pub gc_continuous: bool,
    /// Flash-side express path (on by default): provably-identical
    /// fast-forwarding of the event loop — analytic coalescing of
    /// uncontended flash leg chains, the NoC event burst loop, and the
    /// quiet-router sweep skip. Purely an execution strategy: results
    /// are byte-identical with it off (`--no-flash-express`), only wall
    /// clock changes.
    pub flash_express: bool,
    /// Event-queue shards for intra-run parallel execution (`--shards`).
    /// 1 = the single-queue engine, byte-for-byte unchanged. N > 1
    /// partitions the future-event list by ownership — flash channels,
    /// fNoC regions, central control — merged back in exact global
    /// `(time, rank, seq)` order, so results are byte-identical for any
    /// N; only which core does the queue work changes. Purely an
    /// execution strategy, like [`SsdConfig::flash_express`], and freely
    /// composable with it.
    pub shards: usize,
    /// Random seed.
    pub seed: u64,
}

impl SsdConfig {
    fn base(architecture: Architecture, geometry: FlashGeometry, timing: FlashTiming) -> Self {
        let channels = geometry.channels as usize;
        SsdConfig {
            architecture,
            geometry,
            timing,
            flash_bus_bytes_per_sec: 1_000_000_000,
            system_bus_base_bytes_per_sec: 8_000_000_000,
            dram_bytes_per_sec: 8_000_000_000,
            onchip_bw_factor: 1.25,
            bus_overhead: SimSpan::from_ns(100),
            gc_page_overhead: SimSpan::from_ns(700),
            ftl: FtlConfig::default(),
            ecc: EccConfig::default(),
            noc: NocConfig::new(TopologyKind::Mesh1D, channels).with_link_bandwidth(0),
            dbuf_pages: 16,
            srt_active_remaps: 0,
            was_scan: None,
            dynamic_sb: None,
            write_cache_pages: None,
            prefill_target_free: FtlConfig::default().gc_threshold_free,
            prefill_invalid_fraction: 0.5,
            faults: FaultConfig::none(),
            durability: None,
            power_loss: PowerLossConfig::none(),
            gc_continuous: false,
            flash_express: true,
            shards: 1,
            seed: 0x5D_D5,
        }
    }

    /// The full Table 1 ULL configuration (1 TB-class; large mapping
    /// tables — prefer [`SsdConfig::scaled_ull`] for experiments).
    #[must_use]
    pub fn table1_ull(architecture: Architecture) -> Self {
        Self::base(architecture, FlashGeometry::table1_ull(), FlashTiming::ull())
    }

    /// The Table 1 ULL configuration with per-plane blocks reduced
    /// 1384 → 48 and pages per block 384 → 96, and overprovision deepened
    /// 7 % → 20 % so the prefill can fragment the drive with a workable
    /// free pool (capacity-only scaling; per-page timing, channel counts
    /// and bus bandwidths are unchanged).
    #[must_use]
    pub fn scaled_ull(architecture: Architecture) -> Self {
        let mut geometry = FlashGeometry::table1_ull();
        geometry.blocks = 48;
        geometry.pages = 96;
        let mut c = Self::base(architecture, geometry, FlashTiming::ull());
        c.ftl.overprovision = 0.2;
        c.ftl.gc_threshold_free = 5;
        c.ftl.gc_hard_free = 2;
        c.prefill_target_free = 4;
        c
    }

    /// The Table 1 TLC configuration used for the superblock evaluation
    /// (8 channels × 4 ways × 2 dies × 2 planes, 32 pages/block, 16 KB).
    #[must_use]
    pub fn table1_tlc(architecture: Architecture) -> Self {
        let mut c = Self::base(architecture, FlashGeometry::table1_tlc(), FlashTiming::tlc());
        c.ftl.gc_threshold_free = 4;
        c.ftl.gc_hard_free = 2;
        c.prefill_target_free = 4;
        c
    }

    /// A miniature configuration for fast tests. Keeps the paper's full
    /// 8-channel × 8-way array (64 dies, ~26 GB/s of multi-plane write
    /// demand vs the 8 GB/s system bus) so bus contention — the effect
    /// under study — is present; only blocks and pages are shrunk.
    #[must_use]
    pub fn test_tiny(architecture: Architecture) -> Self {
        let mut geometry = FlashGeometry::table1_ull();
        geometry.blocks = 64;
        geometry.pages = 8;
        let mut c = Self::base(architecture, geometry, FlashTiming::ull());
        c.ftl.overprovision = 0.25;
        c.ftl.gc_threshold_free = 8;
        c.ftl.gc_hard_free = 3;
        c.prefill_target_free = 7;
        c
    }

    /// Effective system-bus bandwidth for this architecture: the baseline
    /// keeps the base bandwidth; `BW` and `dSSD` get the full widened
    /// bus; `dSSD_b`/`dSSD_f` keep the base bus and spend the extra
    /// budget on the dedicated interconnect.
    #[must_use]
    pub fn system_bus_bytes_per_sec(&self) -> u64 {
        let base = self.system_bus_base_bytes_per_sec;
        match self.architecture {
            Architecture::Baseline | Architecture::DssdBus | Architecture::DssdFnoc => base,
            Architecture::ExtraBandwidth | Architecture::Dssd => {
                (base as f64 * self.onchip_bw_factor) as u64
            }
        }
    }

    /// The extra on-chip budget spent on the dedicated interconnect:
    /// the `dSSD_b` bus bandwidth, and the `dSSD_f` bisection bandwidth.
    #[must_use]
    pub fn dedicated_budget_bytes_per_sec(&self) -> u64 {
        ((self.onchip_bw_factor - 1.0).max(0.0) * self.system_bus_base_bytes_per_sec as f64)
            as u64
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the on-chip bandwidth factor (the Fig 8 sweep).
    #[must_use]
    pub fn with_onchip_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "on-chip factor below baseline");
        self.onchip_bw_factor = factor;
        self
    }

    /// Sets the event-queue shard count (see [`SsdConfig::shards`]).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Simulation-start reference (always zero; exists for readability at
    /// call sites).
    #[must_use]
    pub fn start(&self) -> SimTime {
        SimTime::ZERO
    }

    /// Validates internal consistency, returning a description of the
    /// first problem found. [`SsdSim::new`](crate::SsdSim::new) calls
    /// this and panics with the message; call it yourself to fail softly.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the configuration cannot be
    /// simulated.
    pub fn validate(&self) -> Result<(), String> {
        let g = &self.geometry;
        if g.channels == 0 || g.ways == 0 || g.dies == 0 || g.planes == 0 {
            return Err("geometry has an empty dimension".into());
        }
        if g.blocks < 4 {
            return Err(format!(
                "{} superblocks is too few (need >= 4: two active plus a pool)",
                g.blocks
            ));
        }
        if self.flash_bus_bytes_per_sec == 0
            || self.system_bus_base_bytes_per_sec == 0
            || self.dram_bytes_per_sec == 0
        {
            return Err("bus/DRAM bandwidth must be non-zero".into());
        }
        if self.onchip_bw_factor < 1.0 {
            return Err(format!(
                "on-chip bandwidth factor {} is below the baseline",
                self.onchip_bw_factor
            ));
        }
        if self.architecture == Architecture::DssdFnoc
            && self.noc.terminals != g.channels as usize
        {
            return Err(format!(
                "fNoC has {} terminals but the SSD has {} channels",
                self.noc.terminals, g.channels
            ));
        }
        if self.ftl.gc_hard_free > self.ftl.gc_threshold_free {
            return Err("GC hard threshold exceeds the trigger threshold".into());
        }
        if !(0.0..1.0).contains(&self.ftl.overprovision) {
            return Err("overprovision must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.prefill_invalid_fraction)
            || self.prefill_invalid_fraction >= 1.0
        {
            return Err("prefill invalid fraction must be in [0, 1)".into());
        }
        if self.dbuf_pages == 0 {
            return Err("dBUF needs at least one page".into());
        }
        if let Some(d) = self.dynamic_sb {
            if d.pe_mean <= 0.0 || d.pe_sigma < 0.0 {
                return Err("dynamic-superblock wear distribution is degenerate".into());
            }
            if d.srt_entries == 0 {
                return Err("SRT needs at least one entry".into());
            }
        }
        if self.write_cache_pages == Some(0) {
            return Err("write cache needs capacity".into());
        }
        if let Some(e) = self.faults.validate() {
            return Err(e);
        }
        if let Some(d) = self.durability {
            if d.journal_entries_per_page == 0 {
                return Err("journal needs at least one entry per page".into());
            }
            if self.write_cache_pages.is_some() {
                return Err(
                    "durability model assumes no volatile write-back cache \
                     (acks from DRAM could never be made durable)"
                        .into(),
                );
            }
        }
        if self.power_loss.enabled() && self.durability.is_none() {
            return Err("power-loss injection requires the durability model".into());
        }
        if self.shards == 0 {
            return Err("shard count must be at least 1".into());
        }
        if self.shards > 64 {
            return Err(format!(
                "{} shards exceeds the supported maximum of 64",
                self.shards
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = Architecture::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["Baseline", "BW", "dSSD", "dSSD_b", "dSSD_f"]);
    }

    #[test]
    fn bandwidth_budget_split() {
        for arch in Architecture::all() {
            let c = SsdConfig::scaled_ull(arch);
            let sys = c.system_bus_bytes_per_sec();
            match arch {
                Architecture::Baseline => {
                    assert_eq!(sys, 8_000_000_000);
                }
                Architecture::ExtraBandwidth | Architecture::Dssd => {
                    assert_eq!(sys, 10_000_000_000);
                }
                Architecture::DssdBus | Architecture::DssdFnoc => {
                    assert_eq!(sys, 8_000_000_000);
                    assert_eq!(c.dedicated_budget_bytes_per_sec(), 2_000_000_000);
                }
            }
        }
    }

    #[test]
    fn table1_presets() {
        let c = SsdConfig::table1_ull(Architecture::Baseline);
        assert_eq!(c.geometry.channels, 8);
        assert_eq!(c.geometry.planes, 8);
        assert_eq!(c.flash_bus_bytes_per_sec, 1_000_000_000);
        let t = SsdConfig::table1_tlc(Architecture::Baseline);
        assert_eq!(t.geometry.page_bytes, 16384);
        assert_eq!(t.geometry.pages, 32);
    }

    #[test]
    fn scaled_preserves_timing_and_channels() {
        let full = SsdConfig::table1_ull(Architecture::DssdFnoc);
        let scaled = SsdConfig::scaled_ull(Architecture::DssdFnoc);
        assert_eq!(full.timing, scaled.timing);
        assert_eq!(full.geometry.channels, scaled.geometry.channels);
        assert_eq!(full.geometry.planes, scaled.geometry.planes);
        assert!(scaled.geometry.total_pages() < full.geometry.total_pages() / 20);
    }

    #[test]
    fn decoupled_predicate() {
        assert!(!Architecture::Baseline.is_decoupled());
        assert!(!Architecture::ExtraBandwidth.is_decoupled());
        assert!(Architecture::Dssd.is_decoupled());
        assert!(Architecture::DssdBus.is_decoupled());
        assert!(Architecture::DssdFnoc.is_decoupled());
    }

    #[test]
    fn validate_accepts_presets() {
        for arch in Architecture::all() {
            SsdConfig::test_tiny(arch).validate().unwrap();
            SsdConfig::scaled_ull(arch).validate().unwrap();
            SsdConfig::table1_tlc(arch).validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_inconsistencies() {
        let mut c = SsdConfig::test_tiny(Architecture::DssdFnoc);
        c.noc.terminals = 3;
        assert!(c.validate().unwrap_err().contains("terminals"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.geometry.channels = 0;
        assert!(c.validate().unwrap_err().contains("empty dimension"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.ftl.gc_hard_free = 99;
        assert!(c.validate().unwrap_err().contains("threshold"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.write_cache_pages = Some(0);
        assert!(c.validate().unwrap_err().contains("cache"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.dbuf_pages = 0;
        assert!(c.validate().unwrap_err().contains("dBUF"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.faults.read_hard_prob = 2.0;
        assert!(c.validate().unwrap_err().contains("fault"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.power_loss.at = SimTime::from_us(50);
        assert!(c.validate().unwrap_err().contains("durability"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.durability = Some(DurabilityConfig { journal_entries_per_page: 0, ..Default::default() });
        assert!(c.validate().unwrap_err().contains("journal"));

        let mut c = SsdConfig::test_tiny(Architecture::Baseline);
        c.durability = Some(DurabilityConfig::default());
        c.write_cache_pages = Some(64);
        assert!(c.validate().unwrap_err().contains("write-back cache"));
    }

    #[test]
    fn durability_with_power_loss_validates() {
        let mut c = SsdConfig::test_tiny(Architecture::DssdFnoc);
        c.durability = Some(DurabilityConfig::default());
        c.power_loss.mean_time_to_loss = SimSpan::from_us(500);
        c.validate().unwrap();
        assert!(c.power_loss.enabled());
        assert!(!PowerLossConfig::none().enabled());
    }

    #[test]
    #[should_panic(expected = "below baseline")]
    fn sub_unity_factor_rejected() {
        let _ = SsdConfig::scaled_ull(Architecture::Baseline).with_onchip_factor(0.5);
    }
}
