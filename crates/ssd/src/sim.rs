//! The event-driven SSD world.
//!
//! One flat struct owns every component; one event enum drives every
//! pipeline. Resources (buses, DRAM, dies, ECC) are passive analytic
//! servers from `dssd-kernel`, so each pipeline stage computes its own
//! completion time and schedules exactly one event for the next stage.

use std::collections::{BTreeMap, VecDeque};

use dssd_ctrl::{CommandId, CommandKind, CommandQueue, DecoupledController, EccVerdict};
use dssd_flash::{DieGrid, EraseOutcome, FlashOp, FlashOpKind, PageAddr, WearModel};
use dssd_ftl::{AllocGroup, CopyGroup, Ftl, GcRound, Lpn, MetaStats, META_NO_TICKET};
use dssd_kernel::{
    BandwidthServer, EventQueue, Rng, ShardedQueue, SimSpan, SimTime, Slab, SlabKey, ARRIVAL_RANK,
    DEFAULT_RANK,
};
use dssd_noc::{Network, NocEvent, Packet};
use dssd_telemetry::{Class, EpochSeries, Stage, TraceConfig, Tracer, Track};
use dssd_workload::{Op, Request, SyntheticWorkload};

use crate::cache::WriteCache;
use crate::faults::{FaultInjector, ReadFault};
use crate::metrics::{RunReport, StageKind};
use crate::shard::ShardPlan;
use crate::{Architecture, SsdConfig};

/// Traffic class for host I/O on the shared servers.
const CLASS_IO: usize = 0;
/// Traffic class for GC / copyback traffic.
const CLASS_GC: usize = 1;
/// Traffic class for WAS endurance-scan traffic.
const CLASS_SCAN: usize = 2;
/// Traffic class for FTL metadata traffic (mapping-journal flushes and
/// L2P checkpoints) when the durability model is enabled.
const CLASS_META: usize = 3;

/// Maximum GC copy groups in flight per source channel. PaGC executes
/// GC in parallel across all flash (its copy bursts are what interfere
/// with I/O), so the cap is high; the real throttle is resource
/// contention, not the issue rate.
const GC_PER_CHANNEL_INFLIGHT: usize = 16;
/// Maximum concurrent WAS scan reads.
const SCAN_INFLIGHT: usize = 128;

type ReqId = SlabKey;
type JobId = SlabKey;

/// Why [`SsdSim::run_events`] / [`SsdSim::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// The step limit (or target instant) stopped the run; more events
    /// are pending.
    Paused,
    /// Injected or forced power loss ended the run.
    Halted,
    /// The run reached its horizon (or the event queue drained).
    Done,
}

/// One completed host request, as observed by an embedding front-end via
/// [`SsdSim::take_completions`]. The `tag` is the zero-based index of
/// the request in start order, which — because the event queue delivers
/// arrivals in injection order — equals its injection order, letting a
/// front-end correlate completions with its own submissions without
/// widening the event enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Zero-based start-order (= injection-order) index of the request.
    pub tag: u64,
    /// Completion instant.
    pub at: SimTime,
    /// The request completed but lost data (media failure).
    pub failed: bool,
}

#[derive(Debug, Clone)]
struct ReqState {
    op: Op,
    arrived: SimTime,
    /// Start-order index, reported in [`Completion`]s.
    tag: u64,
    pages_left: u32,
    total_pages: u32,
    spans: Vec<(StageKind, SimSpan)>,
    /// The request completed but lost data (read retries or program
    /// attempts exhausted) — surfaced to the host as a failure.
    failed: bool,
    /// Durability-model tickets of this request's write groups; redeemed
    /// (ack or discard) when the request completes. Empty when the model
    /// is disabled.
    tickets: Vec<u32>,
}

#[derive(Debug, Clone)]
struct CopyJob {
    /// `(lpn, src, dst)` triples; all sources on one die/row, all
    /// destinations on one die/row.
    pages: Vec<(Lpn, PageAddr, PageAddr)>,
    src: PageAddr,
    dst: PageAddr,
    spans: Vec<(StageKind, SimSpan)>,
    /// Outstanding fNoC packets for this job.
    packets_in_flight: u32,
    /// Whether a source-side dBUF reservation is held.
    holds_src_dbuf: bool,
    /// The copyback command tracking this job in the source controller's
    /// command queue.
    cmd: CommandId,
}

#[derive(Debug, Clone)]
struct GcState {
    round: GcRound,
    pending: VecDeque<CopyGroup>,
    copies_done: usize,
    copies_expected: usize,
    erases_outstanding: usize,
    /// In-flight copy jobs per source channel, indexed by channel number.
    /// A flat `Vec` (not a hash map) so scheduling never observes
    /// iteration-order effects.
    channel_inflight: Vec<usize>,
    /// A retirement round: on completion the victim superblock is
    /// permanently retired instead of recycled into the free pool.
    retiring: bool,
}

/// One host read group in flight: enough context for the ECC stage to
/// classify the decode and for read-retries to re-sense the same die.
#[derive(Debug, Clone, Copy)]
struct ReadLeg {
    req: ReqId,
    pages: u32,
    /// Effective (post-SRT-remap) channel, for bus and ECC routing.
    channel: u32,
    /// Effective die index, for retry re-senses.
    die: usize,
    /// Representative logical address of the group (pre-remap, so fault
    /// bookkeeping resolves through the SRT like every other path).
    addr: PageAddr,
    /// 0 on the first sense; incremented per read-retry.
    attempt: u32,
    /// Hard failure (injected media fault or worn-out block): retries
    /// cannot recover it.
    hard: bool,
}

/// One host write group in flight, with enough context to re-allocate
/// and re-issue it if the program fails.
#[derive(Debug, Clone)]
struct WriteLeg {
    req: ReqId,
    die: usize,
    pages: u32,
    /// Effective (post-SRT-remap) channel, for flash-bus routing.
    channel: u32,
    /// The group's logical first address (pre-remap).
    addr: PageAddr,
    /// The group's LPNs, carried only when fault injection is enabled (a
    /// failed program re-allocates them through `Ftl::write_pages`).
    lpns: Option<Vec<Lpn>>,
    /// 1 on the first program; incremented per re-allocation.
    attempt: u32,
    /// Durability-model ticket for this group
    /// ([`dssd_ftl::META_NO_TICKET`] when the model is disabled).
    ticket: u32,
}

#[derive(Debug, Clone)]
enum Ev {
    /// Closed-loop admission refill.
    Admit,
    /// Open-loop trace arrival.
    Arrive(Request),
    /// Host write group reached the controller (system bus done).
    WriteAtCtrl { leg: Box<WriteLeg> },
    /// Host write group transferred over the flash bus.
    WriteAtDie { leg: Box<WriteLeg> },
    /// Host write group programmed.
    WriteDone { req: ReqId, pages: u32 },
    /// Host read group: die read finished.
    ReadAtBus { leg: Box<ReadLeg> },
    /// Host read group: flash bus transfer finished.
    ReadAtEcc { leg: Box<ReadLeg> },
    /// Host read group: ECC finished.
    ReadAtSysbus { req: ReqId, pages: u32 },
    /// Host read group: system-bus crossing finished.
    ReadDone { req: ReqId, pages: u32 },
    /// DRAM-hit request: system-bus crossing finished.
    DramHitAtDram { req: ReqId, pages: u32 },
    /// DRAM-hit request: DRAM access finished.
    DramHitDone { req: ReqId, pages: u32 },
    /// GC copy: source die read finished.
    CopyAtSrcBus { job: JobId },
    /// GC copy: source flash bus transfer finished.
    CopyAtEcc { job: JobId },
    /// GC copy: ECC check finished; route to transport.
    CopyTransport { job: JobId },
    /// GC copy: baseline path, bus crossing into DRAM finished.
    CopyAtDram { job: JobId },
    /// GC copy: baseline path, DRAM staging finished.
    CopyFromDram { job: JobId },
    /// GC copy: arrived at the destination controller.
    CopyAtDstBus { job: JobId },
    /// GC copy: destination flash bus transfer finished.
    CopyAtDstDie { job: JobId },
    /// GC copy: destination program finished.
    CopyDone { job: JobId },
    /// One die's (multi-plane) erase for the active round finished.
    EraseDone,
    /// fNoC internal event.
    Noc(NocEvent),
    /// Re-injection of a packet delayed by an injected link degradation.
    NocRetry { pkt: Box<Packet> },
    /// WAS endurance scan pass begins.
    ScanTick,
    /// One WAS scan read completed its die+bus pipeline.
    ScanReadDone,
}

/// The simulator's future-event list: the single calendar queue (the
/// reference engine, `--shards 1`, byte-for-byte the pre-sharding code
/// path), or the sharded engine, which spreads events across per-shard
/// queues by home resource ([`ShardPlan`]) and merges them back in
/// exact global `(time, rank, seq)` order. Keys are minted from one
/// shared counter at push time, so the merged pop order *is* the
/// single-queue pop order — every consumer below is oblivious to which
/// engine is running, and results are identical for every shard count.
#[derive(Debug, Clone)]
enum SimQueue {
    Single(EventQueue<Ev>),
    Sharded {
        queue: ShardedQueue<Ev>,
        plan: ShardPlan,
    },
}

impl SimQueue {
    fn new(config: &SsdConfig) -> Self {
        if config.shards <= 1 {
            SimQueue::Single(EventQueue::new())
        } else {
            SimQueue::Sharded {
                queue: ShardedQueue::new(config.shards),
                plan: ShardPlan::new(config),
            }
        }
    }

    /// The home shard of `ev`: channel-leg events live with their
    /// channel's block, fNoC events with their router's region, and
    /// everything centrally-homed (host interface, system bus, DRAM,
    /// FTL, GC jobs in their central stages) round-robins. Placement
    /// only balances load across shards — it can never reorder events,
    /// because the merge is a total order over global keys.
    fn classify(plan: &mut ShardPlan, ev: &Ev) -> usize {
        match ev {
            Ev::WriteAtCtrl { leg } | Ev::WriteAtDie { leg } => plan.shard_of_channel(leg.channel),
            Ev::ReadAtBus { leg } | Ev::ReadAtEcc { leg } => plan.shard_of_channel(leg.channel),
            Ev::Noc(nev) => match nev {
                NocEvent::FlitArrive { node, .. }
                | NocEvent::OutputFree { node, .. }
                | NocEvent::Credit { node, .. }
                | NocEvent::Eject { node, .. } => plan.shard_of_node(*node as usize),
                // Express reservations have no single router home.
                NocEvent::ExpressDone { .. } | NocEvent::ExpressResolve { .. } => {
                    plan.next_central()
                }
            },
            Ev::NocRetry { pkt } => plan.shard_of_node(pkt.src),
            _ => plan.next_central(),
        }
    }

    fn push(&mut self, t: SimTime, ev: Ev) {
        match self {
            SimQueue::Single(q) => q.push(t, ev),
            SimQueue::Sharded { queue, plan } => {
                let shard = Self::classify(plan, &ev);
                queue.push(shard, t, DEFAULT_RANK, ev);
            }
        }
    }

    fn push_ranked(&mut self, t: SimTime, rank: u8, ev: Ev) {
        match self {
            SimQueue::Single(q) => q.push_ranked(t, rank, ev),
            SimQueue::Sharded { queue, plan } => {
                let shard = Self::classify(plan, &ev);
                queue.push(shard, t, rank, ev);
            }
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            SimQueue::Single(q) => q.pop(),
            SimQueue::Sharded { queue, .. } => queue.pop(),
        }
    }

    fn pop_if(&mut self, pred: impl FnOnce(SimTime, &Ev) -> bool) -> Option<(SimTime, Ev)> {
        match self {
            SimQueue::Single(q) => q.pop_if(pred),
            SimQueue::Sharded { queue, .. } => queue.pop_if(pred),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            SimQueue::Single(q) => q.peek_time(),
            SimQueue::Sharded { queue, .. } => queue.peek_time(),
        }
    }

    fn delivered(&self) -> u64 {
        match self {
            SimQueue::Single(q) => q.delivered(),
            SimQueue::Sharded { queue, .. } => queue.delivered(),
        }
    }
}

/// Dense timing-level SRT remap table: one slot per `(superblock,
/// stripe-die)` pair, so the per-access lookup in `effective_addr` is a
/// single indexed load instead of a hash probe. The replacement
/// `(channel, way, die)` packs into a `u32`; `u32::MAX` marks identity.
#[derive(Debug, Clone)]
struct RemapTable {
    table: Vec<u32>,
    stripe_dies: u32,
    len: usize,
}

const REMAP_NONE: u32 = u32::MAX;

impl RemapTable {
    fn new(blocks: u32, stripe_dies: u32) -> Self {
        RemapTable {
            table: vec![REMAP_NONE; blocks as usize * stripe_dies as usize],
            stripe_dies,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts (or overwrites) the remap for `(block, die_idx)` —
    /// overwrites do not grow `len`, matching map-insert semantics.
    fn insert(&mut self, block: u32, die_idx: u32, ch: u32, way: u32, die: u32) {
        let slot = &mut self.table[(block * self.stripe_dies + die_idx) as usize];
        if *slot == REMAP_NONE {
            self.len += 1;
        }
        *slot = ch | (way << 10) | (die << 20);
    }

    fn get(&self, block: u32, die_idx: u32) -> Option<(u32, u32, u32)> {
        let packed = self.table[(block * self.stripe_dies + die_idx) as usize];
        if packed == REMAP_NONE {
            return None;
        }
        Some((packed & 0x3FF, (packed >> 10) & 0x3FF, packed >> 20))
    }
}

/// The integrated SSD simulator.
///
/// See the [crate documentation](crate) for the architecture table and an
/// end-to-end example.
///
/// `Clone` forks the entire simulation state: both copies continue
/// independently and deterministically (the crashpoint sweep uses this
/// to test power loss at every k-th event without re-running the prefix).
#[derive(Debug, Clone)]
pub struct SsdSim {
    config: SsdConfig,
    rng: Rng,
    ftl: Ftl,
    dies: DieGrid,
    flash_bus: Vec<BandwidthServer>,
    controllers: Vec<DecoupledController>,
    sysbus: BandwidthServer,
    dram: BandwidthServer,
    dedicated_bus: Option<BandwidthServer>,
    noc: Option<Network>,
    dbuf_waiters: Vec<VecDeque<JobId>>,
    cache: Option<WriteCache>,
    flush_backlog: VecDeque<Lpn>,
    remap: RemapTable,
    wear: Option<WearModel>,
    queue: SimQueue,
    requests: Slab<ReqState>,
    jobs: Slab<CopyJob>,
    /// In-flight fNoC packets: the slab key's bits are the packet id, so
    /// delivery resolves back to its copy job without a hash probe.
    packet_jobs: Slab<JobId>,
    /// Reused scratch for NoC steps: the event loop handles one NoC event
    /// at a time, so one buffer (with retained capacity) serves them all.
    noc_step: dssd_noc::Step,
    /// Flash-leg events executed by the chain walk without touching the
    /// queue; folded into `events_delivered` and the state digest so
    /// express and event-at-a-time runs report identical totals.
    lane_events: u64,
    /// True only while [`SsdSim::chain_walk`] is inside `handle`: lets
    /// [`SsdSim::push_leg`] hand the handler's final continuation back to
    /// the walk instead of the queue. Always false on the `--no-flash-express`
    /// path, where `push_leg` degenerates to `queue.push`.
    chain_armed: bool,
    /// The continuation a leg handler deferred, if any. Always `None`
    /// outside [`SsdSim::chain_walk`]: the walk either executes it or
    /// demotes it to the queue before returning.
    chain_next: Option<(SimTime, Ev)>,
    /// Continuations that lost the race against the queue minimum (a
    /// competing event was due first) and were demoted to a normal push.
    chain_demoted: u64,
    blocked_writes: VecDeque<(ReqId, Request)>,
    /// Write groups awaiting re-allocation after a program failure.
    blocked_rewrites: VecDeque<(ReqId, Vec<Lpn>, u32)>,
    /// Superblocks holding a failed block, awaiting online retirement.
    pending_retire: VecDeque<u32>,
    injector: Option<FaultInjector>,
    outstanding: usize,
    workload: Option<SyntheticWorkload>,
    gc: Option<GcState>,
    scan_remaining: u64,
    scan_inflight: usize,
    parity_pending_pages: u32,
    report: RunReport,
    now: SimTime,
    horizon: SimTime,
    prefilled: bool,
    /// Span tracer (disabled unless [`SsdSim::enable_tracing`] is called).
    /// Strictly observational: it never schedules events or draws random
    /// numbers, so enabling it cannot perturb the simulation.
    tracer: Tracer,
    /// Epoch time-series probe; piggybacks on the event loop (no queue
    /// events of its own) so `events_delivered` stays bit-identical.
    epoch: Option<EpochProbe>,
    /// Emit a wall-clock-throttled heartbeat to stderr while the event
    /// loop runs (`--progress`). Stdout and the simulation are untouched.
    progress: bool,
    /// Events handled so far — the snapshot/replay cursor. Unlike
    /// `queue.delivered()` it excludes the final beyond-horizon pop, so
    /// replaying exactly this many events reproduces the state.
    events_handled: u64,
    /// Armed power-loss instant (configured or drawn from the dedicated
    /// `seed ^ 0x504C` stream).
    power_at: Option<SimTime>,
    /// Power loss after this many handled events, if armed.
    power_at_event: Option<u64>,
    /// True after a power loss: volatile state is gone, the run is over.
    halted: bool,
    /// Start-order counter backing [`Completion::tag`].
    next_tag: u64,
    /// Completion log for embedding front-ends; `None` (the default)
    /// keeps the hot path allocation-free.
    completions: Option<Vec<Completion>>,
}

/// Stderr heartbeat state for [`SsdSim::set_progress`]: reports sim-time,
/// events processed and the recent events/sec rate about once per second
/// of wall time. Checking the wall clock is itself throttled so the hot
/// loop only pays an increment-and-compare per event.
#[derive(Debug)]
struct ProgressMeter {
    last: std::time::Instant,
    last_events: u64,
    ticks: u32,
}

impl ProgressMeter {
    /// Events between wall-clock checks.
    const CHECK_EVERY: u32 = 1 << 16;

    fn new() -> Self {
        ProgressMeter { last: std::time::Instant::now(), last_events: 0, ticks: 0 }
    }

    fn tick(&mut self, sim_now: SimTime, events: impl FnOnce() -> u64) {
        self.ticks += 1;
        if self.ticks < Self::CHECK_EVERY {
            return;
        }
        self.ticks = 0;
        let now = std::time::Instant::now();
        let wall = now - self.last;
        if wall < std::time::Duration::from_secs(1) {
            return;
        }
        let events = events();
        let rate = (events - self.last_events) as f64 / wall.as_secs_f64();
        eprintln!(
            "[progress] sim {:>10.3} ms | {:>12} events | {:>7.2} M events/s",
            sim_now.as_ns() as f64 / 1e6,
            events,
            rate / 1e6,
        );
        self.last = now;
        self.last_events = events;
    }
}

/// Fixed-interval sampling state for the telemetry epoch time-series.
#[derive(Debug, Clone)]
struct EpochProbe {
    every: SimSpan,
    next: SimTime,
    series: EpochSeries,
    prev: EpochPrev,
}

/// Cumulative-counter snapshot from the previous epoch, for rate deltas.
#[derive(Debug, Default, Clone, Copy)]
struct EpochPrev {
    io_bytes: u64,
    gc_bytes: u64,
    completed: u64,
    gc_pages: u64,
    sysbus_io_busy_ns: u64,
    sysbus_gc_busy_ns: u64,
    ecc_busy_ns: u64,
    credit_stalls: u64,
    faults: u64,
}

/// Column schema of the epoch time-series (first column is the epoch end
/// time in milliseconds; `*_gbps`, `*_util` and `*_per_s` are epoch rates,
/// the rest are instantaneous depths/counts at the epoch boundary).
pub const EPOCH_COLUMNS: [&str; 18] = [
    "t_ms",
    "outstanding",
    "ctrl_queue_depth",
    "dbuf_in_use",
    "free_superblocks",
    "gc_active",
    "gc_pending_groups",
    "gc_jobs_inflight",
    "noc_in_flight",
    "io_gbps",
    "gc_gbps",
    "sysbus_io_util",
    "sysbus_gc_util",
    "ecc_util",
    "credit_stalls_per_s",
    "completed_per_s",
    "gc_pages_per_s",
    "faults_per_s",
];

impl SsdSim {
    /// Builds an idle simulator from a config.
    ///
    /// # Panics
    ///
    /// Panics if the config is internally inconsistent (e.g. fNoC
    /// terminal count differing from the channel count).
    #[must_use]
    pub fn new(config: SsdConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SsdConfig: {e}");
        }
        let rng = Rng::new(config.seed);
        let geo = config.geometry;
        let channels = geo.channels as usize;
        let ftl = Ftl::new(geo, config.ftl);
        let dies = DieGrid::new(&geo);
        let flash_bus = (0..channels)
            .map(|_| BandwidthServer::new(config.flash_bus_bytes_per_sec, SimSpan::ZERO))
            .collect();
        let sysbus =
            BandwidthServer::new(config.system_bus_bytes_per_sec(), config.bus_overhead);
        let dram = BandwidthServer::new(config.dram_bytes_per_sec, config.bus_overhead);
        let dedicated_bus = match config.architecture {
            Architecture::DssdBus => Some(BandwidthServer::new(
                config.dedicated_budget_bytes_per_sec().max(1),
                config.bus_overhead,
            )),
            _ => None,
        };
        let noc = match config.architecture {
            Architecture::DssdFnoc => {
                let mut nc = config.noc;
                if nc.link_bytes_per_sec == 0 {
                    // Derive the link bandwidth from the dedicated
                    // on-chip budget (bisection normalization).
                    nc = nc.with_bisection_bandwidth(
                        config.dedicated_budget_bytes_per_sec().max(1),
                    );
                }
                Some(Network::new(nc))
            }
            _ => None,
        };
        let dbuf_waiters = (0..channels).map(|_| VecDeque::new()).collect();

        // Fig 15a: inject `srt_active_remaps` timing-level sub-block
        // remappings. Accesses to a remapped (superblock, stripe-die)
        // occupy the *replacement* die/channel, losing striping
        // parallelism exactly as a recycled block on the "wrong" channel
        // would. Mapping-table state is untouched (the SRT is invisible
        // to the FTL).
        let stripe_dies = geo.total_dies() as u32;
        let mut remap = RemapTable::new(geo.blocks, stripe_dies);
        // Remaps draw from their own stream so enabling them does not
        // perturb the workload/prefill randomness of the comparison run.
        let mut remap_rng = Rng::new(config.seed ^ 0x5247_5431);
        while remap.len() < config.srt_active_remaps {
            let sb = remap_rng.range_u64(0..geo.blocks as u64) as u32;
            let die_idx = remap_rng.range_u64(0..stripe_dies as u64) as u32;
            let target = remap_rng.range_u64(0..stripe_dies as u64) as u32;
            let t_ch = target % geo.channels;
            let t_way = (target / geo.channels) % geo.ways;
            let t_die = target / (geo.channels * geo.ways);
            remap.insert(sb, die_idx, t_ch, t_way, t_die);
        }

        // The decoupled controllers (C_D): command queue, integrated ECC,
        // dBUF, and the dynamic-superblock hardware tables.
        let srt_entries = config.dynamic_sb.map_or(1024, |d| d.srt_entries);
        let mut controllers: Vec<DecoupledController> = (0..channels)
            .map(|_| {
                DecoupledController::new(config.ecc, config.dbuf_pages, srt_entries, 1 << 20)
            })
            .collect();

        // Online dynamic-superblock state (Sec 5): per-block wear with
        // Gaussian P/E limits, and optionally a reserved pool carved out
        // of the highest-numbered superblocks to pre-fill the RBTs.
        let mut ftl = ftl;
        let wear = match config.dynamic_sb {
            Some(d) => {
                let mut wrng = Rng::new(config.seed ^ 0x3EA2);
                let wear = WearModel::with_block_count(
                    geo.total_blocks() as usize,
                    d.pe_mean,
                    d.pe_sigma,
                    &mut wrng,
                );
                if d.reserved_fraction > 0.0 {
                    let n = ((geo.blocks as f64 * d.reserved_fraction).round() as u32)
                        .min(geo.blocks / 4);
                    for sb in geo.blocks - n..geo.blocks {
                        if ftl.retire_superblock(sb) {
                            for b in ftl.layout().sub_blocks(sb) {
                                let _ = controllers[b.channel as usize]
                                    .rbt_mut()
                                    .deposit(geo.block_index(b) as u32);
                            }
                        }
                    }
                }
                Some(wear)
            }
            None => None,
        };

        // Fault injection needs per-block wear state (forced wear-out,
        // per-block RBER) even when dynamic-superblock management is off.
        let injector =
            config.faults.enabled().then(|| FaultInjector::new(config.faults, config.seed));
        let wear = wear.or_else(|| {
            injector.as_ref().map(|_| {
                let d = crate::DynamicSbConfig::default();
                let mut wrng = Rng::new(config.seed ^ 0x3EA2);
                WearModel::with_block_count(
                    geo.total_blocks() as usize,
                    d.pe_mean,
                    d.pe_sigma,
                    &mut wrng,
                )
            })
        });

        // FTL metadata durability model (per-page OOB + mapping journal
        // + L2P checkpoints), charged as real flash traffic.
        if let Some(d) = config.durability {
            ftl.enable_meta(dssd_ftl::MetaConfig {
                journal_entries_per_page: d.journal_entries_per_page,
                checkpoint_interval_pages: d.checkpoint_interval_pages,
                page_bytes: geo.page_bytes,
            });
        }

        // Deterministic power loss. The drawn instant comes from its own
        // stream (`seed ^ 0x504C`) so arming it cannot perturb the
        // workload/prefill/fault randomness of the comparison run.
        let pl = config.power_loss;
        let power_at = if pl.at > SimTime::ZERO {
            Some(pl.at)
        } else if pl.mean_time_to_loss > SimSpan::ZERO {
            let mut prng = Rng::new(config.seed ^ 0x504C);
            let ns = prng.exponential(pl.mean_time_to_loss.as_ns() as f64);
            Some(SimTime::ZERO + SimSpan::from_ns((ns.round() as u64).max(1)))
        } else {
            None
        };
        let power_at_event = (pl.at_event > 0).then_some(pl.at_event);

        SsdSim {
            rng,
            ftl,
            dies,
            flash_bus,
            controllers,
            sysbus,
            dram,
            dedicated_bus,
            noc,
            dbuf_waiters,
            cache: config.write_cache_pages.map(WriteCache::new),
            flush_backlog: VecDeque::new(),
            remap,
            wear,
            queue: SimQueue::new(&config),
            requests: Slab::new(),
            jobs: Slab::new(),
            packet_jobs: Slab::new(),
            noc_step: dssd_noc::Step::default(),
            lane_events: 0,
            chain_armed: false,
            chain_next: None,
            chain_demoted: 0,
            blocked_writes: VecDeque::new(),
            blocked_rewrites: VecDeque::new(),
            pending_retire: VecDeque::new(),
            injector,
            outstanding: 0,
            workload: None,
            gc: None,
            scan_remaining: 0,
            scan_inflight: 0,
            parity_pending_pages: 0,
            report: RunReport::new(SimSpan::from_ms(1)),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            config,
            prefilled: false,
            tracer: Tracer::disabled(),
            epoch: None,
            progress: false,
            events_handled: 0,
            power_at,
            power_at_event,
            halted: false,
            next_tag: 0,
            completions: None,
        }
    }

    /// Enables the stderr progress heartbeat (sim-time, events processed,
    /// events/sec, about once per wall-clock second). Observational only:
    /// it writes nothing to stdout and cannot perturb the simulation.
    pub fn set_progress(&mut self, on: bool) {
        self.progress = on;
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The FTL (for inspection in tests and experiments).
    #[must_use]
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Whether [`SsdSim::prefill`] has run.
    #[must_use]
    pub fn is_prefilled(&self) -> bool {
        self.prefilled
    }

    /// Digest of the fault-injection stream position, or `None` when
    /// fault injection is disabled. Useful for asserting that the fault
    /// stream survives snapshot/restore bit-identically.
    #[must_use]
    pub fn fault_stream_digest(&self) -> Option<u64> {
        self.injector.as_ref().map(FaultInjector::stream_digest)
    }

    /// Pre-conditions the drive per Sec 6.1 (full + fragmented, on the
    /// edge of triggering GC). Idempotent.
    pub fn prefill(&mut self) {
        if self.prefilled {
            return;
        }
        let target = self.config.prefill_target_free;
        let frac = self.config.prefill_invalid_fraction;
        let mut rng = self.rng.fork(0xF111);
        self.ftl.prefill_with(&mut rng, target, frac);
        self.prefilled = true;
    }

    /// Runs a closed-loop workload for `duration` of simulated time and
    /// returns the measurements.
    pub fn run_closed_loop(
        &mut self,
        workload: SyntheticWorkload,
        duration: SimSpan,
    ) -> &RunReport {
        self.begin_closed_loop(workload, duration);
        self.run_events(u64::MAX);
        self.finish_run()
    }

    /// Replays an open-loop request schedule (e.g. from a trace), capped
    /// at `duration`.
    ///
    /// Arrivals are pushed at [`ARRIVAL_RANK`], so a live front-end
    /// injecting the same schedule incrementally between steps
    /// ([`SsdSim::inject_arrival`]) pops every event in the exact same
    /// order and produces a bit-identical [`RunReport`].
    pub fn run_trace(
        &mut self,
        requests: Vec<(SimTime, Request)>,
        duration: SimSpan,
    ) -> &RunReport {
        self.begin_open_loop(duration);
        for (t, r) in requests {
            self.inject_arrival(t, r);
        }
        self.run_events(u64::MAX);
        self.finish_run()
    }

    /// Arms an open-loop run without any arrivals: pair with
    /// [`SsdSim::inject_arrival`] / [`SsdSim::run_until_before`] /
    /// [`SsdSim::run_events`] to drive the sim from a live front-end,
    /// then [`SsdSim::finish_run`]. `begin_open_loop` + injecting a
    /// schedule + `run_events(u64::MAX)` + `finish_run` is exactly
    /// [`SsdSim::run_trace`].
    pub fn begin_open_loop(&mut self, duration: SimSpan) {
        self.begin_run(duration);
        self.arm_scan();
    }

    /// Schedules a host request arrival at absolute time `t`. Returns
    /// `false` (and schedules nothing) when `t` is past the horizon,
    /// mirroring [`SsdSim::run_trace`]'s filter.
    ///
    /// Arrivals carry a rank below every internally-scheduled event, so
    /// the pop order — and therefore the whole simulation — depends only
    /// on the arrival schedule, not on *when* each arrival was pushed.
    /// Injecting between steps is only safe at instants the loop has not
    /// reached: advance with [`SsdSim::run_until_before`]`(t)`, inject
    /// at `t`, repeat.
    pub fn inject_arrival(&mut self, t: SimTime, r: Request) -> bool {
        if t > self.horizon {
            return false;
        }
        debug_assert!(t >= self.now, "arrival injected in the past");
        self.queue.push_ranked(t, ARRIVAL_RANK, Ev::Arrive(r));
        true
    }

    /// The run horizon set by the active `begin_*` call.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Arms a closed-loop run without driving it: pair with
    /// [`SsdSim::run_events`] / [`SsdSim::run_until`] to step the
    /// simulation (snapshots, crashpoint sweeps), then
    /// [`SsdSim::finish_run`]. `begin` + `run_events(u64::MAX)` +
    /// `finish_run` is exactly [`SsdSim::run_closed_loop`].
    pub fn begin_closed_loop(&mut self, workload: SyntheticWorkload, duration: SimSpan) {
        let bound = workload.bind_check(self.ftl.lpn_count());
        self.workload = Some(bound);
        self.begin_run(duration);
        self.queue.push(SimTime::ZERO, Ev::Admit);
        self.arm_scan();
    }

    fn begin_run(&mut self, duration: SimSpan) {
        // Mounting takes the baseline checkpoint over the (typically
        // prefilled) mapping — a no-op when durability is off.
        self.ftl.meta_mount_baseline();
        self.horizon = SimTime::ZERO + duration;
    }

    fn arm_scan(&mut self) {
        if let Some(was) = self.config.was_scan {
            self.queue.push(SimTime::ZERO + was.interval, Ev::ScanTick);
        }
    }

    /// The measurements collected so far.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Mutable access to the measurements (percentiles need `&mut`).
    pub fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    /// Diagnostic snapshot of GC progress: `(round active, pending
    /// groups, copies done, copies expected, erases outstanding, copy
    /// jobs in flight, dBUF waiters, NoC packets in flight)`.
    #[must_use]
    pub fn gc_debug(&self) -> (bool, usize, usize, usize, usize, usize, usize, usize) {
        let (p, d, e, er) = self.gc.as_ref().map_or((0, 0, 0, 0), |g| {
            (g.pending.len(), g.copies_done, g.copies_expected, g.erases_outstanding)
        });
        (
            self.gc.is_some(),
            p,
            d,
            e,
            er,
            self.jobs.len(),
            self.dbuf_waiters.iter().map(|w| w.len()).sum(),
            self.noc.as_ref().map_or(0, |n| n.in_flight()),
        )
    }

    /// Read hits observed by the DRAM write-buffer cache, if enabled.
    #[must_use]
    pub fn cache_hits(&self) -> Option<u64> {
        self.cache.as_ref().map(WriteCache::hits)
    }

    /// NoC diagnostic dump (empty string when there is no NoC).
    #[must_use]
    pub fn noc_debug(&self) -> String {
        self.noc.as_ref().map_or(String::new(), |n| n.debug_state())
    }

    /// The embedded fNoC, when this architecture has one. Read-only:
    /// for stats and diagnostics (e.g. [`Network::express_diag`]).
    #[must_use]
    pub fn noc(&self) -> Option<&Network> {
        self.noc.as_ref()
    }

    /// Flash-side express diagnostics: `(coalesced, demoted)` — leg
    /// events the chain walk executed without a queue round-trip, and
    /// continuations demoted to a normal push because a competing event
    /// was due first. Strictly observational; both are 0 with
    /// `--no-flash-express`.
    #[must_use]
    pub fn flash_express_diag(&self) -> (u64, u64) {
        (self.lane_events, self.chain_demoted)
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// Enables span tracing (and epoch sampling when `cfg.epoch` is set).
    /// Call before running. The tracer is strictly observational — it
    /// never schedules events or draws random numbers — so enabling it
    /// leaves the [`RunReport`] bit-identical to an untraced run.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.tracer = Tracer::enabled(cfg);
        if let Some(n) = self.noc.as_mut() {
            n.set_record_hops(true);
        }
        self.epoch = cfg.epoch.map(|every| EpochProbe {
            every,
            next: SimTime::ZERO + every,
            series: EpochSeries::new(EPOCH_COLUMNS.to_vec()),
            prev: EpochPrev::default(),
        });
    }

    /// The span tracer (disabled unless [`SsdSim::enable_tracing`] ran).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable span tracer, so an embedding front-end can emit its own
    /// observational spans (e.g. per-tenant lanes) into the same trace.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Enables (or disables) the completion log drained by
    /// [`SsdSim::take_completions`]. Observational only: the log never
    /// schedules events or draws random numbers.
    pub fn set_completion_log(&mut self, on: bool) {
        self.completions = on.then(Vec::new);
    }

    /// Drains completions recorded since the last drain. Empty unless
    /// [`SsdSim::set_completion_log`] enabled the log.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        match self.completions.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The collected epoch time-series, if epoch sampling is enabled.
    #[must_use]
    pub fn epoch_series(&self) -> Option<&EpochSeries> {
        self.epoch.as_ref().map(|e| &e.series)
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Drives the event loop for up to `limit` events. Returns
    /// [`RunState::Done`] when the run reached its horizon (or drained),
    /// [`RunState::Paused`] when the limit stopped it mid-run, and
    /// [`RunState::Halted`] when injected power loss cut it short.
    ///
    /// Stepping stops *before* popping (the queue's FIFO tie order would
    /// not survive a pop-and-re-push), while the horizon check keeps the
    /// original pop-then-break — the dropped pop is part of the golden
    /// `events_delivered` fingerprints.
    pub fn run_events(&mut self, limit: u64) -> RunState {
        let express = self.config.flash_express;
        if self.halted {
            return RunState::Halted;
        }
        if let Some(n) = self.noc.as_mut() {
            n.set_quiet_credit_skip(express);
        }
        let mut progress = self.progress.then(ProgressMeter::new);
        let mut handled = 0u64;
        loop {
            if handled >= limit {
                return RunState::Paused;
            }
            if let Some(pa) = self.power_at {
                let due = pa <= self.horizon
                    && match self.queue.peek_time() {
                        Some(next) => next >= pa,
                        None => true,
                    };
                if due {
                    self.now = pa;
                    self.power_loss();
                    return RunState::Halted;
                }
            }
            let Some((t, ev)) = self.queue.pop() else { break };
            if t > self.horizon {
                break;
            }
            // Epoch sampling piggybacks here rather than scheduling its
            // own events, so `events_delivered` (and every golden
            // fingerprint) stays identical with sampling on or off.
            if self.epoch.is_some() {
                self.sample_epochs_until(t);
            }
            if let Some(p) = progress.as_mut() {
                let (queue, noc) = (&self.queue, self.noc.as_ref());
                let lane = self.lane_events;
                p.tick(t, || queue.delivered() + lane + noc.map_or(0, |n| n.express_events()));
            }
            self.now = t;
            match ev {
                // Express burst: drain consecutive NoC events in one
                // tight loop, skipping the per-event outer-loop checks.
                // The queue stays the ordering authority (`pop_if`), so
                // the event sequence is identical to the one-at-a-time
                // path; disabled whenever the outer loop's per-event
                // observations (power-loss instants, epoch sampling,
                // progress ticks) must run.
                Ev::Noc(nev)
                    if express
                        && self.power_at.is_none()
                        && self.power_at_event.is_none()
                        && self.epoch.is_none()
                        && !self.progress =>
                {
                    let n = self.noc_burst(nev, limit - handled);
                    self.events_handled += n;
                    handled += n;
                }
                // Express chain walk: flash leg chains coalesce while
                // each continuation provably beats the queue minimum.
                // Same gate as the burst: any per-event outer-loop
                // observation forces one-at-a-time execution.
                ev if express
                    && self.power_at.is_none()
                    && self.power_at_event.is_none()
                    && self.epoch.is_none()
                    && !self.progress =>
                {
                    let n = self.chain_walk(ev, limit - handled);
                    self.events_handled += n;
                    handled += n;
                }
                ev => {
                    self.handle(ev);
                    self.events_handled += 1;
                    handled += 1;
                    if self.power_at_event == Some(self.events_handled) {
                        self.power_loss();
                        return RunState::Halted;
                    }
                }
            }
        }
        RunState::Done
    }

    /// Steps until the next pending event would land after `t` (so the
    /// state is exactly the full run's state at instant `t`). Returns
    /// [`RunState::Paused`] on reaching `t` with events still pending.
    pub fn run_until(&mut self, t: SimTime) -> RunState {
        loop {
            match self.queue.peek_time() {
                Some(next) if next <= t => {}
                _ => return RunState::Paused,
            }
            match self.run_events(1) {
                RunState::Paused => {}
                done => return done,
            }
        }
    }

    /// Steps until the next pending event would land at or after `t`:
    /// the safe point to [`inject`](SsdSim::inject_arrival) an arrival
    /// at `t`, because no event at `t` has popped yet — the arrival's
    /// rank then places it exactly where a batch push would have.
    /// Returns [`RunState::Paused`] with events at or after `t` still
    /// pending.
    pub fn run_until_before(&mut self, t: SimTime) -> RunState {
        loop {
            match self.queue.peek_time() {
                Some(next) if next < t => {}
                _ => return RunState::Paused,
            }
            match self.run_events(1) {
                RunState::Paused => {}
                done => return done,
            }
        }
    }

    /// Finalizes a stepped run: closes epoch sampling and fills the
    /// report's event/elapsed totals. Idempotent; [`SsdSim::run_closed_loop`]
    /// calls it internally.
    pub fn finish_run(&mut self) -> &RunReport {
        let upto = if self.halted { self.now } else { self.horizon };
        if self.epoch.is_some() {
            self.sample_epochs_until(upto);
        }
        // Queue pops, plus burst-lane pops that bypassed the queue, plus
        // the flit-level events the NoC express path simulated privately —
        // so "events processed" measures the same logical work with the
        // fast paths on or off.
        self.report.events_delivered = self.queue.delivered()
            + self.lane_events
            + self.noc.as_ref().map_or(0, |n| n.express_events());
        self.report.elapsed = upto - SimTime::ZERO;
        &self.report
    }

    /// Cuts power *now*, regardless of the configured injection modes.
    /// The crashpoint sweep forks a clone of the running sim and calls
    /// this to test recovery at an arbitrary instant.
    ///
    /// # Panics
    ///
    /// Panics if the durability model is disabled or power was already
    /// lost.
    pub fn force_power_loss(&mut self) {
        self.power_loss();
    }

    /// Power loss at `self.now`: every in-flight request and all volatile
    /// state (event queue, journal buffer, in-flight checkpoint, DRAM) is
    /// gone. The durability model mounts from durable media state only;
    /// the reconstruction audit and analytic recovery time land in
    /// [`RunReport::recovery`].
    fn power_loss(&mut self) {
        assert!(!self.halted, "power already lost");
        self.halted = true;
        let t = self.now;
        self.tracer.instant(Track::Faults, "power loss", t);
        let requests_torn = self.outstanding as u64;
        let outcome = self
            .ftl
            .meta_recover(t)
            .expect("power-loss injection requires the durability model");
        let geo = self.config.geometry;
        let bus_ns = SimSpan::for_transfer(
            u64::from(geo.page_bytes),
            self.config.flash_bus_bytes_per_sec,
        )
        .as_ns();
        let recovery_time = self.ftl.meta().expect("durability enabled").recovery_time(
            outcome.pages_read,
            u64::from(geo.channels),
            self.config.timing.read_latency_mid(),
            bus_ns,
        );
        self.tracer.instant(Track::Faults, "mount recovery done", t + recovery_time);
        self.report.recovery = Some(crate::RecoveryReport {
            power_loss_at: t,
            recovery_time,
            checkpoint_pages: outcome.checkpoint_pages,
            journal_pages_replayed: outcome.journal_pages_replayed,
            journal_entries_replayed: outcome.journal_entries_replayed,
            oob_pages_scanned: outcome.oob_pages_scanned,
            torn_pages: outcome.torn_pages,
            lost_acked_writes: outcome.lost_acked_writes,
            resurrected_trims: outcome.resurrected_trims,
            requests_torn,
        });
    }

    /// Charges pending metadata I/O (journal flushes, checkpoints) as
    /// flash traffic on `CLASS_META` and reports each transfer's durable
    /// instant back to the model. Fully analytic: completion times use
    /// the deterministic mid-range program latency (no RNG draws) and no
    /// events are scheduled, so durability-off fingerprints are
    /// untouched and `Ev` stays lean.
    fn pump_meta(&mut self) {
        let io = self.ftl.meta_take_io();
        if io.is_empty() {
            return;
        }
        let channels = u64::from(self.config.geometry.channels);
        let page = u64::from(self.config.geometry.page_bytes);
        let program = self.config.timing.program_latency_mid();
        for item in io {
            match item {
                dssd_ftl::MetaIo::JournalFlush { page: seq, bytes } => {
                    // The journal buffer drains from controller DRAM and
                    // rotates round-robin over the channel buses.
                    let d = self.dram.enqueue(self.now, u64::from(bytes), CLASS_META);
                    let ch = (seq % channels) as usize;
                    let tr =
                        self.flash_bus[ch].enqueue(d.done, u64::from(bytes), CLASS_META);
                    self.ftl.meta_journal_durable(seq, tr.done + program);
                }
                dssd_ftl::MetaIo::Checkpoint { pages, bytes } => {
                    // Snapshot the mapping before any further mutation.
                    self.ftl.meta_begin_checkpoint();
                    let d = self.dram.enqueue(self.now, bytes, CLASS_META);
                    let mut durable = d.done + program;
                    for i in 0..pages {
                        let ch = (i % channels) as usize;
                        let tr = self.flash_bus[ch].enqueue(d.done, page, CLASS_META);
                        durable = durable.max(tr.done + program);
                    }
                    self.ftl.meta_checkpoint_durable(durable);
                }
            }
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events handled so far — the snapshot/replay cursor.
    #[must_use]
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// True after injected (or forced) power loss ended the run.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Durability-model activity counters, when the model is enabled.
    #[must_use]
    pub fn meta_stats(&self) -> Option<MetaStats> {
        self.ftl.meta_stats()
    }

    /// Order-sensitive digest of the live simulation state (RNG, clock,
    /// cursor, queue and report counters). Two sims with equal digests
    /// built from the same config evolve identically; the snapshot
    /// restore path verifies replay against it.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let stats = self.ftl.stats();
        let parts = [
            self.rng.state_digest(),
            self.now.as_ns(),
            self.events_handled,
            self.queue.delivered() + self.lane_events,
            self.outstanding as u64,
            u64::from(self.prefilled),
            self.report.requests_completed,
            self.report.gc_pages_copied,
            self.report.gc_rounds,
            self.report.io_bw.total_bytes(),
            stats.host_pages_written,
            stats.gc_pages_copied,
        ];
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for p in parts {
            h = (h ^ p).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Admit => self.admit_closed_loop(),
            Ev::Arrive(r) => {
                self.start_request(r);
                self.check_gc();
            }
            Ev::WriteAtCtrl { leg } => {
                let bytes = self.page_bytes(leg.pages);
                let t =
                    self.flash_bus[leg.channel as usize].enqueue(self.now, bytes, CLASS_IO);
                let track = Track::ChannelBus(leg.channel as u16);
                self.req_span(leg.req, StageKind::FlashBus, track, t.done - self.now);
                self.push_leg(t.done, Ev::WriteAtDie { leg });
            }
            Ev::WriteAtDie { leg } => self.write_at_die(*leg),
            Ev::WriteDone { req, pages } | Ev::ReadDone { req, pages } => {
                self.finish_pages(req, pages);
            }
            Ev::ReadAtBus { leg } => {
                let bytes = self.page_bytes(leg.pages);
                let t =
                    self.flash_bus[leg.channel as usize].enqueue(self.now, bytes, CLASS_IO);
                let track = Track::ChannelBus(leg.channel as u16);
                self.req_span(leg.req, StageKind::FlashBus, track, t.done - self.now);
                self.push_leg(t.done, Ev::ReadAtEcc { leg });
            }
            Ev::ReadAtEcc { leg } => self.read_at_ecc(*leg),
            Ev::ReadAtSysbus { req, pages } => {
                let bytes = self.page_bytes(pages);
                let t = self.sysbus_xfer(bytes, CLASS_IO);
                self.req_span(req, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
                self.push_leg(t.1, Ev::ReadDone { req, pages });
            }
            Ev::DramHitAtDram { req, pages } => {
                let bytes = self.page_bytes(pages);
                let t = self.dram.enqueue(self.now, bytes, CLASS_IO);
                self.req_span(req, StageKind::Dram, Track::Dram, t.done - self.now);
                self.push_leg(t.done, Ev::DramHitDone { req, pages });
            }
            Ev::DramHitDone { req, pages } => self.finish_pages(req, pages),
            Ev::CopyAtSrcBus { job } => {
                self.cmd_advance_to(job, dssd_ctrl::CopybackStage::ReadDone);
                let (bytes, ch) = self.job_src(job);
                // dSSD_f: the pages move from the die's page register
                // into the dBUF; without free slots the transfer waits
                // (back-pressure, resumed when a slot frees).
                if self.config.architecture == Architecture::DssdFnoc {
                    let j = &self.jobs[job];
                    if !j.holds_src_dbuf {
                        let n = j.pages.len();
                        if self.controllers[ch].dbuf().available() < n {
                            self.dbuf_waiters[ch].push_back(job);
                            return;
                        }
                        for _ in 0..n {
                            assert!(self.controllers[ch].dbuf_mut().try_reserve());
                        }
                        self.jobs[job].holds_src_dbuf = true;
                    }
                }
                let t = self.flash_bus[ch].enqueue(self.now, bytes, CLASS_GC);
                let track = Track::ChannelBus(ch as u16);
                self.job_span(job, StageKind::FlashBus, track, t.done - self.now);
                self.push_leg(t.done, Ev::CopyAtEcc { job });
            }
            Ev::CopyAtEcc { job } => {
                let (bytes, ch) = self.job_src(job);
                let t = self.controllers[ch].ecc_mut().decode_as(self.now, bytes, CLASS_GC);
                let track = Track::ChannelEcc(ch as u16);
                self.job_span(job, StageKind::Ecc, track, t.done - self.now);
                self.push_leg(t.done, Ev::CopyTransport { job });
            }
            Ev::CopyTransport { job } => {
                self.cmd_advance_to(job, dssd_ctrl::CopybackStage::EccDone);
                self.copy_transport(job);
            }
            Ev::CopyAtDram { job } => {
                let n = self.jobs[job].pages.len() as u32;
                let t = self.dram_xfer_pages(n, CLASS_GC);
                self.job_span(job, StageKind::Dram, Track::Dram, t.1 - self.now);
                self.push_leg(t.1, Ev::CopyFromDram { job });
            }
            Ev::CopyFromDram { job } => {
                let n = self.jobs[job].pages.len() as u32;
                let t = self.sysbus_xfer_pages(n, CLASS_GC);
                self.job_span(job, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
                self.push_leg(t.1, Ev::CopyAtDstBus { job });
            }
            Ev::CopyAtDstBus { job } => {
                let (bytes, ch) = self.job_dst(job);
                let t = self.flash_bus[ch].enqueue(self.now, bytes, CLASS_GC);
                let track = Track::ChannelBus(ch as u16);
                self.job_span(job, StageKind::FlashBus, track, t.done - self.now);
                self.push_leg(t.done, Ev::CopyAtDstDie { job });
            }
            Ev::CopyAtDstDie { job } => {
                self.cmd_advance_to(job, dssd_ctrl::CopybackStage::WriteIssued);
                // The data now sits in the destination die's page
                // register: same-channel copies can free their dBUF slots
                // here rather than waiting out the program.
                self.release_src_dbuf(job);
                let j = &self.jobs[job];
                let pages = j.pages.len() as u32;
                let dst = j.dst;
                let die = self.effective_die_index(dst);
                let lat = FlashOp::multi_plane(FlashOpKind::Program, dst, pages)
                    .array_latency(&self.config.timing, &mut self.rng);
                let (_, done) = self.dies.occupy(die, self.now, lat);
                let track = Track::Die(die as u32);
                self.job_span(job, StageKind::FlashChip, track, done - self.now);
                self.push_leg(done, Ev::CopyDone { job });
            }
            Ev::CopyDone { job } => self.copy_done(job),
            Ev::EraseDone => self.erase_done(),
            Ev::Noc(ev) => self.noc_event(ev),
            Ev::NocRetry { pkt } => {
                let mut step = std::mem::take(&mut self.noc_step);
                self.noc.as_mut().expect("NoC retry without NoC").inject_into(
                    self.now,
                    *pkt,
                    &mut step,
                );
                self.absorb_noc(&mut step);
                self.noc_step = step;
            }
            Ev::ScanTick => self.scan_tick(),
            Ev::ScanReadDone => {
                self.scan_inflight -= 1;
                self.pump_scan();
            }
        }
    }

    // ------------------------------------------------------------------
    // Host side
    // ------------------------------------------------------------------

    fn admit_closed_loop(&mut self) {
        let Some(mut wl) = self.workload.take() else { return };
        let qd = wl.queue_depth();
        while self.outstanding < qd && self.now <= self.horizon {
            let r = wl.next_request(&mut self.rng);
            self.start_request(r);
        }
        self.workload = Some(wl);
        self.check_gc();
        self.pump_gc();
    }

    fn start_request(&mut self, r: Request) {
        self.outstanding += 1;
        let tag = self.next_tag;
        self.next_tag += 1;
        let id = self.requests.insert(ReqState {
            op: r.op,
            arrived: self.now,
            tag,
            pages_left: r.pages,
            total_pages: r.pages,
            spans: Vec::new(),
            failed: false,
            tickets: Vec::new(),
        });
        let name = match r.op {
            Op::Read => "read",
            Op::Write => "write",
        };
        self.tracer.begin(Class::Io, id.to_bits(), name, self.now);
        if r.dram_hit {
            let bytes = self.page_bytes(r.pages);
            let t = self.sysbus_xfer(bytes, CLASS_IO);
            self.req_span(id, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
            self.queue.push(t.1, Ev::DramHitAtDram { req: id, pages: r.pages });
            return;
        }
        match r.op {
            Op::Write => self.start_write(id, r),
            Op::Read => self.start_read(id, r),
        }
    }

    fn start_write(&mut self, id: ReqId, r: Request) {
        if self.cache.is_some() {
            // Write-back buffering: the write is acknowledged from DRAM;
            // dirty pages flush to flash in the background.
            let lpns: Vec<Lpn> = r.lpns().map(|l| l % self.ftl.lpn_count()).collect();
            let cache = self.cache.as_mut().unwrap();
            for lpn in lpns {
                cache.write(lpn);
            }
            let bytes = self.page_bytes(r.pages);
            let t = self.sysbus_xfer(bytes, CLASS_IO);
            self.req_span(id, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
            self.queue.push(t.1, Ev::DramHitAtDram { req: id, pages: r.pages });
            self.pump_flush();
            return;
        }
        let lpns: Vec<Lpn> = r.lpns().map(|l| l % self.ftl.lpn_count()).collect();
        match self.ftl.write_pages(&lpns) {
            Some(groups) => {
                let tickets = self.ftl.meta_drain_tickets();
                self.issue_write_groups(id, &groups, &lpns, &tickets, 1);
            }
            None => {
                // Out of space: the request stalls until GC frees a
                // superblock — this is where baseline tail latency
                // explodes.
                self.blocked_writes.push_back((id, r));
                self.check_gc();
                return;
            }
        }
        self.charge_parity(r.pages);
    }

    /// TinyTail maintains RAIN parity so reads can bypass GC-blocked
    /// chips: every stripe of data pages costs one extra parity-page
    /// write through the normal bus + flash path (the paper's "cost:
    /// FTL, parity pages for RAIN"). The parity write occupies resources
    /// but nothing waits on it, so it is charged analytically.
    fn charge_parity(&mut self, pages: u32) {
        if !matches!(self.config.ftl.policy, dssd_ftl::GcPolicy::TinyTail { .. }) {
            return;
        }
        self.parity_pending_pages += pages;
        let stripe = self.config.geometry.planes.max(1);
        while self.parity_pending_pages >= stripe {
            self.parity_pending_pages -= stripe;
            let page = self.config.geometry.page_bytes as u64;
            let (_, bus_done) = self.sysbus_xfer(page, CLASS_IO);
            let die = self.rng.index(self.dies.len());
            let ch = self.config.geometry.die_at(die).channel as usize;
            let t = self.flash_bus[ch].enqueue(bus_done, page, CLASS_IO);
            let lat = self.config.timing.sample_program(&mut self.rng);
            self.dies.occupy(die, t.done, lat);
        }
    }

    fn start_read(&mut self, id: ReqId, r: Request) {
        // Group the request's pages by (die, page row) to exploit
        // multi-plane reads where the FTL laid pages out that way.
        // Ordered map: the fault injector draws per group, so iteration
        // order must be deterministic.
        let mut groups: BTreeMap<(usize, u32, u32), (u32, PageAddr)> = BTreeMap::new();
        let mut unmapped = 0u32;
        let mut cached = 0u32;
        for lpn in r.lpns() {
            let lpn = lpn % self.ftl.lpn_count();
            if self.cache.as_mut().is_some_and(|c| c.read(lpn)) {
                cached += 1;
                continue;
            }
            match self.ftl.translate(lpn) {
                Some(raw) => {
                    let addr = self.effective_addr(raw);
                    let die = self.effective_die_index_raw(addr);
                    let e =
                        groups.entry((die, addr.page, addr.channel)).or_insert((0, raw));
                    e.0 += 1;
                }
                None => unmapped += 1,
            }
        }
        if cached > 0 {
            // Write-buffer hits are served from DRAM.
            let bytes = self.page_bytes(cached);
            let t = self.sysbus_xfer(bytes, CLASS_IO);
            self.req_span(id, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
            self.queue.push(t.1, Ev::DramHitAtDram { req: id, pages: cached });
        }
        if unmapped > 0 {
            // Never-written pages are served from the controller (real
            // drives return zeroes without touching flash): charge the
            // system-bus crossing only.
            let bytes = self.page_bytes(unmapped);
            let t = self.sysbus_xfer(bytes, CLASS_IO);
            self.req_span(id, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
            self.queue.push(t.1, Ev::ReadDone { req: id, pages: unmapped });
        }
        for ((die, _row, channel), (pages, raw)) in groups {
            // TinyTail: a read whose chip is busy with (partial) GC is
            // served by RAIN reconstruction — the k-1 stripe peers are
            // read from the other channels and XORed at the front end,
            // a (k-1)x read amplification that is the scheme's price for
            // never blocking behind GC.
            if matches!(self.config.ftl.policy, dssd_ftl::GcPolicy::TinyTail { .. })
                && self
                    .gc
                    .as_ref()
                    .is_some_and(|g| g.channel_inflight[channel as usize] > 0)
            {
                self.reconstruct_read(id, pages, channel);
                continue;
            }
            let lat = FlashOp::multi_plane(
                FlashOpKind::Read,
                PageAddr { channel, way: 0, die: 0, plane: 0, block: 0, page: 0 },
                pages,
            )
            .array_latency(&self.config.timing, &mut self.rng);
            let (_, done) = self.dies.occupy(die, self.now, lat);
            self.req_span(id, StageKind::FlashChip, Track::Die(die as u32), done - self.now);
            self.queue.push(
                done,
                Ev::ReadAtBus {
                    leg: Box::new(ReadLeg {
                        req: id,
                        pages,
                        channel,
                        die,
                        addr: raw,
                        attempt: 0,
                        hard: false,
                    }),
                },
            );
        }
    }

    /// RAIN read reconstruction: read the stripe fragments from every
    /// other channel, move them to the front end, and complete the read
    /// once the slowest fragment has arrived and been XORed.
    fn reconstruct_read(&mut self, id: ReqId, pages: u32, blocked_channel: u32) {
        let geo = self.config.geometry;
        let bytes = self.page_bytes(pages);
        let mut latest = self.now;
        let mut chip_span = SimSpan::ZERO;
        let mut bus_span = SimSpan::ZERO;
        for c in 0..geo.channels {
            if c == blocked_channel {
                continue;
            }
            // One fragment read per peer channel, on one of its dies.
            let local = self.rng.range_u64(0..(geo.ways * geo.dies) as u64) as u32;
            let die = geo.die_index(dssd_flash::DieAddr {
                channel: c,
                way: local % geo.ways,
                die: local / geo.ways,
            });
            let lat = FlashOp::multi_plane(
                FlashOpKind::Read,
                PageAddr { channel: c, way: 0, die: 0, plane: 0, block: 0, page: 0 },
                pages,
            )
            .array_latency(&self.config.timing, &mut self.rng);
            let (_, die_done) = self.dies.occupy(die, self.now, lat);
            chip_span = chip_span.max(die_done - self.now);
            let t = self.flash_bus[c as usize].enqueue(die_done, bytes, CLASS_IO);
            bus_span = bus_span.max(t.done - self.now);
            latest = latest.max(t.done);
        }
        // Reconstruction aggregates max-of-peers times, so its slices
        // render on the front-end (system bus) lane rather than a single
        // die/channel lane; the per-stage attribution is unchanged.
        let now = self.now;
        self.req_span_at(id, StageKind::FlashChip, Track::SysBus, now, chip_span);
        self.req_span_at(
            id,
            StageKind::FlashBus,
            Track::SysBus,
            now + chip_span,
            bus_span.saturating_sub(chip_span),
        );
        // All fragments cross the system bus to be XORed at the front end.
        let frag_bytes = bytes * (geo.channels as u64 - 1);
        let t = self.sysbus.enqueue(latest, frag_bytes, CLASS_IO);
        self.report.sysbus_io_util.record_busy(t.start, t.done);
        self.req_span_at(id, StageKind::SystemBus, Track::SysBus, latest, t.done - latest);
        self.queue.push(t.done, Ev::ReadDone { req: id, pages });
    }

    fn finish_pages(&mut self, req: ReqId, pages: u32) {
        let done = {
            let state = self.requests.get_mut(req).expect("unknown request");
            state.pages_left -= pages;
            state.pages_left == 0
        };
        if !done {
            return;
        }
        let state = self.requests.remove(req).unwrap();
        self.outstanding -= 1;
        // Redeem the durability tickets: a successful completion is the
        // host acknowledgement (the recovery oracle's ground truth); a
        // failed one guarantees nothing and is discarded.
        for &ticket in &state.tickets {
            if state.failed {
                self.ftl.meta_discard(ticket);
            } else {
                self.ftl.meta_ack(ticket);
            }
        }
        if state.failed {
            self.report.faults.requests_failed += 1;
        }
        if self.tracer.is_enabled() {
            let name = match state.op {
                Op::Read => "read",
                Op::Write => "write",
            };
            let totals = Self::stage_totals(&state.spans);
            self.tracer
                .end(Class::Io, req.to_bits(), name, self.now, state.failed, &totals);
        }
        let latency = self.now - state.arrived;
        self.report.io_latency.record(latency);
        match state.op {
            Op::Read => self.report.read_latency.record(latency),
            Op::Write => self.report.write_latency.record(latency),
        }
        self.report.io_bw.record(self.now, self.page_bytes(state.total_pages));
        self.report.io_breakdown.record(&state.spans);
        self.report.requests_completed += 1;
        if let Some(log) = self.completions.as_mut() {
            log.push(Completion { tag: state.tag, at: self.now, failed: state.failed });
        }
        if self.workload.is_some() {
            self.queue.push(self.now, Ev::Admit);
        }
        self.check_gc();
        self.pump_gc();
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    fn check_gc(&mut self) {
        if self.gc.is_some() || self.report.end_of_life.is_some() {
            return;
        }
        if !self.pending_retire.is_empty() {
            // Failed superblocks jump the queue: they must leave the
            // allocator pools before normal space reclamation resumes.
            self.pump_retirement();
            if self.gc.is_some() {
                return;
            }
        }
        if !self.config.gc_continuous && !self.ftl.needs_gc() {
            return;
        }
        let Some(round) = self.ftl.start_gc_round() else { return };
        self.begin_round(round, false);
    }

    /// Installs `round` as the active GC state and starts pumping copies.
    /// A `retiring` round permanently retires its victim on completion
    /// instead of recycling it into the free pool.
    fn begin_round(&mut self, round: GcRound, retiring: bool) {
        self.report.first_gc_at.get_or_insert(self.now);
        let marker = if retiring { "gc round start (retiring)" } else { "gc round start" };
        self.tracer.instant(Track::Sim, marker, self.now);
        let mut pending: VecDeque<CopyGroup> = round.groups.iter().cloned().collect();
        if matches!(self.config.ftl.policy, dssd_ftl::GcPolicy::TinyTail { .. }) {
            // Partial GC proceeds channel by channel.
            let mut v: Vec<CopyGroup> = pending.into_iter().collect();
            v.sort_by_key(|g| g.src_die.channel);
            pending = v.into();
        }
        self.gc = Some(GcState {
            copies_expected: round.valid_pages,
            round,
            pending,
            copies_done: 0,
            erases_outstanding: 0,
            channel_inflight: vec![0; self.config.geometry.channels as usize],
            retiring,
        });
        self.pump_gc();
    }

    fn pump_gc(&mut self) {
        if self.report.end_of_life.is_some() {
            return;
        }
        loop {
            let Some(gc) = &self.gc else { return };
            if gc.pending.is_empty() {
                self.maybe_finish_round();
                return;
            }
            let host_idle = self.outstanding == 0;
            let must = self.ftl.must_gc();
            let policy = self.config.ftl.policy;
            if !policy.allows_issue(host_idle, must) {
                return;
            }
            let limit = policy.channel_limit(self.config.geometry.channels as usize);

            // Find the first issuable group. (dBUF back-pressure is
            // applied later, at the flash-bus transfer into the buffer —
            // the page read itself only occupies the die's page register.)
            let gc = self.gc.as_ref().unwrap();
            let active = gc.channel_inflight.iter().filter(|&&v| v > 0).count();
            let mut picked = None;
            for i in 0..gc.pending.len() {
                let ch = gc.pending[i].src_die.channel;
                let inflight = gc.channel_inflight[ch as usize];
                if inflight >= GC_PER_CHANNEL_INFLIGHT {
                    continue;
                }
                if inflight == 0 && active >= limit {
                    continue;
                }
                picked = Some(i);
                break;
            }
            let Some(i) = picked else { return };

            let group = self.gc.as_mut().unwrap().pending.remove(i).unwrap();
            self.issue_copy(group);
        }
    }

    fn issue_copy(&mut self, group: CopyGroup) {
        let want = group.pages.len() as u32;
        let Some(dst_group) = self.ftl.try_alloc_gc_group(want) else {
            // No erased superblock left to copy into: the device has
            // reached end of life. GC stops; writes block permanently.
            self.tracer.instant(Track::Sim, "end of life", self.now);
            self.report.end_of_life.get_or_insert(self.now);
            self.gc = None;
            return;
        };
        let take = dst_group.len().min(group.pages.len());

        // If the allocator returned fewer slots (die row boundary), the
        // remainder goes back to the pending queue as its own group.
        if take < group.pages.len() {
            let rest = CopyGroup {
                src_die: group.src_die,
                pages: group.pages[take..].to_vec(),
            };
            if let Some(gc) = &mut self.gc {
                gc.pending.push_front(rest);
            }
        }

        let pages: Vec<(Lpn, PageAddr, PageAddr)> = group.pages[..take]
            .iter()
            .zip(dst_group.addrs.iter())
            .map(|(&(lpn, src), &dst)| (lpn, src, dst))
            .collect();
        let src = pages[0].1;
        let dst = pages[0].2;
        let src_ch = group.src_die.channel;

        let dst_node = self.effective_addr(dst).channel as usize;
        let src_node = self.effective_addr(src).channel as usize;
        let cmd = self.controllers[src_node]
            .queue_mut()
            .submit(CommandKind::Copyback { dst_node });
        let id = self.jobs.insert(CopyJob {
            pages,
            src,
            dst,
            spans: Vec::new(),
            packets_in_flight: 0,
            holds_src_dbuf: false,
            cmd,
        });
        self.tracer.begin(Class::Gc, id.to_bits(), "copyback", self.now);
        if let Some(gc) = &mut self.gc {
            gc.channel_inflight[src_ch as usize] += 1;
        }
        // Fold (time, source channel) of every issued copy into a rolling
        // digest: two runs with identical GC scheduling traces — and only
        // those — produce the same value.
        let sample = self.now.as_ns() ^ (u64::from(src_ch) << 48);
        self.report.gc_issue_digest =
            (self.report.gc_issue_digest ^ sample).wrapping_mul(0x0000_0100_0000_01B3);

        // Source read (multi-plane).
        let eff_src = self.effective_addr(src);
        let die = self.effective_die_index(src);
        let lat = FlashOp::multi_plane(FlashOpKind::Read, eff_src, take as u32)
            .array_latency(&self.config.timing, &mut self.rng);
        let (_, done) = self.dies.occupy(die, self.now, lat);
        self.job_span(id, StageKind::FlashChip, Track::Die(die as u32), done - self.now);
        self.queue.push(done, Ev::CopyAtSrcBus { job: id });
    }

    fn copy_transport(&mut self, job: JobId) {
        let j = &self.jobs[job];
        let src_ch = self.effective_addr(j.src).channel;
        let dst_ch = self.effective_addr(j.dst).channel;
        let same_channel = src_ch == dst_ch;
        match self.config.architecture {
            Architecture::Baseline | Architecture::ExtraBandwidth => {
                // ctrl -> system bus -> DRAM -> system bus -> ctrl, one
                // transaction per scattered page.
                let n = self.jobs[job].pages.len() as u32;
                let t = self.sysbus_xfer_pages(n, CLASS_GC);
                self.job_span(job, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
                self.push_leg(t.1, Ev::CopyAtDram { job });
            }
            Architecture::Dssd => {
                if same_channel {
                    self.push_leg(self.now, Ev::CopyAtDstBus { job });
                } else {
                    // Controller-to-controller: the group was gathered in
                    // the source dBUF, so it crosses as one burst.
                    let bytes = self.page_bytes(self.jobs[job].pages.len() as u32);
                    let t = self.sysbus_xfer(bytes, CLASS_GC);
                    self.job_span(job, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
                    self.push_leg(t.1, Ev::CopyAtDstBus { job });
                }
            }
            Architecture::DssdBus => {
                if same_channel {
                    self.push_leg(self.now, Ev::CopyAtDstBus { job });
                } else {
                    // One burst per gathered group over the dedicated bus.
                    let bytes = self.page_bytes(self.jobs[job].pages.len() as u32);
                    let bus = self.dedicated_bus.as_mut().expect("dSSD_b has a bus");
                    let t = bus.enqueue(self.now, bytes, CLASS_GC);
                    let track = Track::DedicatedBus;
                    self.job_span(job, StageKind::Noc, track, t.done - self.now);
                    self.push_leg(t.done, Ev::CopyAtDstBus { job });
                }
            }
            Architecture::DssdFnoc => {
                if same_channel {
                    // Stays inside the controller; release the dBUF at
                    // the destination program.
                    self.push_leg(self.now, Ev::CopyAtDstBus { job });
                    return;
                }
                // Packetize: one packet per page (Fig 4 step 5).
                let page_bytes = self.config.geometry.page_bytes as u64;
                let n = self.jobs[job].pages.len() as u32;
                self.jobs[job].packets_in_flight = n;
                for _ in 0..n {
                    let pid = self.packet_jobs.insert(job).to_bits();
                    let pkt = Packet::new(pid, src_ch as usize, dst_ch as usize, page_bytes)
                        .with_tag(job.to_bits());
                    if self.injector.as_mut().is_some_and(|i| i.noc_degrades()) {
                        // Injected link degradation: the packet times out
                        // and is re-injected after the configured delay.
                        self.tracer.instant(Track::Faults, "noc degrade", self.now);
                        self.report.faults.noc_faults += 1;
                        // The degraded region must not stay fast-forwarded:
                        // any express reservation crossing the affected
                        // route reverts to flit-level simulation
                        // (observably neutral — timings are unchanged).
                        let mut step = std::mem::take(&mut self.noc_step);
                        self.noc.as_mut().expect("dSSD_f has a NoC").demote_overlapping(
                            self.now,
                            src_ch as usize,
                            dst_ch as usize,
                            &mut step,
                        );
                        self.absorb_noc(&mut step);
                        self.noc_step = step;
                        let at = self.now + self.config.faults.noc_degrade_latency;
                        self.queue.push(at, Ev::NocRetry { pkt: Box::new(pkt) });
                        continue;
                    }
                    let mut step = std::mem::take(&mut self.noc_step);
                    self.noc.as_mut().expect("dSSD_f has a NoC").inject_into(
                        self.now,
                        pkt,
                        &mut step,
                    );
                    self.absorb_noc(&mut step);
                    self.noc_step = step;
                }
                self.cmd_advance_to(job, dssd_ctrl::CopybackStage::InNetwork);
                // Source dBUF slots free once the pages are handed to
                // the NI.
                self.release_src_dbuf(job);
            }
        }
    }

    fn release_src_dbuf(&mut self, job: JobId) {
        let j = &mut self.jobs[job];
        if !j.holds_src_dbuf {
            return;
        }
        j.holds_src_dbuf = false;
        let n = j.pages.len();
        let src = j.src;
        let ch = self.effective_addr(src).channel as usize;
        for _ in 0..n {
            self.controllers[ch].dbuf_mut().release();
        }
        self.wake_dbuf_waiters(ch);
        self.pump_gc();
    }

    /// Re-attempts the flash-bus transfer of copies stalled on dBUF
    /// space at `channel`.
    fn wake_dbuf_waiters(&mut self, channel: usize) {
        while let Some(job) = self.dbuf_waiters[channel].pop_front() {
            let need = self.jobs[job].pages.len();
            if self.controllers[channel].dbuf().available() < need {
                self.dbuf_waiters[channel].push_front(job);
                break;
            }
            self.queue.push(self.now, Ev::CopyAtSrcBus { job });
        }
    }

    fn noc_event(&mut self, ev: NocEvent) {
        let mut step = std::mem::take(&mut self.noc_step);
        self.noc.as_mut().expect("NoC event without NoC").handle_into(self.now, ev, &mut step);
        self.absorb_noc(&mut step);
        self.noc_step = step;
    }

    /// Drains a run of consecutive NoC events in one burst.
    ///
    /// The execution order is bit-identical to the event-at-a-time loop
    /// by construction: the calendar queue stays the ordering authority
    /// (`pop_if` only accepts the true minimum when it is a NoC event
    /// within the horizon), the burst merely keeps the NoC step buffer
    /// and the `self.noc` borrow hot across the run instead of paying
    /// the full outer-loop dispatch per event.
    ///
    /// Returns the number of events handled (at least 1, at most `max`).
    fn noc_burst(&mut self, first: NocEvent, max: u64) -> u64 {
        let mut step = std::mem::take(&mut self.noc_step);
        let mut ev = first;
        let mut n = 0u64;
        let horizon = self.horizon;
        loop {
            self.noc
                .as_mut()
                .expect("NoC event without NoC")
                .handle_into(self.now, ev, &mut step);
            n += 1;
            // Inline absorb: hops exist only when tracing, deliveries are
            // rare.
            if !step.hops.is_empty() {
                self.trace_noc_hops(&mut step);
            }
            // Direct consume: when the step scheduled successors and
            // delivered nothing, its earliest successor may be runnable
            // without a calendar round-trip. Eligibility mirrors the
            // chain walk: the candidate must *strictly* beat the queue
            // minimum — a queued event due at the same instant was
            // pushed first and owns the tie.
            // A deferred successor whose claim to "next event" is still
            // unresolved: it is settled against the queue head by the
            // fused `pop_if` below, and demoted to a normal push if the
            // queue wins.
            let mut cand: Option<(SimTime, NocEvent)> = None;
            // A successor already proven to be the global next event:
            // consumed without touching the queue at all.
            let mut direct: Option<(SimTime, NocEvent)> = None;
            if n < max && step.delivered.is_empty() && !step.schedule.is_empty() {
                let mut idx = 0;
                for i in 1..step.schedule.len() {
                    if step.schedule[i].0 < step.schedule[idx].0 {
                        idx = i;
                    }
                }
                let t0 = step.schedule[idx].0;
                let unique =
                    step.schedule.iter().enumerate().all(|(i, s)| i == idx || s.0 > t0);
                if t0 <= horizon {
                    if unique {
                        // Strictly earliest among its siblings: safe to
                        // defer — even if demoted, time order (not FIFO)
                        // separates it from the pushed siblings.
                        for (i, (t, e)) in step.schedule.drain(..).enumerate() {
                            if i == idx {
                                cand = Some((t, e));
                            } else {
                                self.queue.push(t, Ev::Noc(e));
                            }
                        }
                    } else if self.queue.peek_time().is_none_or(|q| q > t0) {
                        // Same-time siblings would lose their FIFO order
                        // if the first were demoted after the rest, so
                        // consume it only when the queue is *strictly*
                        // later — then it is provably next and no
                        // demotion can occur. The rest are pushed in
                        // order, exactly as the one-at-a-time path would.
                        for (i, (t, e)) in step.schedule.drain(..).enumerate() {
                            if i == idx {
                                direct = Some((t, e));
                            } else {
                                self.queue.push(t, Ev::Noc(e));
                            }
                        }
                    }
                }
            }
            if let Some((t, e)) = direct {
                self.lane_events += 1;
                self.now = t;
                ev = e;
                continue;
            }
            if cand.is_none() {
                for (t, e) in step.schedule.drain(..) {
                    self.queue.push(t, Ev::Noc(e));
                }
                if !step.delivered.is_empty() {
                    self.absorb_noc_delivered(&mut step);
                }
                if n >= max {
                    break;
                }
            }
            match cand {
                Some((t, e)) => {
                    // Pop the queue head only when it is due at or
                    // before the candidate (it owns any tie).
                    let mut blocked = false;
                    let popped = self.queue.pop_if(|qt, qe| {
                        if qt > t {
                            false // candidate wins
                        } else if matches!(qe, Ev::Noc(_)) {
                            true
                        } else {
                            blocked = true; // non-NoC due first: end burst
                            false
                        }
                    });
                    match popped {
                        Some((qt, Ev::Noc(next))) => {
                            self.queue.push(t, Ev::Noc(e));
                            self.now = qt;
                            ev = next;
                        }
                        Some(_) => unreachable!("pop_if accepted a non-NoC event"),
                        None if blocked => {
                            self.queue.push(t, Ev::Noc(e));
                            break;
                        }
                        None => {
                            // The candidate is the global minimum:
                            // consume it in place, bypassing the queue.
                            self.lane_events += 1;
                            self.now = t;
                            ev = e;
                        }
                    }
                }
                None => match self
                    .queue
                    .pop_if(|t, e| t <= horizon && matches!(e, Ev::Noc(_)))
                {
                    Some((t, Ev::Noc(next))) => {
                        self.now = t;
                        ev = next;
                    }
                    Some(_) => unreachable!("pop_if accepted a non-NoC event"),
                    None => break,
                },
            }
        }
        self.noc_step = step;
        n
    }

    /// Schedules the *final continuation* of a flash-leg handler.
    ///
    /// Off the express path this is exactly `queue.push`. On it, when the
    /// chain walk has armed deferral, the continuation is handed back to
    /// [`SsdSim::chain_walk`] instead, which executes it immediately iff
    /// it is provably the next event in the whole simulation — otherwise
    /// it is demoted to a normal push.
    ///
    /// Soundness requires every call site to be the **last** queue
    /// interaction of its handler: the demoted push then receives exactly
    /// the sequence number it would have had on the one-event-at-a-time
    /// path, so same-instant ties keep breaking identically.
    #[inline]
    fn push_leg(&mut self, t: SimTime, ev: Ev) {
        if self.chain_armed && self.chain_next.is_none() {
            self.chain_next = Some((t, ev));
        } else {
            self.queue.push(t, ev);
        }
    }

    /// Express chain walk: analytic fast-forward of an uncontended flash
    /// leg chain (channel bus → ECC → system bus / die, and the GC-copy
    /// pipeline).
    ///
    /// Handles `first`, then — as long as the continuation the handler
    /// deferred via [`SsdSim::push_leg`] is *strictly earlier* than the
    /// queue minimum — executes the next leg in place, skipping the
    /// calendar round-trip and the outer-loop dispatch. Strictness is the
    /// eligibility predicate: a queued event at the same instant was
    /// pushed first, so it owns the tie and the continuation is demoted
    /// to a normal push (rewinding is never needed — the conflict is
    /// detected *before* the leg runs, and the demoted push restores the
    /// exact event-at-a-time order). Uncontended resources are precisely
    /// the case where each leg's completion beats everything queued, so
    /// a whole read/write/copy chain collapses into one walk.
    ///
    /// Legs executed here bypass the queue and are counted in
    /// `lane_events`, which folds into `events_delivered`, the state
    /// digest, and progress ticks — express and non-express runs report
    /// identical totals.
    ///
    /// Returns the number of events handled (at least 1, at most `max`).
    fn chain_walk(&mut self, first: Ev, max: u64) -> u64 {
        let mut ev = first;
        let mut n = 0u64;
        loop {
            self.chain_armed = true;
            self.handle(ev);
            self.chain_armed = false;
            n += 1;
            let Some((t, next)) = self.chain_next.take() else { break };
            let beaten = match self.queue.peek_time() {
                Some(q) => q <= t,
                None => false,
            };
            if beaten || t > self.horizon || n >= max {
                if beaten {
                    self.chain_demoted += 1;
                }
                self.queue.push(t, next);
                break;
            }
            self.lane_events += 1;
            self.now = t;
            ev = next;
        }
        n
    }

    /// Drains a NoC [`Step`](dssd_noc::Step) into the event queue,
    /// leaving its buffers empty (capacity retained) for reuse.
    fn absorb_noc(&mut self, step: &mut dssd_noc::Step) {
        // Per-hop link slices first: `packet_jobs` entries are removed on
        // delivery, and the delivered packet's final hops ride in the same
        // step.
        if !step.hops.is_empty() {
            self.trace_noc_hops(step);
        }
        for (t, e) in step.schedule.drain(..) {
            self.queue.push(t, Ev::Noc(e));
        }
        if !step.delivered.is_empty() {
            self.absorb_noc_delivered(step);
        }
    }

    /// Emits span slices for a step's per-hop link records. Only recorded
    /// when tracing (the network records hops only after
    /// `set_record_hops`), so this path is cold.
    fn trace_noc_hops(&mut self, step: &mut dssd_noc::Step) {
        for h in step.hops.drain(..) {
            if let Some(&job) = self.packet_jobs.get(SlabKey::from_bits(h.packet)) {
                self.tracer.span_named(
                    Class::Gc,
                    job.to_bits(),
                    Track::Router(h.node as u16),
                    Stage::Noc,
                    "noc hop",
                    h.at,
                    h.link_busy,
                );
            }
        }
    }

    /// Books a step's delivered packets against their copy jobs and
    /// schedules the post-transit leg once a job's last packet lands.
    fn absorb_noc_delivered(&mut self, step: &mut dssd_noc::Step) {
        for d in step.delivered.drain(..) {
            let job = self
                .packet_jobs
                .remove(SlabKey::from_bits(d.packet.id))
                .expect("delivered packet without job");
            let j = &mut self.jobs[job];
            j.packets_in_flight -= 1;
            if j.packets_in_flight == 0 {
                self.job_span_at(
                    job,
                    StageKind::Noc,
                    Track::NocTransit,
                    d.injected_at,
                    d.latency(),
                );
                self.queue.push(self.now, Ev::CopyAtDstBus { job });
            }
        }
    }

    fn copy_done(&mut self, job: JobId) {
        self.cmd_advance_to(job, dssd_ctrl::CopybackStage::Done);
        let j = self.jobs.remove(job).expect("unknown copy job");
        let src_ch = self.effective_addr(j.src).channel as usize;
        self.controllers[src_ch].queue_mut().retire(j.cmd);
        let bytes = self.page_bytes(j.pages.len() as u32);
        debug_assert!(!j.holds_src_dbuf, "dBUF released before program");
        for &(lpn, src, dst) in &j.pages {
            self.ftl.complete_copy_at(lpn, src, dst, self.now);
        }
        self.pump_meta();
        self.report.gc_pages_copied += j.pages.len() as u64;
        self.report.gc_bw.record(self.now, bytes);
        if self.tracer.is_enabled() {
            let totals = Self::stage_totals(&j.spans);
            self.tracer
                .end(Class::Gc, job.to_bits(), "copyback", self.now, false, &totals);
        }
        self.report.copyback_breakdown.record(&j.spans);
        if let Some(gc) = &mut self.gc {
            gc.copies_done += j.pages.len();
            gc.channel_inflight[j.src.channel as usize] -= 1;
        }
        // Unblock any writes waiting for space (stale copies may already
        // have freed mapping slots? no — space frees at erase; but retry
        // is harmless).
        self.maybe_finish_round();
        self.pump_gc();
    }

    fn maybe_finish_round(&mut self) {
        let Some(gc) = &self.gc else { return };
        if !gc.pending.is_empty()
            || gc.copies_done < gc.copies_expected
            || gc.erases_outstanding > 0
        {
            return;
        }
        if gc.round.erases.is_empty() {
            self.finish_round();
            return;
        }
        // Erase each die's sub-blocks as one multi-plane erase. Ordered
        // map: TLC-style latency ranges draw the RNG per erase, so the
        // iteration order must be deterministic.
        let mut per_die: BTreeMap<usize, u32> = BTreeMap::new();
        for b in &self.gc.as_ref().unwrap().round.erases {
            let die = self.effective_die_index(b.page(0));
            *per_die.entry(die).or_insert(0) += 1;
        }
        let gc = self.gc.as_mut().unwrap();
        gc.erases_outstanding = per_die.len();
        let timing = self.config.timing;
        for (_die, planes) in per_die {
            let lat = FlashOp::multi_plane(
                FlashOpKind::Erase,
                PageAddr { channel: 0, way: 0, die: 0, plane: 0, block: 0, page: 0 },
                planes,
            )
            .array_latency(&timing, &mut self.rng);
            // Erase suspension: the erase delays the GC round by its full
            // latency but host operations preempt it, so the die is not
            // modeled as blocked (standard controller technique — without
            // it every architecture's p99 is pinned at tBERS).
            self.queue.push(self.now + lat, Ev::EraseDone);
        }
    }

    fn erase_done(&mut self) {
        let gc = self.gc.as_mut().expect("erase without round");
        gc.erases_outstanding -= 1;
        if gc.erases_outstanding == 0 {
            self.finish_round();
        }
    }

    fn finish_round(&mut self) {
        let gc = self.gc.take().expect("finishing absent round");
        self.tracer.instant(Track::Sim, "gc round done", self.now);
        self.report.gc_rounds += 1;
        if gc.retiring {
            // Relocation complete: erase the victim's blocks and retire
            // the superblock for good.
            self.ftl.finish_gc_round_retiring(&gc.round);
            self.finish_retirement(gc.round.victim);
        } else {
            self.ftl.finish_gc_round(&gc.round);
            self.apply_wear(&gc.round);
        }
        self.pump_flush();
        // Retry blocked writes now that a superblock is free.
        let blocked: Vec<_> = self.blocked_writes.drain(..).collect();
        for (id, r) in blocked {
            // The request keeps its original arrival time.
            let lpns: Vec<Lpn> = r.lpns().map(|l| l % self.ftl.lpn_count()).collect();
            match self.ftl.write_pages(&lpns) {
                Some(groups) => {
                    let tickets = self.ftl.meta_drain_tickets();
                    self.issue_write_groups(id, &groups, &lpns, &tickets, 1);
                }
                None => self.blocked_writes.push_back((id, r)),
            }
        }
        // And the write groups parked by a program failure.
        let rewrites: Vec<_> = self.blocked_rewrites.drain(..).collect();
        for (id, lpns, attempt) in rewrites {
            match self.ftl.write_pages(&lpns) {
                Some(groups) => {
                    let tickets = self.ftl.meta_drain_tickets();
                    self.reissue_write_groups(id, &groups, &lpns, &tickets, attempt, self.now);
                }
                None => self.blocked_rewrites.push_back((id, lpns, attempt)),
            }
        }
        self.pump_meta();
        self.check_gc();
        self.pump_gc();
    }

    // ------------------------------------------------------------------
    // Write-buffer flushing
    // ------------------------------------------------------------------

    /// Flushes dirty cache pages to flash in the background: the flush
    /// traffic occupies the system bus, flash buses and dies exactly like
    /// host writes, but nothing waits on it, so it is charged
    /// analytically (no completion events).
    fn pump_flush(&mut self) {
        if self.cache.is_none() {
            return;
        }
        loop {
            let mut batch: Vec<Lpn> = self.flush_backlog.drain(..).collect();
            if batch.is_empty() {
                let cache = self.cache.as_mut().unwrap();
                if !cache.needs_flush() {
                    return;
                }
                batch = cache.take_dirty(64);
                if batch.is_empty() {
                    return;
                }
            }
            match self.ftl.write_pages(&batch) {
                Some(groups) => {
                    for g in groups {
                        let addr = self.effective_addr(g.addrs[0]);
                        let die = self.effective_die_index(g.addrs[0]);
                        let bytes = self.page_bytes(g.len() as u32);
                        let (_, bus_done) = self.sysbus_xfer(bytes, CLASS_IO);
                        let t = self.flash_bus[addr.channel as usize]
                            .enqueue(bus_done, bytes, CLASS_IO);
                        let lat = FlashOp::multi_plane(
                            FlashOpKind::Program,
                            g.addrs[0],
                            g.len() as u32,
                        )
                        .array_latency(&self.config.timing, &mut self.rng);
                        self.dies.occupy(die, t.done, lat);
                    }
                    self.check_gc();
                }
                None => {
                    // Out of space: keep the batch and wait for GC.
                    self.flush_backlog = batch.into();
                    self.check_gc();
                    return;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // WAS endurance scan (Fig 14c)
    // ------------------------------------------------------------------

    fn scan_tick(&mut self) {
        let Some(was) = self.config.was_scan else { return };
        self.scan_remaining += was.tracked_blocks;
        self.pump_scan();
        let next = self.now + was.interval;
        if next <= self.horizon {
            self.queue.push(next, Ev::ScanTick);
        }
    }

    fn pump_scan(&mut self) {
        while self.scan_remaining > 0 && self.scan_inflight < SCAN_INFLIGHT {
            self.scan_remaining -= 1;
            self.scan_inflight += 1;
            // One page read from a random die, through flash bus, system
            // bus and into DRAM — the software path WAS must take.
            let die = self.rng.index(self.dies.len());
            let geo = self.config.geometry;
            let ch = (self.config.geometry.die_at(die).channel) as usize;
            let read = FlashOp::single(
                FlashOpKind::Read,
                PageAddr { channel: ch as u32, way: 0, die: 0, plane: 0, block: 0, page: 0 },
            )
            .array_latency(&self.config.timing, &mut self.rng);
            let (_, die_done) = self.dies.occupy(die, self.now, read);
            let bytes = geo.page_bytes as u64;
            let t1 = self.flash_bus[ch].enqueue(die_done, bytes, CLASS_SCAN);
            let t2 = self.sysbus_xfer_at(t1.done, bytes, CLASS_SCAN);
            let t3 = self.dram.enqueue(t2.1, bytes, CLASS_SCAN);
            self.queue.push(t3.done, Ev::ScanReadDone);
        }
    }

    // ------------------------------------------------------------------
    // Copyback command-queue tracking (Fig 4's R/RE/N/W status field)
    // ------------------------------------------------------------------

    /// Advances job `job`'s copyback command until it reaches `target`.
    fn cmd_advance_to(&mut self, job: JobId, target: dssd_ctrl::CopybackStage) {
        let Some(j) = self.jobs.get(job) else { return };
        let ch = self.effective_addr(j.src).channel as usize;
        let cmd = j.cmd;
        while self.controllers[ch]
            .queue()
            .stage(cmd)
            .is_some_and(|s| s < target)
        {
            self.controllers[ch].queue_mut().advance(cmd);
        }
    }

    /// The decoupled controller command queue of `channel` (inspection).
    #[must_use]
    pub fn command_queue(&self, channel: usize) -> &CommandQueue {
        self.controllers[channel].queue()
    }

    /// The decoupled controller of `channel` (inspection).
    #[must_use]
    pub fn controller(&self, channel: usize) -> &DecoupledController {
        &self.controllers[channel]
    }

    // ------------------------------------------------------------------
    // Online dynamic superblocks (Sec 5)
    // ------------------------------------------------------------------

    /// Charges accelerated wear for the round's erases; worn (or
    /// erase-failed) sub-blocks are repaired through the SRT/RBT on
    /// decoupled architectures or retire the superblock outright.
    fn apply_wear(&mut self, round: &dssd_ftl::GcRound) {
        if self.wear.is_none() {
            return;
        }
        let accel = self.config.dynamic_sb.map(|d| d.wear_acceleration.max(1));
        let mut worn = Vec::new();
        for b in &round.erases {
            // Wear accrues on the block physically backing the slot.
            let idx = self.resolve_block(*b) as usize;
            if self.wear.as_ref().unwrap().is_worn_out(idx) {
                continue;
            }
            if self.injector.as_mut().is_some_and(|i| i.erase_fails()) {
                // Injected erase failure: the block dies on the spot,
                // whatever its endurance budget said.
                self.tracer.instant(Track::Faults, "erase failure", self.now);
                self.report.faults.erase_failures += 1;
                self.report.faults.blocks_retired += 1;
                self.wear.as_mut().unwrap().force_worn(idx);
                worn.push(*b);
                continue;
            }
            let Some(accel) = accel else { continue };
            let wear = self.wear.as_mut().unwrap();
            let mut dead = false;
            for _ in 0..accel {
                if wear.erase(idx) == EraseOutcome::WornOut {
                    dead = true;
                    break;
                }
            }
            if dead {
                worn.push(*b);
            }
        }
        if worn.is_empty() {
            return;
        }
        let mut repaired_all = true;
        if self.config.architecture.is_decoupled() {
            for b in &worn {
                if !self.try_remap_worn(*b) {
                    repaired_all = false;
                }
            }
        } else {
            repaired_all = false;
        }
        if repaired_all {
            return;
        }
        // Conventional bad-superblock management: retire it whole. The
        // round's victim was just erased, so it holds no valid pages.
        if self.ftl.retire_superblock(round.victim) {
            self.report.bad_superblocks += 1;
            if self.config.architecture.is_decoupled() {
                // Still-good sub-blocks feed the recycle bins.
                for b in self.ftl.layout().sub_blocks(round.victim).collect::<Vec<_>>() {
                    let idx = self.resolve_block(b);
                    if !self.wear.as_ref().unwrap().is_worn_out(idx as usize) {
                        let _ = self.controllers[b.channel as usize].rbt_mut().deposit(idx);
                    }
                }
            }
        }
    }

    /// Replaces a worn sub-block with a recycled one: SRT entry in the
    /// failing controller plus a live timing remap, so the replacement's
    /// channel/die conflicts are visible to every subsequent access.
    fn try_remap_worn(&mut self, b: dssd_flash::BlockAddr) -> bool {
        let geo = self.config.geometry;
        let ch = b.channel as usize;
        let spare = self.controllers[ch].rbt_mut().take().or_else(|| {
            (0..self.controllers.len())
                .filter(|&c| c != ch)
                .find_map(|c| self.controllers[c].rbt_mut().take())
        });
        let Some(spare) = spare else { return false };
        let key = geo.block_index(b) as u32;
        if self.controllers[ch].srt_mut().insert(key, spare).is_err() {
            let _ = self.controllers[ch].rbt_mut().deposit(spare);
            return false;
        }
        let spare_addr = geo.block_at(spare as usize);
        let die_idx = b.channel + geo.channels * b.way + geo.channels * geo.ways * b.die;
        self.remap.insert(
            b.block,
            die_idx,
            spare_addr.channel,
            spare_addr.way,
            spare_addr.die,
        );
        self.report.dynamic_remaps += 1;
        self.tracer.instant(Track::Faults, "dynamic remap", self.now);
        true
    }

    /// The block physically backing slot `b` after any SRT remapping.
    fn resolve_block(&self, b: dssd_flash::BlockAddr) -> u32 {
        let geo = self.config.geometry;
        let key = geo.block_index(b) as u32;
        self.controllers
            .get(b.channel as usize)
            .and_then(|c| c.srt().lookup(key))
            .unwrap_or(key)
    }

    // ------------------------------------------------------------------
    // Fault injection and in-band failure handling
    // ------------------------------------------------------------------

    /// Issues freshly allocated host write groups: each group crosses the
    /// system bus (host DMA) and then enters the flash path. `attempt`
    /// seeds the per-group program-failure budget; `tickets` are the
    /// durability-model tickets drained right after `Ftl::write_pages`
    /// (one per group, empty when the model is disabled).
    fn issue_write_groups(
        &mut self,
        req: ReqId,
        groups: &[AllocGroup],
        lpns: &[Lpn],
        tickets: &[u32],
        attempt: u32,
    ) {
        self.register_tickets(req, tickets);
        // LPNs ride along only when a failed program may need them.
        let carry = self.injector.is_some();
        let mut off = 0usize;
        for (i, g) in groups.iter().enumerate() {
            let n = g.len();
            let sub = if carry { Some(lpns[off..off + n].to_vec()) } else { None };
            off += n;
            let eff = self.effective_addr(g.addrs[0]);
            let die = self.effective_die_index(g.addrs[0]);
            let pages = n as u32;
            let bytes = self.page_bytes(pages);
            let t = self.sysbus_xfer(bytes, CLASS_IO);
            self.req_span(req, StageKind::SystemBus, Track::SysBus, t.1 - self.now);
            self.queue.push(
                t.1,
                Ev::WriteAtCtrl {
                    leg: Box::new(WriteLeg {
                        req,
                        die,
                        pages,
                        channel: eff.channel,
                        addr: g.addrs[0],
                        lpns: sub,
                        attempt,
                        ticket: tickets.get(i).copied().unwrap_or(META_NO_TICKET),
                    }),
                },
            );
        }
    }

    /// Attaches freshly drained durability tickets to their owning
    /// request (redeemed at completion).
    fn register_tickets(&mut self, req: ReqId, tickets: &[u32]) {
        if tickets.is_empty() {
            return;
        }
        if let Some(st) = self.requests.get_mut(req) {
            st.tickets.extend_from_slice(tickets);
        }
    }

    /// Re-issues re-allocated write groups after a program failure. The
    /// data is still in the controller, so only the flash path is charged
    /// (no second host DMA across the system bus).
    fn reissue_write_groups(
        &mut self,
        req: ReqId,
        groups: &[AllocGroup],
        lpns: &[Lpn],
        tickets: &[u32],
        attempt: u32,
        at: SimTime,
    ) {
        self.register_tickets(req, tickets);
        let mut off = 0usize;
        for (i, g) in groups.iter().enumerate() {
            let n = g.len();
            let sub = Some(lpns[off..off + n].to_vec());
            off += n;
            let eff = self.effective_addr(g.addrs[0]);
            let die = self.effective_die_index(g.addrs[0]);
            self.queue.push(
                at,
                Ev::WriteAtCtrl {
                    leg: Box::new(WriteLeg {
                        req,
                        die,
                        pages: n as u32,
                        channel: eff.channel,
                        addr: g.addrs[0],
                        lpns: sub,
                        attempt,
                        ticket: tickets.get(i).copied().unwrap_or(META_NO_TICKET),
                    }),
                },
            );
        }
    }

    /// Programs one host write group, with an optional injected failure
    /// surfacing in the status read after the program time was spent.
    fn write_at_die(&mut self, leg: WriteLeg) {
        let lat = FlashOp::multi_plane(FlashOpKind::Program, leg.addr, leg.pages)
            .array_latency(&self.config.timing, &mut self.rng);
        let (_, done) = self.dies.occupy(leg.die, self.now, lat);
        let track = Track::Die(leg.die as u32);
        self.req_span(leg.req, StageKind::FlashChip, track, done - self.now);
        if self.injector.as_mut().is_some_and(|i| i.program_fails()) {
            // The failure surfaces in the status read after program time.
            self.tracer.instant(Track::Faults, "program failure", done);
            self.report.faults.program_failures += 1;
            self.handle_program_failure(leg, done);
            return;
        }
        // The group's OOB becomes durable when the program completes at
        // `done`; a crash before then tears these pages.
        self.ftl.meta_mark_programmed(leg.ticket, done);
        self.pump_meta();
        self.push_leg(done, Ev::WriteDone { req: leg.req, pages: leg.pages });
    }

    /// A program reported failure: retire the block, then re-allocate and
    /// re-issue the group — or complete the request as failed once the
    /// attempt budget is spent.
    fn handle_program_failure(&mut self, leg: WriteLeg, at: SimTime) {
        // A failed program leaves no durable OOB record and journals no
        // mapping op; the re-allocation below issues a fresh ticket.
        self.ftl.meta_mark_torn(leg.ticket);
        if leg.ticket != META_NO_TICKET {
            if let Some(st) = self.requests.get_mut(leg.req) {
                if let Some(pos) = st.tickets.iter().position(|&t| t == leg.ticket) {
                    st.tickets.swap_remove(pos);
                }
            }
        }
        self.mark_block_bad(leg.addr.block_addr());
        let out_of_budget = leg.attempt >= self.config.faults.max_program_attempts;
        let Some(lpns) = leg.lpns.filter(|_| !out_of_budget) else {
            // Attempts exhausted: the write completes, but the request is
            // surfaced to the host as failed.
            if let Some(st) = self.requests.get_mut(leg.req) {
                st.failed = true;
            }
            self.queue.push(at, Ev::WriteDone { req: leg.req, pages: leg.pages });
            return;
        };
        match self.ftl.write_pages(&lpns) {
            Some(groups) => {
                let tickets = self.ftl.meta_drain_tickets();
                self.reissue_write_groups(
                    leg.req,
                    &groups,
                    &lpns,
                    &tickets,
                    leg.attempt + 1,
                    at,
                );
            }
            None => {
                // No space for the re-allocation: park it until GC frees
                // a superblock.
                self.blocked_rewrites.push_back((leg.req, lpns, leg.attempt + 1));
                self.check_gc();
            }
        }
    }

    /// The ECC stage of a host read group: decode timing, then — when
    /// fault injection is enabled — an in-band verdict that can trigger a
    /// read-retry or an uncorrectable-read recovery.
    fn read_at_ecc(&mut self, mut leg: ReadLeg) {
        let bytes = self.page_bytes(leg.pages);
        let t = self.controllers[leg.channel as usize]
            .ecc_mut()
            .decode_as(self.now, bytes, CLASS_IO);
        let track = Track::ChannelEcc(leg.channel as u16);
        self.req_span(leg.req, StageKind::Ecc, track, t.done - self.now);
        if self.injector.is_none() {
            self.push_leg(t.done, Ev::ReadAtSysbus { req: leg.req, pages: leg.pages });
            return;
        }
        match self.classify_read(&mut leg) {
            EccVerdict::Clean | EccVerdict::Corrected => {
                if leg.attempt > 0 {
                    // A retry pulled the data back under the correction
                    // threshold.
                    self.report.faults.reads_recovered += 1;
                }
                self.push_leg(t.done, Ev::ReadAtSysbus { req: leg.req, pages: leg.pages });
            }
            EccVerdict::Uncorrectable => {
                if leg.attempt < self.config.faults.max_read_retries {
                    self.schedule_read_retry(leg, t.done);
                } else {
                    self.fail_read(leg, t.done);
                }
            }
        }
    }

    /// Decides the decode verdict for one read group. The first attempt
    /// draws the injected fault class (or falls back to the wear model's
    /// RBER); retries re-check — hard failures stay uncorrectable,
    /// transient ones recover with `retry_success_prob`.
    fn classify_read(&mut self, leg: &mut ReadLeg) -> EccVerdict {
        let uncorrectable = self.config.ecc.correctable_rber;
        let corrected = self.config.ecc.clean_rber;
        let rber = if leg.attempt == 0 {
            match self.injector.as_mut().expect("classify without injector").read_outcome()
            {
                ReadFault::Hard => {
                    leg.hard = true;
                    uncorrectable
                }
                ReadFault::Transient => uncorrectable,
                ReadFault::None => {
                    let r = self.block_rber(leg.addr);
                    if r >= uncorrectable {
                        // Worn-out media: every re-read sees the same RBER.
                        leg.hard = true;
                    }
                    r
                }
            }
        } else if leg.hard {
            uncorrectable
        } else if self.injector.as_mut().unwrap().retry_recovers() {
            // Decoded successfully at a shifted reference voltage.
            corrected
        } else {
            uncorrectable
        };
        self.controllers[leg.channel as usize].ecc_mut().check(rber)
    }

    /// RBER of the block physically backing `addr`, per the wear model.
    /// Fresh (never-erased) blocks read as error-free rather than sitting
    /// exactly on the `Corrected` threshold.
    fn block_rber(&self, addr: PageAddr) -> f64 {
        let Some(wear) = &self.wear else { return 0.0 };
        let idx = self.resolve_block(addr.block_addr()) as usize;
        if wear.pe_count(idx) == 0 {
            return 0.0;
        }
        wear.rber(idx)
    }

    /// Issues one read-retry: the die is re-sensed with escalated latency
    /// (deeper reference-voltage sweeps), then the data crosses the flash
    /// bus to the ECC engine again.
    fn schedule_read_retry(&mut self, mut leg: ReadLeg, at: SimTime) {
        leg.attempt += 1;
        let base = FlashOp::multi_plane(FlashOpKind::Read, leg.addr, leg.pages)
            .array_latency(&self.config.timing, &mut self.rng);
        let factor = self.config.faults.retry_latency_factor.powi(leg.attempt as i32);
        let lat = SimSpan::from_ns((base.as_ns() as f64 * factor).round() as u64);
        let (_, done) = self.dies.occupy(leg.die, at, lat);
        self.req_span_at(
            leg.req,
            StageKind::FlashChip,
            Track::Die(leg.die as u32),
            at,
            done - at,
        );
        self.tracer.instant(Track::Faults, "read retry", at);
        self.report.faults.read_retries += 1;
        self.report.faults.retry_latency += done - at;
        self.queue.push(done, Ev::ReadAtBus { leg: Box::new(leg) });
    }

    /// Retries exhausted: the read is uncorrectable. The failing block is
    /// retired, the request is marked failed for the report, and the
    /// (front-end-reconstructed) data still crosses the system bus so the
    /// request completes instead of hanging.
    fn fail_read(&mut self, leg: ReadLeg, at: SimTime) {
        self.tracer.instant(Track::Faults, "uncorrectable read", at);
        self.report.faults.uncorrectable_reads += 1;
        if let Some(st) = self.requests.get_mut(leg.req) {
            st.failed = true;
        }
        self.mark_block_bad(leg.addr.block_addr());
        self.queue.push(at, Ev::ReadAtSysbus { req: leg.req, pages: leg.pages });
    }

    /// A block failed in service (program failure or uncorrectable read):
    /// mark it worn, then repair through the SRT/RBT on decoupled
    /// architectures or queue its superblock for online retirement.
    fn mark_block_bad(&mut self, b: dssd_flash::BlockAddr) {
        let idx = self.resolve_block(b) as usize;
        if let Some(w) = self.wear.as_mut() {
            if w.is_worn_out(idx) {
                // Already handled (reads racing on the same dying block).
                return;
            }
            w.force_worn(idx);
        }
        self.tracer.instant(Track::Faults, "block retired", self.now);
        self.report.faults.blocks_retired += 1;
        if self.config.architecture.is_decoupled() && self.try_remap_worn(b) {
            return;
        }
        self.schedule_retirement(b.block);
    }

    /// Queues superblock `sb` for online retirement (idempotent) and
    /// tries to start it immediately.
    fn schedule_retirement(&mut self, sb: u32) {
        if !self.pending_retire.contains(&sb)
            && !self.ftl.retired_superblocks().contains(&sb)
        {
            self.pending_retire.push_back(sb);
        }
        self.pump_retirement();
    }

    /// Starts the next queued superblock retirement if no GC round is
    /// active: empty superblocks retire immediately; sealed ones get a
    /// relocation round first; active ones wait until they rotate out.
    fn pump_retirement(&mut self) {
        if self.gc.is_some() || self.report.end_of_life.is_some() {
            return;
        }
        for _ in 0..self.pending_retire.len() {
            let sb = self.pending_retire.pop_front().expect("checked non-empty");
            if self.ftl.retired_superblocks().contains(&sb) {
                // Raced with a wear-driven retirement of the same victim.
                continue;
            }
            if self.ftl.superblock_valid_pages(sb) == 0 {
                if self.ftl.retire_superblock(sb) {
                    self.finish_retirement(sb);
                    continue;
                }
                // Active superblock: re-queue until it rotates out.
                self.pending_retire.push_back(sb);
                continue;
            }
            // Live data must be relocated first: run a GC round against
            // this specific victim and retire it on completion.
            match self.ftl.start_gc_round_on(sb) {
                Some(round) => {
                    self.begin_round(round, true);
                    return;
                }
                // Active (host or GC) superblock: try again later.
                None => self.pending_retire.push_back(sb),
            }
        }
    }

    /// Accounting for a completed superblock retirement: on decoupled
    /// architectures the still-healthy sub-blocks feed the recycle bins.
    fn finish_retirement(&mut self, sb: u32) {
        self.tracer.instant(Track::Faults, "superblock retired", self.now);
        self.report.bad_superblocks += 1;
        self.report.faults.superblocks_retired += 1;
        if self.config.architecture.is_decoupled() {
            for b in self.ftl.layout().sub_blocks(sb).collect::<Vec<_>>() {
                let idx = self.resolve_block(b);
                let healthy =
                    !self.wear.as_ref().is_some_and(|w| w.is_worn_out(idx as usize));
                if healthy {
                    let _ = self.controllers[b.channel as usize].rbt_mut().deposit(idx);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn page_bytes(&self, pages: u32) -> u64 {
        pages as u64 * self.config.geometry.page_bytes as u64
    }

    /// Enqueues a system-bus transfer at `now`, recording utilization.
    fn sysbus_xfer(&mut self, bytes: u64, class: usize) -> (SimTime, SimTime) {
        self.sysbus_xfer_at(self.now, bytes, class)
    }

    fn sysbus_xfer_at(&mut self, at: SimTime, bytes: u64, class: usize) -> (SimTime, SimTime) {
        let t = self.sysbus.enqueue(at, bytes, class);
        match class {
            CLASS_IO => self.report.sysbus_io_util.record_busy(t.start, t.done),
            CLASS_GC => self.report.sysbus_gc_util.record_busy(t.start, t.done),
            _ => {}
        }
        (t.start, t.done)
    }

    /// GC moves scattered pages, so each page is its own bus transaction
    /// (own descriptor + arbitration), unlike host bursts. Returns the
    /// first start and last completion.
    fn sysbus_xfer_pages(&mut self, n: u32, class: usize) -> (SimTime, SimTime) {
        let page = self.config.geometry.page_bytes as u64;
        let extra = self.config.gc_page_overhead;
        let mut first = self.now;
        let mut last = self.now;
        for i in 0..n {
            let t = self.sysbus.enqueue_extra(self.now, page, class, extra);
            match class {
                CLASS_IO => self.report.sysbus_io_util.record_busy(t.start, t.done),
                CLASS_GC => self.report.sysbus_gc_util.record_busy(t.start, t.done),
                _ => {}
            }
            if i == 0 {
                first = t.start;
            }
            last = t.done;
        }
        (first, last)
    }

    /// Per-page DRAM transactions for GC staging.
    fn dram_xfer_pages(&mut self, n: u32, class: usize) -> (SimTime, SimTime) {
        let page = self.config.geometry.page_bytes as u64;
        let extra = self.config.gc_page_overhead;
        let mut first = self.now;
        let mut last = self.now;
        for i in 0..n {
            let tr = self.dram.enqueue_extra(self.now, page, class, extra);
            if i == 0 {
                first = tr.start;
            }
            last = tr.done;
        }
        (first, last)
    }

    /// Maps a simulator [`StageKind`] onto the telemetry [`Stage`] with the
    /// same dense index (the two taxonomies mirror each other exactly).
    fn tele_stage(stage: StageKind) -> Stage {
        Stage::ALL[stage.index()]
    }

    /// Attributes `span` of `stage` time to request `req`, both in the
    /// latency breakdown and (when tracing) as a timeline slice starting
    /// at `self.now` on `track`. Single funnel: the trace slice and the
    /// breakdown entry are always the same duration.
    fn req_span(&mut self, req: ReqId, stage: StageKind, track: Track, span: SimSpan) {
        let now = self.now;
        self.req_span_at(req, stage, track, now, span);
    }

    /// [`SsdSim::req_span`] with an explicit slice start (for spans that
    /// begin at a scheduled time rather than `self.now`).
    fn req_span_at(
        &mut self,
        req: ReqId,
        stage: StageKind,
        track: Track,
        start: SimTime,
        span: SimSpan,
    ) {
        let Some(r) = self.requests.get_mut(req) else { return };
        r.spans.push((stage, span));
        self.tracer
            .span(Class::Io, req.to_bits(), track, Self::tele_stage(stage), start, span);
    }

    /// Attributes `span` of `stage` time to GC job `job`; see
    /// [`SsdSim::req_span`].
    fn job_span(&mut self, job: JobId, stage: StageKind, track: Track, span: SimSpan) {
        let now = self.now;
        self.job_span_at(job, stage, track, now, span);
    }

    /// [`SsdSim::job_span`] with an explicit slice start.
    fn job_span_at(
        &mut self,
        job: JobId,
        stage: StageKind,
        track: Track,
        start: SimTime,
        span: SimSpan,
    ) {
        let Some(j) = self.jobs.get_mut(job) else { return };
        j.spans.push((stage, span));
        self.tracer
            .span(Class::Gc, job.to_bits(), track, Self::tele_stage(stage), start, span);
    }

    /// Sums a request/job span list into per-stage totals indexed by
    /// [`StageKind::index`] (what [`Tracer::end`] feeds the summary).
    fn stage_totals(spans: &[(StageKind, SimSpan)]) -> [SimSpan; 6] {
        let mut totals = [SimSpan::ZERO; 6];
        for &(k, s) in spans {
            totals[k.index()] += s;
        }
        totals
    }

    /// Samples every epoch boundary at or before `t` (cold path — only
    /// reached when epoch sampling is enabled).
    fn sample_epochs_until(&mut self, t: SimTime) {
        while let Some(next) = self.epoch.as_ref().map(|e| e.next) {
            if next > t || next > self.horizon {
                break;
            }
            self.sample_epoch(next);
        }
    }

    /// Collects one epoch row at boundary `at`. Read-only with respect to
    /// simulation state: it only inspects queues, meters and counters.
    fn sample_epoch(&mut self, at: SimTime) {
        let Some(mut probe) = self.epoch.take() else { return };
        let dt = probe.every.as_secs_f64();
        let epoch_ns = probe.every.as_ns() as f64;
        let prev = probe.prev;

        let io_bytes = self.report.io_bw.total_bytes();
        let gc_bytes = self.report.gc_bw.total_bytes();
        let completed = self.report.requests_completed;
        let gc_pages = self.report.gc_pages_copied;
        let sysbus_io_busy_ns = self.report.sysbus_io_util.total_busy().as_ns();
        let sysbus_gc_busy_ns = self.report.sysbus_gc_util.total_busy().as_ns();
        let ecc_busy_ns: u64 = self
            .controllers
            .iter()
            .map(|c| (c.ecc().class_busy(CLASS_IO) + c.ecc().class_busy(CLASS_GC)).as_ns())
            .sum();
        let credit_stalls = self.noc.as_ref().map_or(0, |n| n.stats().credit_stalls);
        let faults = self.report.faults.injected_total();

        probe.series.push_row(vec![
            at.as_ns() as f64 / 1e6,
            self.outstanding as f64,
            self.controllers.iter().map(|c| c.queue().len()).sum::<usize>() as f64,
            self.controllers.iter().map(|c| c.dbuf().in_use()).sum::<usize>() as f64,
            self.ftl.free_superblocks() as f64,
            f64::from(u8::from(self.gc.is_some())),
            self.gc.as_ref().map_or(0, |g| g.pending.len()) as f64,
            self.jobs.len() as f64,
            self.noc.as_ref().map_or(0, |n| n.in_flight()) as f64,
            (io_bytes - prev.io_bytes) as f64 / dt / 1e9,
            (gc_bytes - prev.gc_bytes) as f64 / dt / 1e9,
            (sysbus_io_busy_ns - prev.sysbus_io_busy_ns) as f64 / epoch_ns,
            (sysbus_gc_busy_ns - prev.sysbus_gc_busy_ns) as f64 / epoch_ns,
            (ecc_busy_ns - prev.ecc_busy_ns) as f64
                / (epoch_ns * self.controllers.len().max(1) as f64),
            (credit_stalls - prev.credit_stalls) as f64 / dt,
            (completed - prev.completed) as f64 / dt,
            (gc_pages - prev.gc_pages) as f64 / dt,
            (faults - prev.faults) as f64 / dt,
        ]);
        probe.prev = EpochPrev {
            io_bytes,
            gc_bytes,
            completed,
            gc_pages,
            sysbus_io_busy_ns,
            sysbus_gc_busy_ns,
            ecc_busy_ns,
            credit_stalls,
            faults,
        };
        probe.next = at + probe.every;
        self.epoch = Some(probe);
    }

    fn job_src(&self, job: JobId) -> (u64, usize) {
        let j = &self.jobs[job];
        (
            self.page_bytes(j.pages.len() as u32),
            self.effective_addr(j.src).channel as usize,
        )
    }

    fn job_dst(&self, job: JobId) -> (u64, usize) {
        let j = &self.jobs[job];
        (
            self.page_bytes(j.pages.len() as u32),
            self.effective_addr(j.dst).channel as usize,
        )
    }

    /// Applies the timing-level SRT remap (Fig 15a) to an address.
    fn effective_addr(&self, addr: PageAddr) -> PageAddr {
        if self.remap.is_empty() {
            return addr;
        }
        let g = &self.config.geometry;
        let die_idx = addr.channel + g.channels * addr.way + g.channels * g.ways * addr.die;
        match self.remap.get(addr.block, die_idx) {
            Some((ch, way, die)) => PageAddr { channel: ch, way, die, ..addr },
            None => addr,
        }
    }

    fn effective_die_index(&self, addr: PageAddr) -> usize {
        self.effective_die_index_raw(self.effective_addr(addr))
    }

    fn effective_die_index_raw(&self, addr: PageAddr) -> usize {
        self.config.geometry.die_index(addr.die_addr())
    }
}

/// `SyntheticWorkload::bind` applied lazily: the sim binds the workload to
/// its own LPN space.
trait BindCheck {
    fn bind_check(self, lpn_count: u64) -> SyntheticWorkload;
}

impl BindCheck for SyntheticWorkload {
    fn bind_check(self, lpn_count: u64) -> SyntheticWorkload {
        self.bind(lpn_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Architecture;
    use dssd_workload::AccessPattern;

    fn run(
        arch: Architecture,
        pages: u32,
        prefill: bool,
        ms: u64,
    ) -> (f64, f64, u64) {
        let mut sim = SsdSim::new(SsdConfig::test_tiny(arch));
        if prefill {
            sim.prefill();
        }
        let wl = SyntheticWorkload::writes(AccessPattern::Random, pages);
        let report = sim.run_closed_loop(wl, SimSpan::from_ms(ms));
        (
            report.io_bandwidth_gbps(),
            report.gc_bandwidth_gbps(),
            report.gc_rounds,
        )
    }

    #[test]
    fn event_stays_small() {
        // Every event-queue entry copies an `Ev` on push and pop, and the
        // calendar buckets min-scan them, so the enum's size is hot-path
        // memory traffic. Large payloads (write/read legs, retried
        // packets) are boxed to keep it lean; this guards against a new
        // variant silently fattening every queue operation.
        assert!(
            std::mem::size_of::<Ev>() <= 40,
            "Ev grew to {} bytes; box the large payload",
            std::mem::size_of::<Ev>()
        );
    }

    #[test]
    fn fresh_drive_low_bandwidth_matches_calibration() {
        // test_tiny: 8 ch x 8 ways = 64 dies; 4 KB random writes with no
        // GC: 64 x 51.2 MB/s = 3.28 GB/s — the paper's "approximately
        // 3 GB/s ... sustained initially" (Fig 2a).
        let (io, gc, _) = run(Architecture::Baseline, 1, false, 10);
        assert!(gc < 1e-3, "no GC expected on a fresh drive, got {gc}");
        assert!((io - 3.28).abs() < 0.35, "io {io} GB/s vs expected 3.28");
    }

    #[test]
    fn fresh_drive_high_bandwidth_uses_planes() {
        // 8-page (32 KB) writes: 64 dies x 409.6 MB/s = 26 GB/s of
        // demand, capped near the 8 GB/s system bus (the paper's
        // "maximum bandwidth ... approximately 8 GB/s"). Short window:
        // the tiny test drive has ~200 MB of headroom before GC.
        let (io, _, _) = run(Architecture::Baseline, 8, false, 5);
        assert!(io > 6.0, "io {io} GB/s should approach the 8 GB/s bus");
        assert!(io < 8.2, "io {io} GB/s exceeds the system bus");
    }

    #[test]
    fn gc_degrades_baseline_io() {
        let (fresh, _, _) = run(Architecture::Baseline, 8, false, 5);
        let (aged, gc, rounds) = run(Architecture::Baseline, 8, true, 20);
        assert!(rounds > 0, "prefilled drive must run GC");
        assert!(gc > 0.0);
        assert!(
            aged < fresh * 0.85,
            "GC must visibly degrade I/O: fresh {fresh}, aged {aged}"
        );
    }

    #[test]
    fn decoupled_architectures_beat_baseline_under_gc() {
        // The Fig 7 regime: I/O fully utilizes the SSD while GC runs
        // continuously.
        let measure = |arch: Architecture| {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
            let r = sim.run_closed_loop(wl, SimSpan::from_ms(25));
            (r.io_bandwidth_gbps(), r.gc_bandwidth_gbps())
        };
        let (base_io, base_gc) = measure(Architecture::Baseline);
        let (fnoc_io, fnoc_gc) = measure(Architecture::DssdFnoc);
        assert!(
            fnoc_io > base_io * 1.15,
            "dSSD_f io {fnoc_io} must clearly beat baseline {base_io}"
        );
        assert!(
            fnoc_gc > base_gc * 1.10,
            "dSSD_f gc {fnoc_gc} must clearly beat baseline {base_gc}"
        );
    }

    #[test]
    fn all_architectures_run_and_complete_requests() {
        for arch in Architecture::all() {
            let mut sim = SsdSim::new(SsdConfig::test_tiny(arch));
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 4);
            let report = sim.run_closed_loop(wl, SimSpan::from_ms(10));
            assert!(
                report.requests_completed > 100,
                "{}: only {} requests",
                arch.label(),
                report.requests_completed
            );
        }
    }

    #[test]
    fn dram_hit_workload_reaches_sysbus_bandwidth() {
        let mut sim = SsdSim::new(SsdConfig::test_tiny(Architecture::Baseline));
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8)
            .with_dram_hit_fraction(1.0);
        let report = sim.run_closed_loop(wl, SimSpan::from_ms(10));
        let io = report.io_bandwidth_gbps();
        // 8 GB/s system bus minus per-transaction overhead.
        assert!(io > 6.0, "DRAM-hit io {io} GB/s");
        assert!(report.gc_rounds == 0);
    }

    #[test]
    fn dram_hit_io_isolated_from_gc_only_on_dssd_f() {
        let measure = |arch: Architecture| {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            // All host I/O hits DRAM, while GC rages underneath; hold
            // moderate load so contention (not QD) limits throughput.
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8)
                .with_dram_hit_fraction(1.0)
                .with_queue_depth(8);
            // write pressure to keep GC running comes from GC trigger at
            // prefill edge: inject flash writes via a second phase is not
            // needed; prefill left us below threshold, so GC starts at
            // the first check.
            let report = sim.run_closed_loop(wl, SimSpan::from_ms(10));
            (report.io_bandwidth_gbps(), report.gc_pages_copied)
        };
        let (base_io, base_copied) = measure(Architecture::Baseline);
        let (fnoc_io, fnoc_copied) = measure(Architecture::DssdFnoc);
        assert!(base_copied > 0 && fnoc_copied > 0, "GC must run in both");
        assert!(
            fnoc_io > base_io,
            "GC steals bus from DRAM-hit I/O only on baseline: {base_io} vs {fnoc_io}"
        );
    }

    #[test]
    fn tail_latency_ordering_baseline_vs_fnoc() {
        // The Fig 10a regime: DRAM-cached I/O with GC running
        // underneath. Baseline copybacks clog the system bus the I/O
        // needs; dSSD_f isolates them on the fNoC.
        let p99 = |arch: Architecture| {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8)
                .with_dram_hit_fraction(1.0);
            sim.run_closed_loop(wl, SimSpan::from_ms(15));
            sim.report_mut().latency_percentile(0.99).as_us_f64()
        };
        let base = p99(Architecture::Baseline);
        let fnoc = p99(Architecture::DssdFnoc);
        assert!(
            fnoc * 2.0 < base,
            "dSSD_f p99 {fnoc}us must be far below baseline {base}us"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let go = || {
            let mut sim = SsdSim::new(SsdConfig::test_tiny(Architecture::DssdFnoc));
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
            let r = sim.run_closed_loop(wl, SimSpan::from_ms(10));
            (
                r.requests_completed,
                r.gc_pages_copied,
                r.io_bw.total_bytes(),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn reads_flow_through_full_pipeline() {
        let mut sim = SsdSim::new(SsdConfig::test_tiny(Architecture::Baseline));
        sim.prefill();
        let wl = SyntheticWorkload::reads(AccessPattern::Random, 1);
        let report = sim.run_closed_loop(wl, SimSpan::from_ms(10));
        assert!(report.requests_completed > 1000);
        assert!(report.read_latency.count() > 0);
        // Breakdown must include chip, flash bus, ecc and system bus.
        let b = &report.io_breakdown;
        assert!(b.mean_us(StageKind::FlashChip) > 0.0);
        assert!(b.mean_us(StageKind::FlashBus) > 0.0);
        assert!(b.mean_us(StageKind::Ecc) > 0.0);
        assert!(b.mean_us(StageKind::SystemBus) > 0.0);
    }

    #[test]
    fn copyback_breakdown_shows_architecture_difference() {
        let breakdown = |arch: Architecture| {
            let mut sim = SsdSim::new(SsdConfig::test_tiny(arch));
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
            sim.run_closed_loop(wl, SimSpan::from_ms(20));
            (
                sim.report().copyback_breakdown.mean_us(StageKind::SystemBus),
                sim.report().copyback_breakdown.mean_us(StageKind::Noc),
                sim.report().copyback_breakdown.count(),
            )
        };
        let (base_sys, base_noc, base_n) = breakdown(Architecture::Baseline);
        let (fnoc_sys, fnoc_noc, fnoc_n) = breakdown(Architecture::DssdFnoc);
        assert!(base_n > 0 && fnoc_n > 0);
        assert!(base_sys > 0.0, "baseline copyback must use the system bus");
        assert!(base_noc == 0.0);
        assert!(fnoc_sys == 0.0, "dSSD_f copyback must never use the system bus");
        assert!(fnoc_noc > 0.0, "dSSD_f copyback must use the fNoC");
    }

    #[test]
    fn srt_remaps_degrade_performance() {
        // Fig 15a: remapped sub-blocks collide on channels/dies, which
        // slows GC and — at steady state, where sustained writes are
        // paced by GC reclaim — drags I/O down with it. A long window is
        // needed so the space balance (not the transient) is measured.
        let io_at = |remaps: usize| {
            let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
            cfg.srt_active_remaps = remaps;
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
            let r = sim.run_closed_loop(wl, SimSpan::from_ms(80));
            (r.mean_latency().as_us_f64(), r.gc_bandwidth_gbps())
        };
        let (clean_lat, clean_gc) = io_at(0);
        let (remapped_lat, remapped_gc) = io_at(1024);
        assert!(
            remapped_gc < clean_gc,
            "heavy remapping must slow GC: {clean_gc} vs {remapped_gc}"
        );
        assert!(
            remapped_lat > clean_lat,
            "GC-paced writes must wait longer: {clean_lat}us vs {remapped_lat}us"
        );
    }

    #[test]
    fn was_scans_inflate_io_latency() {
        let mean_latency = |scan: Option<crate::WasScanConfig>| {
            let mut cfg = SsdConfig::test_tiny(Architecture::Baseline);
            cfg.was_scan = scan;
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 1);
            let r = sim.run_closed_loop(wl, SimSpan::from_ms(15));
            r.mean_latency().as_us_f64()
        };
        let without = mean_latency(None);
        let with = mean_latency(Some(crate::WasScanConfig {
            tracked_blocks: 16384,
            interval: SimSpan::from_ms(3),
        }));
        assert!(
            with > without * 1.05,
            "WAS scans must contend with I/O: {without} vs {with}"
        );
    }

    #[test]
    fn trace_replay_completes() {
        let mut sim = SsdSim::new(SsdConfig::test_tiny(Architecture::Baseline));
        sim.prefill();
        let reqs: Vec<(SimTime, Request)> = (0..500)
            .map(|i| {
                (
                    SimTime::from_us(i * 20),
                    Request::new(if i % 3 == 0 { Op::Read } else { Op::Write }, i * 7, 2),
                )
            })
            .collect();
        let report = sim.run_trace(reqs, SimSpan::from_ms(50));
        assert_eq!(report.requests_completed, 500);
        assert!(report.mean_latency().as_ns() > 0);
    }
}

#[cfg(test)]
mod dynamic_sb_tests {
    use super::*;
    use crate::{Architecture, DynamicSbConfig};
    use dssd_workload::AccessPattern;

    fn aged_config(arch: Architecture) -> SsdConfig {
        let mut cfg = SsdConfig::test_tiny(arch);
        cfg.gc_continuous = true;
        // Accelerated aging: blocks survive only a handful of erases, so
        // wear-out events occur within a short window.
        cfg.dynamic_sb = Some(DynamicSbConfig {
            pe_mean: 8.0,
            pe_sigma: 4.0,
            wear_acceleration: 4,
            ..DynamicSbConfig::default()
        });
        cfg
    }

    fn run(cfg: SsdConfig, ms: u64) -> SsdSim {
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
        sim.run_closed_loop(wl, SimSpan::from_ms(ms));
        sim
    }

    #[test]
    fn decoupled_architecture_repairs_worn_blocks() {
        let sim = run(aged_config(Architecture::DssdFnoc), 60);
        let r = sim.report();
        assert!(
            r.dynamic_remaps > 0,
            "worn sub-blocks must be recycled through the SRT/RBT"
        );
        assert!(r.gc_rounds > 0);
    }

    #[test]
    fn conventional_architecture_only_retires() {
        let sim = run(aged_config(Architecture::Baseline), 60);
        let r = sim.report();
        assert_eq!(r.dynamic_remaps, 0, "no SRT hardware on the baseline");
        assert!(
            r.bad_superblocks > 0,
            "accelerated wear must kill superblocks on the baseline"
        );
        assert_eq!(
            sim.ftl().retired_superblocks().len(),
            r.bad_superblocks as usize
        );
    }

    #[test]
    fn recycling_loses_fewer_superblocks_than_retiring() {
        let base = run(aged_config(Architecture::Baseline), 60);
        let fnoc = run(aged_config(Architecture::DssdFnoc), 60);
        // Same wear distribution and comparable GC volume: the decoupled
        // controller keeps superblocks alive that the baseline loses.
        assert!(
            fnoc.report().bad_superblocks < base.report().bad_superblocks,
            "recycled {} vs retired {}",
            fnoc.report().bad_superblocks,
            base.report().bad_superblocks
        );
    }

    #[test]
    fn reservation_prefill_shrinks_visible_pool() {
        let mut cfg = aged_config(Architecture::DssdFnoc);
        if let Some(d) = &mut cfg.dynamic_sb {
            d.reserved_fraction = 0.1;
        }
        // Reservation retires superblocks up front (invisible to the FTL,
        // visible as retired + recycled stock).
        let sim = SsdSim::new(cfg);
        assert!(!sim.ftl().retired_superblocks().is_empty());
    }

    #[test]
    fn copyback_commands_are_tracked_and_retired() {
        let sim = run(
            {
                let mut c = SsdConfig::test_tiny(Architecture::DssdFnoc);
                c.gc_continuous = true;
                c
            },
            15,
        );
        let mut submitted = 0;
        for ch in 0..sim.config().geometry.channels as usize {
            let q = sim.command_queue(ch);
            submitted += q.submitted();
            // In-flight commands are only those of the currently active
            // round; every finished copy was retired.
            assert_eq!(q.submitted() - q.retired(), q.len() as u64, "channel {ch}");
        }
        assert!(submitted > 100, "copyback commands must flow: {submitted}");
    }
}

#[cfg(test)]
mod end_of_life_tests {
    use super::*;
    use crate::{Architecture, DynamicSbConfig};
    use dssd_workload::AccessPattern;

    /// The paper's headline lifetime claim, validated online: under
    /// identical accelerated wear, the drive with recycled blocks
    /// reaches wear-out end-of-life later than the conventional one.
    #[test]
    fn recycling_extends_online_lifetime() {
        let eol = |arch: Architecture| {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            cfg.dynamic_sb = Some(DynamicSbConfig {
                pe_mean: 5.0,
                pe_sigma: 2.5,
                wear_acceleration: 5,
                ..DynamicSbConfig::default()
            });
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
            let r = sim.run_closed_loop(wl, SimSpan::from_ms(250));
            (r.end_of_life, r.io_bw.total_bytes())
        };
        let (base_eol, base_bytes) = eol(Architecture::Baseline);
        let (fnoc_eol, fnoc_bytes) = eol(Architecture::DssdFnoc);
        assert!(base_eol.is_some(), "baseline must wear out in this regime");
        match fnoc_eol {
            None => {} // outlived the whole window: strictly better
            Some(t) => assert!(
                t > base_eol.unwrap(),
                "recycling must delay EOL: {t} vs {}",
                base_eol.unwrap()
            ),
        }
        assert!(
            fnoc_bytes > base_bytes,
            "more host data written before death: {fnoc_bytes} vs {base_bytes}"
        );
    }
}

#[cfg(test)]
mod gc_policy_tests {
    use super::*;
    use crate::Architecture;
    use dssd_ftl::GcPolicy;
    use dssd_workload::AccessPattern;

    fn run_policy(policy: GcPolicy, ms: u64) -> u64 {
        let mut cfg = SsdConfig::test_tiny(Architecture::ExtraBandwidth);
        cfg.gc_continuous = true;
        cfg.prefill_target_free = 12; // plenty of space: never forced
        cfg.ftl.policy = policy;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
        sim.run_closed_loop(wl, SimSpan::from_ms(ms));
        sim.report().gc_pages_copied
    }

    #[test]
    fn preemptive_gc_defers_to_busy_host() {
        // With queue depth 64 the host is never idle and the free pool
        // never reaches the hard threshold, so semi-preemptive GC copies
        // (almost) nothing while parallel GC rips along.
        let parallel = run_policy(GcPolicy::Parallel, 10);
        let preemptive =
            run_policy(GcPolicy::Preemptive { hard_free_superblocks: 1 }, 10);
        assert!(parallel > 1000, "parallel GC must make progress: {parallel}");
        assert!(
            preemptive < parallel / 4,
            "preemptive GC must defer: {preemptive} vs {parallel}"
        );
    }

    #[test]
    fn tinytail_limits_concurrent_gc_channels() {
        // TinyTail's partial GC copies more slowly than full-parallel GC
        // (its whole point: spare the other channels for I/O).
        let parallel = run_policy(GcPolicy::Parallel, 10);
        let tinytail = run_policy(GcPolicy::TinyTail { concurrent_channels: 1 }, 10);
        assert!(
            tinytail < parallel,
            "1-channel GC cannot outrun 8-channel GC: {tinytail} vs {parallel}"
        );
        assert!(tinytail > 0, "TinyTail still makes progress");
    }

    #[test]
    fn forced_preemptive_gc_eventually_runs() {
        // With a tight free pool the hard threshold is hit and preemptive
        // GC runs even against a busy host.
        let mut cfg = SsdConfig::test_tiny(Architecture::ExtraBandwidth);
        cfg.ftl.policy = GcPolicy::Preemptive {
            hard_free_superblocks: cfg.ftl.gc_hard_free,
        };
        cfg.prefill_target_free = cfg.ftl.gc_hard_free + 1;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
        sim.run_closed_loop(wl, SimSpan::from_ms(20));
        assert!(
            sim.report().gc_pages_copied > 500,
            "forced GC must run: {}",
            sim.report().gc_pages_copied
        );
    }
}

#[cfg(test)]
mod write_cache_tests {
    use super::*;
    use crate::Architecture;
    use dssd_workload::AccessPattern;

    fn run_with_cache(cache_pages: Option<usize>, qd: usize) -> SsdSim {
        let mut cfg = SsdConfig::test_tiny(Architecture::Baseline);
        cfg.write_cache_pages = cache_pages;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let before = sim.ftl().stats().host_pages_written;
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8).with_queue_depth(qd);
        sim.run_closed_loop(wl, SimSpan::from_ms(10));
        assert!(
            sim.ftl().stats().host_pages_written > before,
            "flushes must still reach flash"
        );
        sim
    }

    #[test]
    fn cache_absorbs_writes_at_dram_speed() {
        // At moderate queue depth, write-back acknowledges from DRAM
        // while flushing proceeds in the background. (Under saturation
        // the flush traffic re-loads the bus and the benefit disappears —
        // which is why the write buffer helps bursts, not steady floods.)
        let cached = run_with_cache(Some(4096), 4);
        let raw = run_with_cache(None, 4);
        let lc = cached.report().mean_latency().as_us_f64();
        let lr = raw.report().mean_latency().as_us_f64();
        assert!(
            lc < lr / 3.0,
            "write-back latency {lc}us must be far below write-through {lr}us"
        );
    }

    #[test]
    fn cached_reads_hit_recent_writes() {
        // Mixed read/write over a hot working set: reads hit the buffer.
        let mut cfg = SsdConfig::test_tiny(Architecture::Baseline);
        cfg.write_cache_pages = Some(16384);
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::mixed(AccessPattern::Random, 8, 0.5)
            .with_working_set(8192);
        sim.run_closed_loop(wl, SimSpan::from_ms(5));
        let cache_hits = sim.cache_hits().expect("cache enabled");
        assert!(cache_hits > 0, "hot-set re-reads must hit the buffer");
    }

    #[test]
    fn flush_backlog_survives_space_pressure() {
        // Small cache + heavy writes: flushing competes with GC for
        // space; everything must drain without loss or panic.
        let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
        cfg.write_cache_pages = Some(512);
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
        sim.run_closed_loop(wl, SimSpan::from_ms(30));
        assert!(sim.report().gc_rounds > 0, "GC must run under flush pressure");
        assert!(sim.ftl().stats().host_pages_written > 10_000);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::{Architecture, FaultConfig};
    use dssd_workload::AccessPattern;

    fn run_with(
        arch: Architecture,
        faults: FaultConfig,
        reads: bool,
        gc_continuous: bool,
        ms: u64,
    ) -> SsdSim {
        let mut cfg = SsdConfig::test_tiny(arch);
        cfg.faults = faults;
        cfg.gc_continuous = gc_continuous;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = if reads {
            SyntheticWorkload::reads(AccessPattern::Random, 4)
        } else {
            SyntheticWorkload::writes(AccessPattern::Random, 4)
        };
        sim.run_closed_loop(wl, SimSpan::from_ms(ms));
        sim
    }

    #[test]
    fn zero_rate_counters_stay_zero() {
        for arch in [Architecture::Baseline, Architecture::DssdFnoc] {
            for reads in [false, true] {
                let sim = run_with(arch, FaultConfig::none(), reads, false, 5);
                assert_eq!(
                    sim.report().faults,
                    crate::FaultCounters::default(),
                    "{}: zero-rate run must not count faults",
                    arch.label()
                );
                assert!(sim.report().requests_completed > 100);
            }
        }
    }

    #[test]
    fn unreachable_fault_class_is_bit_identical_to_no_injector() {
        // The baseline has no fNoC, so with only the NoC rate nonzero the
        // injector is constructed but never consulted on a drawn path —
        // the run must be bit-identical to one without the subsystem.
        let go = |faults: FaultConfig| {
            let sim = run_with(Architecture::Baseline, faults, false, false, 5);
            let r = sim.report();
            (r.requests_completed, r.gc_pages_copied, r.io_bw.total_bytes(), r.faults)
        };
        let mut noc_only = FaultConfig::none();
        noc_only.noc_degrade_prob = 1.0;
        assert_eq!(go(FaultConfig::none()), go(noc_only));
    }

    #[test]
    fn transient_read_faults_retry_and_mostly_recover() {
        let mut f = FaultConfig::none();
        f.read_transient_prob = 0.2;
        let sim = run_with(Architecture::DssdFnoc, f, true, false, 5);
        let c = sim.report().faults;
        assert!(c.read_retries > 0, "transient faults must trigger retries");
        assert!(c.reads_recovered > 0, "most retries must recover");
        assert!(c.retry_latency > SimSpan::ZERO);
        assert!(
            c.reads_recovered + c.uncorrectable_reads > 0
                && c.reads_recovered > c.uncorrectable_reads,
            "recovered {} vs uncorrectable {}",
            c.reads_recovered,
            c.uncorrectable_reads
        );
        assert!(sim.report().requests_completed > 100, "I/O must keep flowing");
    }

    #[test]
    fn hard_read_faults_retire_blocks_online() {
        let mut f = FaultConfig::none();
        f.read_hard_prob = 0.002;
        let sim = run_with(Architecture::DssdFnoc, f, true, false, 10);
        let r = sim.report();
        let c = r.faults;
        assert!(c.uncorrectable_reads > 0, "hard faults must exhaust retries");
        assert!(c.blocks_retired > 0, "failing blocks must be retired");
        // Every declared-uncorrectable read burned the whole budget (legs
        // still mid-retry at the horizon can push the count higher).
        assert!(
            c.read_retries
                >= c.uncorrectable_reads * u64::from(sim.config().faults.max_read_retries),
            "retries {} for {} uncorrectable reads",
            c.read_retries,
            c.uncorrectable_reads
        );
        assert!(c.requests_failed > 0 && c.requests_failed <= c.uncorrectable_reads);
        // The first failure finds an empty RBT and retires the whole
        // superblock; its healthy sub-blocks then stock the bins, so
        // later failures remap silently.
        assert!(
            c.superblocks_retired > 0 && r.dynamic_remaps > 0,
            "retired {} remaps {}",
            c.superblocks_retired,
            r.dynamic_remaps
        );
        assert_eq!(r.bad_superblocks as u64, c.superblocks_retired);
        assert_eq!(
            sim.ftl().retired_superblocks().len() as u64,
            c.superblocks_retired
        );
    }

    #[test]
    fn conventional_architecture_retires_instead_of_remapping() {
        let mut f = FaultConfig::none();
        f.read_hard_prob = 0.002;
        // Baseline GC shares the system bus with host reads, so the
        // relocation round of the first retirement needs a longer window.
        let sim = run_with(Architecture::Baseline, f, true, false, 25);
        let r = sim.report();
        assert_eq!(r.dynamic_remaps, 0, "no SRT hardware on the baseline");
        assert!(r.faults.superblocks_retired > 0);
        assert_eq!(
            sim.ftl().retired_superblocks().len() as u64,
            r.faults.superblocks_retired
        );
    }

    #[test]
    fn program_failures_reallocate_and_complete() {
        let mut f = FaultConfig::none();
        f.program_fail_prob = 0.01;
        let sim = run_with(Architecture::DssdFnoc, f, false, false, 5);
        let c = sim.report().faults;
        assert!(c.program_failures > 0, "program faults must fire");
        assert!(c.blocks_retired > 0, "failed programs must retire blocks");
        assert!(sim.report().requests_completed > 100, "writes must complete");
        // With a 3-attempt budget and a 1% rate, surfacing a failure to
        // the host (p^3) should be rare to absent.
        assert!(c.requests_failed <= c.program_failures / 10);
    }

    #[test]
    fn erase_failures_kill_blocks_at_gc_time() {
        let mut f = FaultConfig::none();
        f.erase_fail_prob = 0.05;
        let sim = run_with(Architecture::DssdFnoc, f, false, true, 20);
        let r = sim.report();
        assert!(r.gc_rounds > 0, "GC must run");
        assert!(r.faults.erase_failures > 0, "erase faults must fire at GC");
        assert!(r.faults.blocks_retired >= r.faults.erase_failures);
        assert!(r.dynamic_remaps > 0, "erase-failed blocks are remapped");
    }

    #[test]
    fn noc_degradation_delays_but_does_not_lose_packets() {
        let mut f = FaultConfig::none();
        f.noc_degrade_prob = 0.05;
        let sim = run_with(Architecture::DssdFnoc, f, false, true, 15);
        let r = sim.report();
        assert!(r.faults.noc_faults > 0, "link degradations must fire");
        assert!(r.gc_pages_copied > 0, "GC must still make progress");
        assert!(
            r.gc_rounds > 0,
            "rounds must close: every delayed packet is re-injected"
        );
    }

    #[test]
    fn fault_counters_are_deterministic_per_seed() {
        let go = || {
            let mut f = FaultConfig::none();
            f.read_transient_prob = 0.1;
            f.read_hard_prob = 0.001;
            f.program_fail_prob = 0.005;
            f.erase_fail_prob = 0.02;
            f.noc_degrade_prob = 0.02;
            let sim = run_with(Architecture::DssdFnoc, f, false, true, 10);
            let r = sim.report();
            (r.faults, r.requests_completed, r.gc_pages_copied, r.io_bw.total_bytes())
        };
        assert_eq!(go(), go());
    }
}
