//! Shard planning for intra-run parallel execution of the SSD simulator.
//!
//! The sharded engine (`--shards N`) splits the simulator's future-event
//! list into per-shard calendar queues (`dssd_kernel::ShardedQueue`) that
//! are merged back in exact global `(time, rank, seq)` order, so results
//! are byte-identical to the single-queue engine for every shard count.
//! This module owns the *placement policy*: which shard an event's home
//! resource belongs to, and the conservative lookahead that bounds how
//! soon work at one shard can affect another.
//!
//! Placement follows the hardware partition the paper's floorplan
//! suggests:
//!
//! * **Channels** (and the dies, buses and decoupled controllers behind
//!   them) are split into contiguous blocks, one block per shard.
//! * **fNoC routers** reuse [`dssd_noc::RegionMap`], aligned with the
//!   channel blocks because terminal *i* of the fNoC is channel *i*'s
//!   controller.
//! * **Central resources** (host interface, system bus, DRAM, FTL) have
//!   no spatial home; their events round-robin across shards, which
//!   affects load balance only — never ordering, because the merge is a
//!   total order over global keys.
//!
//! The lookahead is the minimum latency through either cross-shard
//! coupling surface: one flit serialization plus the router pipeline on
//! an fNoC boundary link, or one page transfer on a channel bus. It is
//! advisory for the queue-sharded engine (which orders exactly and needs
//! no barrier), but documents the window a barrier-synchronized execution
//! of the same partition would use (see `dssd_kernel::shard`).

use dssd_kernel::SimSpan;
use dssd_noc::RegionMap;

use crate::config::SsdConfig;

/// Placement policy mapping simulator events onto event-queue shards.
///
/// # Example
///
/// ```
/// use dssd_ssd::{Architecture, ShardPlan, SsdConfig};
///
/// let cfg = SsdConfig::test_tiny(Architecture::DssdFnoc).with_shards(2);
/// let mut plan = ShardPlan::new(&cfg);
/// assert_eq!(plan.shards(), 2);
/// assert_eq!(plan.shard_of_channel(0), 0);
/// assert!(!plan.lookahead().is_zero());
/// // Central events spread deterministically across all shards.
/// let first = plan.next_central();
/// assert!(first < 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: usize,
    channel_shard: Vec<usize>,
    regions: RegionMap,
    lookahead: SimSpan,
    central_rr: usize,
}

impl ShardPlan {
    /// Builds the plan for `config` (using `config.shards`, floor 1).
    #[must_use]
    pub fn new(config: &SsdConfig) -> Self {
        let shards = config.shards.max(1);
        let channels = config.geometry.channels as usize;
        let chunk = channels.div_ceil(shards).max(1);
        let channel_shard = (0..channels)
            .map(|c| (c / chunk).min(shards - 1))
            .collect();
        // Resolve the fNoC link bandwidth the way the simulator does
        // (bisection normalization of the dedicated on-chip budget) so
        // the derived lookahead reflects the links actually simulated.
        let mut nc = config.noc;
        if nc.link_bytes_per_sec == 0 {
            nc = nc.with_bisection_bandwidth(config.dedicated_budget_bytes_per_sec().max(1));
        }
        let regions = RegionMap::new(&nc, shards);
        let noc_cross = regions.min_cross_latency(&nc);
        let bus_page = SimSpan::for_transfer(
            u64::from(config.geometry.page_bytes),
            config.flash_bus_bytes_per_sec.max(1),
        ) + config.bus_overhead;
        ShardPlan {
            shards,
            channel_shard,
            regions,
            lookahead: noc_cross.min(bus_page),
            central_rr: 0,
        }
    }

    /// Number of event-queue shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning flash channel `channel` and everything behind it
    /// (dies, channel bus, decoupled controller).
    #[must_use]
    pub fn shard_of_channel(&self, channel: u32) -> usize {
        let c = channel as usize;
        if c < self.channel_shard.len() {
            self.channel_shard[c]
        } else {
            c % self.shards
        }
    }

    /// The shard owning fNoC node `node` (terminal routers and the
    /// crossbar hub), via the contiguous region map.
    #[must_use]
    pub fn shard_of_node(&self, node: usize) -> usize {
        self.regions.region_of(node).min(self.shards - 1)
    }

    /// The shard for the next centrally-homed event (host interface,
    /// system bus, DRAM, FTL bookkeeping). Deterministic round-robin:
    /// the choice balances load but cannot change results, because the
    /// sharded queue merges on total global order.
    pub fn next_central(&mut self) -> usize {
        let s = self.central_rr;
        self.central_rr = (self.central_rr + 1) % self.shards;
        s
    }

    /// The conservative cross-shard lookahead: the minimum of one flit
    /// serialization plus the router pipeline (fNoC boundary link) and
    /// one page transfer on a channel bus (plus per-transfer overhead).
    /// Always positive.
    #[must_use]
    pub fn lookahead(&self) -> SimSpan {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::config::Architecture;

    #[test]
    fn channels_partition_into_contiguous_blocks() {
        let cfg = SsdConfig::test_tiny(Architecture::DssdFnoc).with_shards(2);
        let plan = ShardPlan::new(&cfg);
        let channels = cfg.geometry.channels;
        let mut last = 0;
        for c in 0..channels {
            let s = plan.shard_of_channel(c);
            assert!(s < plan.shards());
            assert!(s >= last && s <= last + 1, "blocks must be contiguous");
            last = s;
        }
        assert_eq!(last, plan.shards() - 1, "every shard owns channels");
    }

    #[test]
    fn more_shards_than_channels_still_maps_all_channels() {
        let cfg = SsdConfig::test_tiny(Architecture::Dssd).with_shards(64);
        let plan = ShardPlan::new(&cfg);
        for c in 0..cfg.geometry.channels {
            assert!(plan.shard_of_channel(c) < plan.shards());
        }
        // Out-of-range channels (defensive) still land on a valid shard.
        assert!(plan.shard_of_channel(1000) < plan.shards());
    }

    #[test]
    fn node_map_aligns_with_channel_map() {
        // fNoC terminal i is channel i's controller, so the region map
        // and the channel map must agree on every terminal.
        let cfg = SsdConfig::test_tiny(Architecture::DssdFnoc).with_shards(2);
        let plan = ShardPlan::new(&cfg);
        for c in 0..cfg.geometry.channels {
            assert_eq!(plan.shard_of_node(c as usize), plan.shard_of_channel(c));
        }
    }

    #[test]
    fn central_round_robin_covers_all_shards() {
        let cfg = SsdConfig::test_tiny(Architecture::Baseline).with_shards(3);
        let mut plan = ShardPlan::new(&cfg);
        let seen: Vec<usize> = (0..6).map(|_| plan.next_central()).collect();
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn lookahead_is_positive_for_every_architecture() {
        for arch in [
            Architecture::Baseline,
            Architecture::Dssd,
            Architecture::DssdBus,
            Architecture::DssdFnoc,
        ] {
            let cfg = SsdConfig::test_tiny(arch).with_shards(4);
            let plan = ShardPlan::new(&cfg);
            assert!(!plan.lookahead().is_zero(), "{arch:?}");
        }
    }
}
