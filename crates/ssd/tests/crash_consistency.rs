//! Crash-consistency integration tests: the fault stream across
//! snapshot/restore boundaries, crashpoint placement in zero-rate runs,
//! and journal traffic gating.
//!
//! The large-scale sweep (hundreds of crashpoints per seed) lives in
//! `crates/reliability/tests/crash_consistency.rs`; these tests pin the
//! stream-discipline properties the sweep relies on.

use dssd_kernel::SimSpan;
use dssd_ssd::{
    Architecture, DurabilityConfig, FaultConfig, FaultInjector, RunPlan, RunState, SimSnapshot,
    SsdConfig, SsdSim,
};
use dssd_workload::{AccessPattern, SyntheticWorkload};

fn faulty_durable_config() -> SsdConfig {
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.05;
    f.read_hard_prob = 0.002;
    f.program_fail_prob = 0.002;
    f.erase_fail_prob = 0.01;
    f.noc_degrade_prob = 0.01;
    cfg.faults = f;
    cfg.durability = Some(DurabilityConfig::default());
    cfg
}

fn plan() -> RunPlan {
    RunPlan {
        workload: SyntheticWorkload::mixed(AccessPattern::Random, 8, 0.5),
        duration: SimSpan::from_ms(3),
    }
}

/// Satellite 3, part 1: the `FaultInjector` stream is bit-identical
/// across a snapshot/restore boundary. A run with every fault class
/// enabled is snapshotted mid-flight; the restored sim must finish with
/// the same fault counters, the same report, and the same fault-stream
/// RNG position as the uninterrupted run.
#[test]
fn fault_stream_survives_snapshot_restore_bit_identically() {
    let cfg = faulty_durable_config();
    let plan = plan();

    // Uninterrupted reference run.
    let mut base = SsdSim::new(cfg.clone());
    base.prefill();
    base.begin_closed_loop(plan.workload.clone(), plan.duration);
    base.run_events(u64::MAX);
    let base_digest = base.fault_stream_digest().expect("faults enabled");
    let base_report = format!("{:?}", base.finish_run());

    // Snapshot mid-run, restore, and finish.
    let mut mother = SsdSim::new(cfg.clone());
    mother.prefill();
    mother.begin_closed_loop(plan.workload.clone(), plan.duration);
    assert_eq!(mother.run_events(4_000), RunState::Paused);
    let snap = SimSnapshot::capture(&mother, &plan);
    let bytes = snap.to_bytes();

    let restored = SimSnapshot::from_bytes(&bytes).expect("snapshot decodes");
    let mut resumed = restored.restore(cfg, &plan).expect("restore succeeds");
    assert_eq!(
        resumed.fault_stream_digest(),
        mother.fault_stream_digest(),
        "fault stream position must match at the snapshot point"
    );
    resumed.run_events(u64::MAX);
    assert_eq!(resumed.fault_stream_digest(), Some(base_digest));
    assert_eq!(format!("{:?}", resumed.finish_run()), base_report);
}

/// The raw `to_parts`/`from_parts` cycle preserves the stream exactly:
/// a rebuilt injector reproduces the original's outcome sequence draw
/// for draw.
#[test]
fn injector_parts_roundtrip_is_bit_identical() {
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.3;
    f.read_hard_prob = 0.05;
    f.program_fail_prob = 0.1;
    f.erase_fail_prob = 0.1;
    f.noc_degrade_prob = 0.2;
    let mut a = FaultInjector::new(f, 99);

    // Burn an arbitrary prefix so the capture point is mid-stream.
    for _ in 0..137 {
        a.read_outcome();
        a.program_fails();
    }

    let (config, state, gauss) = a.to_parts();
    let mut b = FaultInjector::from_parts(config, state, gauss);
    assert_eq!(a.stream_digest(), b.stream_digest());

    for i in 0..5_000 {
        assert_eq!(a.read_outcome(), b.read_outcome(), "read draw {i}");
        assert_eq!(a.retry_recovers(), b.retry_recovers(), "retry draw {i}");
        assert_eq!(a.program_fails(), b.program_fails(), "program draw {i}");
        assert_eq!(a.erase_fails(), b.erase_fails(), "erase draw {i}");
        assert_eq!(a.noc_degrades(), b.noc_degrades(), "noc draw {i}");
        assert_eq!(a.stream_digest(), b.stream_digest(), "digest after round {i}");
    }
}

/// Satellite 3, part 2 (mechanism): every decision method guards its
/// draw behind a nonzero rate, so zero-rate fault classes never consume
/// stream state — which is what makes crashpoint placement unable to
/// perturb the fault stream in zero-rate runs.
#[test]
fn zero_rate_draws_never_touch_the_stream() {
    // Only the NoC class is armed (the injector must be constructible),
    // so the four zero-rate classes must leave the stream untouched.
    let mut f = FaultConfig::none();
    f.noc_degrade_prob = 0.5;
    let mut inj = FaultInjector::new(f, 7);
    let before = inj.stream_digest();
    for _ in 0..1_000 {
        assert_eq!(inj.read_outcome(), dssd_ssd::ReadFault::None);
        assert!(!inj.program_fails());
        assert!(!inj.erase_fails());
    }
    assert_eq!(inj.stream_digest(), before, "zero-rate calls must not draw");
    inj.noc_degrades();
    assert_ne!(inj.stream_digest(), before, "an armed class does draw");
}

/// Satellite 3, part 3 (whole-sim): in a zero-fault-rate run, forking
/// crashpoints off the mother sim at different placements neither
/// perturbs the mother nor trips a recovery invariant — the mother's
/// final report equals a fresh uninterrupted run's.
#[test]
fn crashpoint_placement_cannot_perturb_zero_rate_runs() {
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.durability = Some(DurabilityConfig::default());
    let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
    let dur = SimSpan::from_ms(2);

    let mut reference = SsdSim::new(cfg.clone());
    reference.prefill();
    reference.run_closed_loop(wl.clone(), dur);
    let reference_report = format!("{:?}", reference.report());

    let mut mother = SsdSim::new(cfg);
    mother.prefill();
    mother.begin_closed_loop(wl, dur);
    for placement in [500u64, 900, 1_700] {
        assert_eq!(mother.run_events(placement), RunState::Paused);
        let mut fork = mother.clone();
        fork.force_power_loss();
        let rec = fork.report().recovery.expect("forced loss reports recovery");
        assert!(rec.invariants_hold(), "crashpoint fork violated invariants");
    }
    mother.run_events(u64::MAX);
    mother.finish_run();
    assert_eq!(
        format!("{:?}", mother.report()),
        reference_report,
        "forked crashpoints must not perturb the mother run"
    );
}

/// Journal traffic is strictly gated: with durability off the sim has
/// no metadata stats at all, and with it on the journal actually moves
/// flash pages.
#[test]
fn journal_traffic_is_charged_only_when_durability_is_on() {
    let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
    let dur = SimSpan::from_ms(2);

    let mut plain = SsdSim::new(SsdConfig::test_tiny(Architecture::DssdFnoc));
    plain.prefill();
    plain.run_closed_loop(wl.clone(), dur);
    assert!(plain.meta_stats().is_none(), "durability off ⇒ no metadata model");

    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.durability = Some(DurabilityConfig::default());
    let mut durable = SsdSim::new(cfg);
    durable.prefill();
    durable.run_closed_loop(wl, dur);
    let stats = durable.meta_stats().expect("durability on ⇒ metadata stats");
    assert!(stats.journal_pages > 0, "host writes must flush journal pages");
    assert!(stats.journal_entries > 0);
}
