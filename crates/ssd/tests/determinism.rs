//! Determinism gates for the allocation-free hot paths.
//!
//! Two layers of protection:
//!
//! * **Replay identity** — two simulators built from the same config must
//!   produce identical reports *and* identical GC scheduling traces (the
//!   `gc_issue_digest` folds the `(time, channel)` of every issued copy,
//!   so a hash-map-iteration-order hazard anywhere in the GC scheduler
//!   shows up as a digest mismatch).
//! * **Golden fingerprints** — the optimized simulator must stay
//!   bit-identical to the pre-optimization implementation. The constants
//!   below were captured from the heap-only / hash-map simulator
//!   immediately before the slab/calendar/flat-Vec migration.

use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, FaultConfig, SsdConfig, SsdSim};
use dssd_workload::{AccessPattern, SyntheticWorkload};

/// Compact, order-sensitive digest of one run.
fn fingerprint(mut sim: SsdSim, reads: bool, ms: u64) -> String {
    sim.prefill();
    let wl = if reads {
        SyntheticWorkload::reads(AccessPattern::Random, 4)
    } else {
        SyntheticWorkload::writes(AccessPattern::Random, 8)
    };
    sim.run_closed_loop(wl, SimSpan::from_ms(ms));
    let p99 = sim.report_mut().latency_percentile(0.99).as_ns();
    let r = sim.report();
    format!(
        "req={} gc_pages={} gc_rounds={} io_bytes={} gc_bytes={} mean_ns={} p99_ns={} first_gc={:?} remaps={} bad_sb={}",
        r.requests_completed,
        r.gc_pages_copied,
        r.gc_rounds,
        r.io_bw.total_bytes(),
        r.gc_bw.total_bytes(),
        r.mean_latency().as_ns(),
        p99,
        r.first_gc_at.map(|t| t.as_ns()),
        r.dynamic_remaps,
        r.bad_superblocks,
    )
}

#[test]
fn identical_runs_produce_identical_gc_scheduling_traces() {
    for arch in Architecture::all() {
        let run = || {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            let mut sim = SsdSim::new(cfg);
            sim.prefill();
            let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
            sim.run_closed_loop(wl, SimSpan::from_ms(5));
            let r = sim.report();
            (
                r.gc_issue_digest,
                r.events_delivered,
                r.requests_completed,
                r.gc_pages_copied,
                r.io_bw.total_bytes(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{}: replay divergence", arch.label());
        assert_ne!(a.0, 0, "{}: GC ran, digest must be non-trivial", arch.label());
        assert!(a.1 > 0, "{}: events_delivered must be recorded", arch.label());
    }
}

/// Golden write-workload fingerprints (gc_continuous, 10 ms) captured
/// from the pre-optimization simulator at the default `test_tiny` seed.
#[test]
fn bit_identical_to_pre_optimization_simulator_writes() {
    let golden = [
        ("Baseline", "req=1103 gc_pages=1964 gc_rounds=1 io_bytes=36143104 gc_bytes=8044544 mean_ns=562280 p99_ns=913824 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("BW", "req=1205 gc_pages=2302 gc_rounds=1 io_bytes=39485440 gc_bytes=9428992 mean_ns=515998 p99_ns=822043 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("dSSD", "req=1582 gc_pages=3330 gc_rounds=1 io_bytes=51838976 gc_bytes=13639680 mean_ns=398060 p99_ns=600192 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("dSSD_b", "req=1580 gc_pages=3329 gc_rounds=1 io_bytes=51773440 gc_bytes=13635584 mean_ns=397683 p99_ns=606208 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("dSSD_f", "req=1725 gc_pages=2710 gc_rounds=1 io_bytes=56524800 gc_bytes=11100160 mean_ns=363617 p99_ns=531464 first_gc=Some(0) remaps=0 bad_sb=0"),
    ];
    for (arch, want) in golden {
        let arch = Architecture::all()
            .into_iter()
            .find(|a| a.label() == arch)
            .expect("known architecture label");
        let mut cfg = SsdConfig::test_tiny(arch);
        cfg.gc_continuous = true;
        let got = fingerprint(SsdSim::new(cfg), false, 10);
        assert_eq!(got, want, "{}/writes drifted from the golden run", arch.label());
    }
}

/// Golden read-workload fingerprints (5 ms) from the same capture.
#[test]
fn bit_identical_to_pre_optimization_simulator_reads() {
    let golden = [
        ("Baseline", "req=559 gc_pages=1334 gc_rounds=0 io_bytes=9158656 gc_bytes=5464064 mean_ns=542258 p99_ns=836296 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("BW", "req=624 gc_pages=1481 gc_rounds=0 io_bytes=10223616 gc_bytes=6066176 mean_ns=492613 p99_ns=767953 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("dSSD", "req=2025 gc_pages=1700 gc_rounds=1 io_bytes=33177600 gc_bytes=6963200 mean_ns=156076 p99_ns=341295 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("dSSD_b", "req=1972 gc_pages=1700 gc_rounds=1 io_bytes=32309248 gc_bytes=6963200 mean_ns=159965 p99_ns=316304 first_gc=Some(0) remaps=0 bad_sb=0"),
        ("dSSD_f", "req=1931 gc_pages=1700 gc_rounds=1 io_bytes=31637504 gc_bytes=6963200 mean_ns=163309 p99_ns=298296 first_gc=Some(0) remaps=0 bad_sb=0"),
    ];
    for (arch, want) in golden {
        let arch = Architecture::all()
            .into_iter()
            .find(|a| a.label() == arch)
            .expect("known architecture label");
        let got = fingerprint(SsdSim::new(SsdConfig::test_tiny(arch)), true, 5);
        assert_eq!(got, want, "{}/reads drifted from the golden run", arch.label());
    }
}

/// The fNoC express path (contention-free packet fast-forwarding) must be
/// invisible in every RunReport: each architecture's fingerprint with the
/// express path disabled must byte-match the default (express-on) run —
/// including under fault injection, where an injected NoC fault demotes
/// standing express reservations mid-flight.
#[test]
fn noc_express_path_is_bit_identical_to_flit_level() {
    for arch in Architecture::all() {
        let run = |express: bool| {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            cfg.noc = cfg.noc.with_express(express);
            fingerprint(SsdSim::new(cfg), false, 10)
        };
        assert_eq!(run(true), run(false), "{}: express path diverged", arch.label());
    }

    let mut f = FaultConfig::none();
    f.noc_degrade_prob = 0.05;
    let run = |express: bool| {
        let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
        cfg.gc_continuous = true;
        cfg.faults = f;
        cfg.noc = cfg.noc.with_express(express);
        fingerprint(SsdSim::new(cfg), false, 10)
    };
    assert_eq!(run(true), run(false), "dSSD_f: express path diverged under NoC faults");
}

/// Fault-injection and SRT-remap paths exercise the slab churn (retries,
/// re-allocations, retirement) and the dense remap table.
#[test]
fn bit_identical_fault_and_remap_paths() {
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.1;
    f.read_hard_prob = 0.001;
    f.program_fail_prob = 0.005;
    f.erase_fail_prob = 0.02;
    f.noc_degrade_prob = 0.02;
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.gc_continuous = true;
    cfg.faults = f;
    assert_eq!(
        fingerprint(SsdSim::new(cfg), false, 10),
        "req=1677 gc_pages=2856 gc_rounds=1 io_bytes=54951936 gc_bytes=11698176 mean_ns=373630 p99_ns=551140 first_gc=Some(0) remaps=3 bad_sb=1",
        "dSSD_f fault-injection run drifted from the golden run"
    );

    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.srt_active_remaps = 256;
    assert_eq!(
        fingerprint(SsdSim::new(cfg), false, 10),
        "req=1928 gc_pages=1699 gc_rounds=0 io_bytes=63176704 gc_bytes=6959104 mean_ns=325486 p99_ns=811424 first_gc=Some(0) remaps=0 bad_sb=0",
        "dSSD_f SRT-remap run drifted from the golden run"
    );
}
