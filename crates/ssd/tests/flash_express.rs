//! Flash-side express path differential gates.
//!
//! With `flash_express` off the simulator is the unmodified
//! one-event-at-a-time reference engine; with it on (the default), the
//! NoC burst loop, the quiet-router sweep skips, and the flash-leg
//! chain walk coalesce provably conflict-free event chains without
//! going through the central queue. Nothing observable may change:
//! report fingerprints, the state digest, event accounting, and NoC
//! credit-stall counts must be byte-identical across every
//! architecture, workload mix, seed, fault class, and power-loss
//! placement — and a snapshot taken inside an express window must
//! restore to a byte-identical continuation.

use dssd_kernel::{SimSpan, SimTime};
use dssd_ssd::{
    Architecture, DurabilityConfig, FaultConfig, RunPlan, RunState, SimSnapshot, SsdConfig, SsdSim,
};
use dssd_workload::{AccessPattern, SyntheticWorkload};

/// Order-sensitive digest of a finished run: live-state digest, both
/// event counters, the NoC's credit-stall count (counted inside the
/// sweeps the express path elides or replays), and the report numbers
/// the paper's figures are built from.
fn fingerprint(sim: &mut SsdSim) -> String {
    let digest = sim.state_digest();
    let events = sim.events_handled();
    let stalls = sim.noc().map_or(0, |n| n.stats().credit_stalls);
    let p99 = sim.report_mut().latency_percentile(0.99).as_ns();
    let r = sim.report();
    format!(
        "digest={digest:016x} events={events} delivered={} stalls={stalls} req={} io_bytes={} gc_pages={} mean_ns={} p99_ns={}",
        r.events_delivered,
        r.requests_completed,
        r.io_bw.total_bytes(),
        r.gc_pages_copied,
        r.mean_latency().as_ns(),
        p99,
    )
}

fn run(mut cfg: SsdConfig, wl: SyntheticWorkload, ms: u64, express: bool) -> String {
    cfg.flash_express = express;
    let mut sim = SsdSim::new(cfg);
    sim.prefill();
    sim.run_closed_loop(wl, SimSpan::from_ms(ms));
    fingerprint(&mut sim)
}

/// Every architecture × workload-mix × seed: the express run must be
/// byte-identical to the event-level run. The mixes cover the write
/// path (bus + die + GC copies), the read path (die + ECC + sysbus),
/// and the DRAM-hit path (the fig10 scenario), so every leg the chain
/// walk can coalesce is crossed with every architecture's transport.
#[test]
fn randomized_mixes_are_bit_identical_across_architectures_and_seeds() {
    let mixes: [(&str, u32, f64, f64); 3] = [
        ("writes", 8, 0.0, 0.0),
        ("mixed", 4, 0.5, 0.0),
        ("dram_hits", 8, 1.0, 1.0),
    ];
    for arch in Architecture::all() {
        for &(mix, pages, reads, hit) in &mixes {
            for seed_salt in [0u64, 0x5EED] {
                let mut cfg = SsdConfig::test_tiny(arch);
                cfg.gc_continuous = true;
                cfg.seed ^= seed_salt;
                let wl = SyntheticWorkload::mixed(AccessPattern::Random, pages, reads)
                    .with_dram_hit_fraction(hit);
                let on = run(cfg.clone(), wl.clone(), 3, true);
                let off = run(cfg, wl, 3, false);
                assert_eq!(
                    on, off,
                    "{}/{mix}/salt={seed_salt:#x}: express diverged",
                    arch.label()
                );
            }
        }
    }
}

/// Fault injection forces the paths the chain walk must *not* coalesce
/// (read-retry re-issues, program-failure remaps, erase failures, NoC
/// degradations that demote express groups): the deferred-continuation
/// handoff only covers the final clean-path push of each leg handler,
/// so every fault-path push still goes through the queue, in order.
#[test]
fn fault_and_retry_paths_are_bit_identical() {
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.1;
    f.read_hard_prob = 0.001;
    f.program_fail_prob = 0.005;
    f.erase_fail_prob = 0.02;
    f.noc_degrade_prob = 0.02;
    for arch in [Architecture::Dssd, Architecture::DssdFnoc] {
        for seed_salt in [0u64, 0xFA17] {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            cfg.faults = f;
            cfg.seed ^= seed_salt;
            let wl = SyntheticWorkload::mixed(AccessPattern::Random, 4, 0.5);
            let on = run(cfg.clone(), wl.clone(), 4, true);
            let off = run(cfg, wl, 4, false);
            assert_eq!(
                on, off,
                "{}/salt={seed_salt:#x}: express diverged under faults",
                arch.label()
            );
        }
    }
}

/// Power loss armed at a simulated instant or an exact event count
/// disables the express fast paths wholesale (a coalesced chain could
/// step over the loss instant), so both runs must execute — and crash —
/// event-for-event identically, then recover to identical state.
#[test]
fn power_loss_placements_are_bit_identical() {
    let run_loss = |express: bool, at_event: u64| {
        let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
        cfg.gc_continuous = true;
        cfg.durability = Some(DurabilityConfig::default());
        if at_event > 0 {
            cfg.power_loss.at_event = at_event;
        } else {
            cfg.power_loss.at = SimTime::ZERO + SimSpan::from_ms(1) + SimSpan::from_ns(337);
        }
        cfg.flash_express = express;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        sim.run_closed_loop(SyntheticWorkload::writes(AccessPattern::Random, 8), SimSpan::from_ms(3));
        let rec = sim.report().recovery.clone().expect("armed loss must report recovery");
        assert!(rec.invariants_hold(), "recovery invariants violated");
        fingerprint(&mut sim)
    };
    // Mid-run wall-clock placement (lands inside express windows) and
    // two exact event-count placements.
    assert_eq!(run_loss(true, 0), run_loss(false, 0), "power-loss-at-time diverged");
    for at_event in [5_000, 12_345] {
        assert_eq!(
            run_loss(true, at_event),
            run_loss(false, at_event),
            "power-loss-at-event {at_event} diverged"
        );
    }
}

/// A snapshot captured while the express path is mid-flight (the cursor
/// lands inside what would be a coalesced chain) must restore and
/// continue byte-identically: `run_events(limit)` demotes the chain
/// continuation to the queue when it hits the limit, so any cursor is a
/// clean cut point.
#[test]
fn snapshot_inside_express_window_restores_byte_identically() {
    let plan = RunPlan {
        workload: SyntheticWorkload::writes(AccessPattern::Random, 8),
        duration: SimSpan::from_ms(3),
    };
    let cfg = || {
        let mut c = SsdConfig::test_tiny(Architecture::DssdFnoc);
        c.gc_continuous = true;
        c
    };
    // Odd cursors make it likely the cut lands mid-chain (flash legs
    // coalesce in runs of 2-6 events).
    for cursor in [777u64, 10_001, 25_003] {
        let mut sim = SsdSim::new(cfg());
        sim.prefill();
        sim.begin_closed_loop(plan.workload.clone(), plan.duration);
        assert_eq!(sim.run_events(cursor), RunState::Paused);
        assert_eq!(sim.events_handled(), cursor, "run_events overshot the limit");
        let snap = SimSnapshot::capture(&sim, &plan);
        let mut resumed = snap.restore(cfg(), &plan).expect("mid-window restore");
        assert_eq!(resumed.state_digest(), sim.state_digest());
        sim.run_events(u64::MAX);
        resumed.run_events(u64::MAX);
        sim.finish_run();
        resumed.finish_run();
        assert_eq!(
            fingerprint(&mut sim),
            fingerprint(&mut resumed),
            "cursor {cursor}: resumed run diverged"
        );
    }
}

/// The express path must actually fire on the architectures that carry
/// flash traffic (otherwise the A/B rows above prove nothing), and its
/// diagnostics must stay zero with the flag off.
#[test]
fn express_diagnostics_report_coalesced_work() {
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.gc_continuous = true;
    let mut sim = SsdSim::new(cfg.clone());
    sim.prefill();
    sim.run_closed_loop(SyntheticWorkload::writes(AccessPattern::Random, 8), SimSpan::from_ms(3));
    let (coalesced, _demoted) = sim.flash_express_diag();
    assert!(coalesced > 100, "chain walk coalesced only {coalesced} events");

    cfg.flash_express = false;
    let mut off = SsdSim::new(cfg);
    off.prefill();
    off.run_closed_loop(SyntheticWorkload::writes(AccessPattern::Random, 8), SimSpan::from_ms(3));
    assert_eq!(off.flash_express_diag(), (0, 0), "reference engine must not coalesce");
}
