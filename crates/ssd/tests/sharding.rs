//! Sharded-engine differential gates.
//!
//! With `shards = 1` the simulator runs the unmodified single-queue
//! reference engine; with `shards = N` the future-event list is split
//! across per-shard calendar queues by home resource (channel blocks,
//! fNoC regions, round-robined central events) and merged back in exact
//! global `(time, rank, seq)` order. Nothing observable may change for
//! any shard count: report fingerprints, the state digest, event
//! accounting, and NoC stall counts must be byte-identical across every
//! architecture, workload mix, seed, fault class, power-loss placement,
//! and express-path combination — and snapshots must transfer *between*
//! shard counts, because the shard count is normalized out of the
//! config fingerprint.

use dssd_kernel::{SimSpan, SimTime};
use dssd_ssd::{
    Architecture, DurabilityConfig, FaultConfig, RunPlan, RunState, SimSnapshot, SsdConfig, SsdSim,
};
use dssd_workload::{AccessPattern, SyntheticWorkload};

/// Order-sensitive digest of a finished run (the same surface the
/// flash-express gates check): live-state digest, both event counters,
/// NoC credit stalls, and the report numbers the paper's figures use.
fn fingerprint(sim: &mut SsdSim) -> String {
    let digest = sim.state_digest();
    let events = sim.events_handled();
    let stalls = sim.noc().map_or(0, |n| n.stats().credit_stalls);
    let p99 = sim.report_mut().latency_percentile(0.99).as_ns();
    let r = sim.report();
    format!(
        "digest={digest:016x} events={events} delivered={} stalls={stalls} req={} io_bytes={} gc_pages={} mean_ns={} p99_ns={}",
        r.events_delivered,
        r.requests_completed,
        r.io_bw.total_bytes(),
        r.gc_pages_copied,
        r.mean_latency().as_ns(),
        p99,
    )
}

fn run(cfg: SsdConfig, wl: SyntheticWorkload, ms: u64, shards: usize) -> String {
    let mut sim = SsdSim::new(cfg.with_shards(shards));
    sim.prefill();
    sim.run_closed_loop(wl, SimSpan::from_ms(ms));
    fingerprint(&mut sim)
}

/// Every architecture × workload-mix × shard count: the sharded engine
/// must be byte-identical to the single-queue engine. The mixes cover
/// the write path (bus + die + GC copies), the read path (die + ECC +
/// sysbus), and the DRAM-hit path, so channel-homed, fNoC-homed, and
/// centrally-homed events all cross every shard boundary.
#[test]
fn randomized_mixes_are_bit_identical_across_shard_counts() {
    let mixes: [(&str, u32, f64, f64); 2] = [
        ("writes", 8, 0.0, 0.0),
        ("dram_mixed", 4, 0.5, 1.0),
    ];
    for arch in Architecture::all() {
        for &(mix, pages, reads, hit) in &mixes {
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = true;
            cfg.seed ^= 0x5EED;
            let wl = SyntheticWorkload::mixed(AccessPattern::Random, pages, reads)
                .with_dram_hit_fraction(hit);
            let reference = run(cfg.clone(), wl.clone(), 3, 1);
            for shards in [2, 3, 8] {
                let sharded = run(cfg.clone(), wl.clone(), 3, shards);
                assert_eq!(
                    reference,
                    sharded,
                    "{}/{mix}/shards={shards}: sharded engine diverged",
                    arch.label()
                );
            }
        }
    }
}

/// Fault injection exercises retry re-issues, program-failure remaps,
/// erase failures and NoC degradations — paths that reschedule events
/// across shard homes (a retried read goes back through its channel, a
/// demoted packet re-enters the fNoC region). Order must survive.
#[test]
fn fault_and_retry_paths_are_bit_identical_across_shards() {
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.1;
    f.read_hard_prob = 0.001;
    f.program_fail_prob = 0.005;
    f.erase_fail_prob = 0.02;
    f.noc_degrade_prob = 0.02;
    for arch in [Architecture::Dssd, Architecture::DssdFnoc] {
        let mut cfg = SsdConfig::test_tiny(arch);
        cfg.gc_continuous = true;
        cfg.faults = f;
        let wl = SyntheticWorkload::mixed(AccessPattern::Random, 4, 0.5);
        let reference = run(cfg.clone(), wl.clone(), 4, 1);
        for shards in [2, 8] {
            assert_eq!(
                reference,
                run(cfg.clone(), wl.clone(), 4, shards),
                "{}/shards={shards}: sharded engine diverged under faults",
                arch.label()
            );
        }
    }
}

/// Power loss at a wall-clock instant or an exact event count must land
/// on the *same* event under every shard count (the merge preserves the
/// global delivery sequence, so event counters agree), and recovery
/// must replay identically with the durability model on.
#[test]
fn power_loss_placements_are_bit_identical_across_shards() {
    let run_loss = |shards: usize, at_event: u64| {
        let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
        cfg.gc_continuous = true;
        cfg.durability = Some(DurabilityConfig::default());
        if at_event > 0 {
            cfg.power_loss.at_event = at_event;
        } else {
            cfg.power_loss.at = SimTime::ZERO + SimSpan::from_ms(1) + SimSpan::from_ns(337);
        }
        let mut sim = SsdSim::new(cfg.with_shards(shards));
        sim.prefill();
        sim.run_closed_loop(SyntheticWorkload::writes(AccessPattern::Random, 8), SimSpan::from_ms(3));
        let rec = sim.report().recovery.clone().expect("armed loss must report recovery");
        assert!(rec.invariants_hold(), "recovery invariants violated");
        fingerprint(&mut sim)
    };
    for at_event in [0u64, 5_000, 12_345] {
        let reference = run_loss(1, at_event);
        for shards in [2, 3] {
            assert_eq!(
                reference,
                run_loss(shards, at_event),
                "power loss (at_event={at_event}) diverged at shards={shards}"
            );
        }
    }
}

/// Sharding composes with both express paths: the flash-side chain
/// walk / NoC burst loop and the fNoC's contention-free packet
/// fast-forwarding each bypass or batch the queue in their own way,
/// and all four on/off combinations must agree with the single-queue
/// engine at every shard count.
#[test]
fn express_paths_compose_with_sharding() {
    for (flash_express, noc_express) in [(true, true), (true, false), (false, true), (false, false)]
    {
        let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
        cfg.gc_continuous = true;
        cfg.flash_express = flash_express;
        cfg.noc = cfg.noc.with_express(noc_express);
        let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
        let reference = run(cfg.clone(), wl.clone(), 3, 1);
        assert_eq!(
            reference,
            run(cfg, wl, 3, 4),
            "flash_express={flash_express}/noc_express={noc_express}: diverged at shards=4"
        );
    }
}

/// Snapshots transfer across shard counts: the shard count is an
/// engine choice, not simulated state, so a snapshot captured under
/// one count restores under another — including cursors cut at odd
/// event counts, where the sharded engine may hold a half-drained
/// extraction batch that a naive capture would race.
#[test]
fn snapshot_cursors_transfer_across_shard_counts() {
    let plan = RunPlan {
        workload: SyntheticWorkload::writes(AccessPattern::Random, 8),
        duration: SimSpan::from_ms(3),
    };
    let cfg = |shards: usize| {
        let mut c = SsdConfig::test_tiny(Architecture::DssdFnoc);
        c.gc_continuous = true;
        c.with_shards(shards)
    };
    for (capture_shards, restore_shards, cursor) in
        [(3usize, 1usize, 777u64), (1, 8, 10_001), (2, 4, 25_003)]
    {
        let mut sim = SsdSim::new(cfg(capture_shards));
        sim.prefill();
        sim.begin_closed_loop(plan.workload.clone(), plan.duration);
        assert_eq!(sim.run_events(cursor), RunState::Paused);
        assert_eq!(sim.events_handled(), cursor, "run_events overshot the limit");
        let snap = SimSnapshot::capture(&sim, &plan);
        let mut resumed = snap
            .restore(cfg(restore_shards), &plan)
            .expect("cross-shard-count restore");
        assert_eq!(resumed.state_digest(), sim.state_digest());
        sim.run_events(u64::MAX);
        resumed.run_events(u64::MAX);
        sim.finish_run();
        resumed.finish_run();
        assert_eq!(
            fingerprint(&mut sim),
            fingerprint(&mut resumed),
            "capture@{capture_shards} → restore@{restore_shards} (cursor {cursor}) diverged"
        );
    }
}

/// The config surface: shard counts outside [1, 64] are rejected, and
/// the default is the single-queue engine.
#[test]
fn shard_count_is_validated() {
    assert_eq!(SsdConfig::test_tiny(Architecture::Dssd).shards, 1);
    assert!(SsdConfig::test_tiny(Architecture::Dssd).with_shards(0).validate().is_err());
    assert!(SsdConfig::test_tiny(Architecture::Dssd).with_shards(65).validate().is_err());
    assert!(SsdConfig::test_tiny(Architecture::Dssd).with_shards(64).validate().is_ok());
}
