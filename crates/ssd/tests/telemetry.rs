//! Telemetry gates: tracing must be a pure observer.
//!
//! Three layers:
//!
//! * **Perturbation freedom** — the same seed must produce bit-identical
//!   reports with tracing off, fully on, and windowed (the tracer never
//!   schedules events or draws random numbers, and the epoch sampler
//!   piggybacks on the event loop instead of injecting ticks).
//! * **Cross-check** — per-stage sums over the trace must agree with the
//!   simulator's `StageBreakdown` aggregates, both at the summary level
//!   (exact) and after a JSON export/parse round trip (within 1%).
//! * **Schema** — exported documents must pass the Chrome Trace validator.

use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, FaultConfig, SsdConfig, SsdSim, StageKind, TraceConfig};
use dssd_telemetry::chrome::chrome_trace_string;
use dssd_telemetry::json::{validate_chrome_trace, Json};
use dssd_telemetry::{Class, Stage, TraceEvent};
use dssd_workload::{AccessPattern, SyntheticWorkload};

fn traced_sim(arch: Architecture, cfg: Option<TraceConfig>) -> SsdSim {
    let mut c = SsdConfig::test_tiny(arch);
    c.gc_continuous = true;
    let mut sim = SsdSim::new(c);
    if let Some(cfg) = cfg {
        sim.enable_tracing(cfg);
    }
    sim.prefill();
    sim
}

fn run(sim: &mut SsdSim, ms: u64) {
    let wl = SyntheticWorkload::writes(AccessPattern::Random, 8);
    sim.run_closed_loop(wl, SimSpan::from_ms(ms));
}

/// Order-sensitive digest of a run (mirrors the determinism suite).
fn fingerprint(sim: &mut SsdSim) -> String {
    let p99 = sim.report_mut().latency_percentile(0.99).as_ns();
    let r = sim.report();
    format!(
        "req={} gc_pages={} gc_rounds={} io_bytes={} gc_bytes={} mean_ns={} p99_ns={} \
         events={} digest={:#x} faults={:?}",
        r.requests_completed,
        r.gc_pages_copied,
        r.gc_rounds,
        r.io_bw.total_bytes(),
        r.gc_bw.total_bytes(),
        r.mean_latency().as_ns(),
        p99,
        r.events_delivered,
        r.gc_issue_digest,
        r.faults,
    )
}

#[test]
fn tracing_off_full_and_windowed_are_bit_identical() {
    for arch in Architecture::all() {
        let mut untraced = traced_sim(arch, None);
        run(&mut untraced, 5);
        let want = fingerprint(&mut untraced);

        let full = TraceConfig { window: None, epoch: Some(SimSpan::from_ms(1)) };
        let mut traced = traced_sim(arch, Some(full));
        run(&mut traced, 5);
        assert!(traced.tracer().events_recorded() > 0, "{}: trace empty", arch.label());
        assert_eq!(
            fingerprint(&mut traced),
            want,
            "{}: full tracing perturbed the run",
            arch.label()
        );

        let windowed =
            TraceConfig { window: Some(SimSpan::from_ms(1)), epoch: None };
        let mut traced = traced_sim(arch, Some(windowed));
        run(&mut traced, 5);
        assert!(traced.tracer().events_pruned() > 0, "{}: window never pruned", arch.label());
        assert_eq!(
            fingerprint(&mut traced),
            want,
            "{}: windowed tracing perturbed the run",
            arch.label()
        );
    }
}

#[test]
fn trace_summary_cross_checks_stage_breakdown() {
    for arch in [Architecture::Baseline, Architecture::DssdBus, Architecture::DssdFnoc] {
        let mut sim = traced_sim(arch, Some(TraceConfig::default()));
        run(&mut sim, 5);
        let summary = sim.tracer().summary().expect("tracing enabled");
        let r = sim.report();

        // Same population: the tracer closes an entity exactly when the
        // simulator records it into the breakdown.
        assert_eq!(summary.count(Class::Io), r.io_breakdown.count());
        assert_eq!(summary.count(Class::Gc), r.copyback_breakdown.count());
        assert!(summary.count(Class::Gc) > 0, "{}: no GC traced", arch.label());

        // Per-stage means agree within 1% (exact sums vs f64 accumulation).
        for (class, breakdown) in
            [(Class::Io, &r.io_breakdown), (Class::Gc, &r.copyback_breakdown)]
        {
            let n = summary.count(class) as f64;
            for stage in Stage::ALL {
                let kind = StageKind::all()[stage.index()];
                let want_us = breakdown.mean_us(kind);
                let got_us = summary.stage_total_ns(class, stage) as f64 / 1e3 / n;
                let tol = (want_us * 0.01).max(1e-6);
                assert!(
                    (got_us - want_us).abs() <= tol,
                    "{}: {:?}/{} trace mean {got_us} us vs breakdown {want_us} us",
                    arch.label(),
                    class,
                    kind.label(),
                );
            }
        }
    }
}

#[test]
fn exported_json_validates_and_slice_sums_match_summary() {
    let mut sim = traced_sim(Architecture::DssdFnoc, Some(TraceConfig::default()));
    run(&mut sim, 5);
    let json = chrome_trace_string(sim.tracer());
    let stats = validate_chrome_trace(&json).expect("emitted trace must pass the validator");
    assert!(stats.spans > 0 && stats.asyncs > 0 && stats.metadata > 0);

    // Sum exported "X" slices by stage name and compare against the
    // summary's exact totals. Durations survive export at nanosecond
    // precision (fractional microseconds, three decimals), so 1% covers
    // the f64 round trip.
    let doc = dssd_telemetry::json::parse(&json).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut sums_us = [[0.0f64; 6]; 2];
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = ev.get("name").and_then(Json::as_str).unwrap();
        let Some(stage) = Stage::ALL.iter().find(|s| s.label() == name) else {
            continue; // auxiliary slices ("noc hop") overlap transit time
        };
        let class = match ev.get("cat").and_then(Json::as_str) {
            Some("io") => 0,
            Some("gc") => 1,
            other => panic!("unexpected span cat {other:?}"),
        };
        sums_us[class][stage.index()] += ev.get("dur").and_then(Json::as_f64).unwrap();
    }
    let summary = sim.tracer().summary().unwrap();
    for (c, class) in [(0, Class::Io), (1, Class::Gc)] {
        for stage in Stage::ALL {
            let want_us = summary.stage_total_ns(class, stage) as f64 / 1e3;
            let got_us = sums_us[c][stage.index()];
            let tol = (want_us * 0.01).max(1e-3);
            assert!(
                (got_us - want_us).abs() <= tol,
                "{class:?}/{}: exported slices sum to {got_us} us, summary says {want_us} us",
                stage.label(),
            );
        }
    }
}

#[test]
fn fault_instants_reach_the_timeline() {
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.1;
    f.read_hard_prob = 0.001;
    f.program_fail_prob = 0.005;
    f.erase_fail_prob = 0.02;
    f.noc_degrade_prob = 0.02;
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    cfg.gc_continuous = true;
    cfg.faults = f;
    let mut sim = SsdSim::new(cfg);
    sim.enable_tracing(TraceConfig::default());
    sim.prefill();
    // Mixed workload so both the read-retry and program-failure paths run.
    let wl = SyntheticWorkload::mixed(AccessPattern::Random, 8, 0.5);
    sim.run_closed_loop(wl, SimSpan::from_ms(10));

    let r = sim.report();
    assert!(r.faults.read_retries > 0 && r.faults.program_failures > 0);
    let mut names: Vec<&str> = sim
        .tracer()
        .events()
        .filter_map(|e| match e {
            TraceEvent::Instant { name, .. } => Some(*name),
            _ => None,
        })
        .collect();
    names.sort_unstable();
    names.dedup();
    for want in ["read retry", "program failure", "block retired", "gc round start"] {
        assert!(names.contains(&want), "missing instant {want:?} in {names:?}");
    }
    let json = chrome_trace_string(sim.tracer());
    validate_chrome_trace(&json).expect("fault-laden trace must still validate");
}

#[test]
fn epoch_series_samples_every_boundary() {
    let mut sim = traced_sim(
        Architecture::Dssd,
        Some(TraceConfig { window: None, epoch: Some(SimSpan::from_ms(1)) }),
    );
    run(&mut sim, 5);
    let series = sim.epoch_series().expect("epoch sampling enabled");
    assert_eq!(series.columns(), dssd_ssd::EPOCH_COLUMNS);
    // Boundaries at 1..=5 ms (the horizon boundary is sampled too).
    assert_eq!(series.len(), 5);
    for (i, row) in series.rows().iter().enumerate() {
        assert_eq!(row[0], (i + 1) as f64, "t_ms must advance by the epoch");
    }
    // The JSONL export parses line by line.
    for line in sim.epoch_series().unwrap().to_jsonl_string().lines() {
        dssd_telemetry::json::parse(line).expect("epoch JSONL line must parse");
    }
    // A busy write run must show nonzero throughput in some epoch.
    let io_col = dssd_ssd::EPOCH_COLUMNS.iter().position(|c| *c == "io_gbps").unwrap();
    assert!(series.rows().iter().any(|r| r[io_col] > 0.0));
}
