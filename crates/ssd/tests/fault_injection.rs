//! Integration tests for in-band fault injection: determinism of the
//! failure counters across same-seed runs, and a walkthrough of the
//! uncorrectable-read recovery path — retry escalation, SRT/RBT
//! remapping, and online superblock retirement — on a live decoupled
//! simulation.

use dssd_kernel::SimSpan;
use dssd_ssd::{Architecture, FaultConfig, SsdConfig, SsdSim};
use dssd_workload::{AccessPattern, SyntheticWorkload};

fn faulty_config(arch: Architecture) -> SsdConfig {
    let mut cfg = SsdConfig::test_tiny(arch);
    let mut f = FaultConfig::none();
    f.read_transient_prob = 0.05;
    f.read_hard_prob = 0.002;
    f.program_fail_prob = 0.002;
    f.erase_fail_prob = 0.01;
    f.noc_degrade_prob = 0.01;
    cfg.faults = f;
    cfg
}

/// Same seed + same `FaultConfig` ⇒ identical failure counters and an
/// identical run, fault class by fault class.
#[test]
fn same_seed_same_faults_is_reproducible() {
    let go = |seed: u64| {
        let mut cfg = faulty_config(Architecture::DssdFnoc);
        cfg.seed = seed;
        cfg.gc_continuous = true;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::mixed(AccessPattern::Random, 4, 0.5);
        sim.run_closed_loop(wl, SimSpan::from_ms(10));
        let r = sim.report();
        (
            r.faults,
            r.requests_completed,
            r.gc_pages_copied,
            r.gc_rounds,
            r.bad_superblocks,
            r.dynamic_remaps,
            r.io_bw.total_bytes(),
        )
    };
    assert_eq!(go(7), go(7));
    // A different seed must actually reshuffle the injected faults
    // (otherwise the "determinism" above would be vacuous).
    assert_ne!(go(7).0, go(8).0);
}

/// The full uncorrectable-read walkthrough on a decoupled architecture:
/// a hard media fault exhausts the retry budget, the block is forced
/// worn, the first failure retires a superblock online (relocation GC
/// round included) and stocks the recycle bins, and later failures are
/// silently repaired through the SRT/RBT remap path.
#[test]
fn uncorrectable_read_walkthrough_decoupled() {
    let mut cfg = SsdConfig::test_tiny(Architecture::DssdFnoc);
    let mut f = FaultConfig::none();
    f.read_hard_prob = 0.002;
    cfg.faults = f;
    let mut sim = SsdSim::new(cfg);
    sim.prefill();
    let wl = SyntheticWorkload::reads(AccessPattern::Random, 4);
    sim.run_closed_loop(wl, SimSpan::from_ms(15));

    let r = sim.report();
    let c = r.faults;

    // Retries escalate and fail: every declared-uncorrectable read burned
    // the whole budget (legs still mid-retry at the horizon push the
    // retry count higher).
    assert!(c.uncorrectable_reads > 0, "hard faults must occur in 15 ms");
    assert!(
        c.read_retries
            >= c.uncorrectable_reads * u64::from(sim.config().faults.max_read_retries)
    );
    assert!(c.retry_latency > SimSpan::ZERO);
    assert!(c.requests_failed > 0 && c.requests_failed <= c.uncorrectable_reads);

    // Each failure retired its block (re-reads of an already-worn block
    // do not double count); recovery then split between whole-superblock
    // retirement (RBT empty) and silent remaps.
    assert!(c.blocks_retired > 0 && c.blocks_retired <= c.uncorrectable_reads);
    assert!(c.superblocks_retired > 0, "first failure must retire online");
    assert!(r.dynamic_remaps > 0, "later failures must remap via SRT/RBT");
    assert!(
        r.dynamic_remaps + c.superblocks_retired <= c.blocks_retired,
        "each bad block is remapped, retired, or still queued at the horizon"
    );

    // FTL and controller state agree with the counters: the retired
    // superblocks left the allocator pools, and the SRT holds one entry
    // per remap.
    assert_eq!(
        sim.ftl().retired_superblocks().len() as u64,
        c.superblocks_retired
    );
    let srt_entries: u64 = (0..sim.config().geometry.channels as usize)
        .map(|ch| sim.controller(ch).srt().active_entries() as u64)
        .sum();
    assert_eq!(srt_entries, r.dynamic_remaps);

    // The host never hangs: reads complete (as failures) even when the
    // data is gone.
    assert!(r.requests_completed > 1_000);
}

/// All fault classes enabled at once on every architecture: the
/// simulation must complete without panicking and keep serving I/O.
#[test]
fn all_fault_classes_on_every_architecture() {
    for arch in Architecture::all() {
        let mut cfg = faulty_config(arch);
        cfg.gc_continuous = true;
        let mut sim = SsdSim::new(cfg);
        sim.prefill();
        let wl = SyntheticWorkload::mixed(AccessPattern::Random, 4, 0.5);
        sim.run_closed_loop(wl, SimSpan::from_ms(10));
        let r = sim.report();
        assert!(
            r.requests_completed > 100,
            "{}: I/O must survive fault injection ({} completed)",
            arch.label(),
            r.requests_completed
        );
        let c = r.faults;
        assert!(
            c.read_retries > 0 || c.program_failures > 0 || c.erase_failures > 0,
            "{}: some injected fault must have fired",
            arch.label()
        );
    }
}
