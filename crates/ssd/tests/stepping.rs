//! Stepping-equivalence gates: slicing a run into arbitrary
//! `run_events` / `run_until` / `run_until_before` pieces must be
//! invisible — the final state, report, and event accounting must be
//! byte-identical to one uninterrupted `run_events(u64::MAX)`.
//!
//! This is the foundation the live service front-end stands on: the
//! pacer may stop the simulator at every submission instant, and none
//! of those stops may perturb the machine. The seeded test below runs
//! in tier 1; the `proptest` variant explores adversarial granularity
//! sequences when the optional dev-dependency is restored.

use dssd_kernel::{Rng, SimSpan};
use dssd_ssd::{Architecture, RunState, SsdConfig, SsdSim};
use dssd_workload::{open_loop_schedule, AccessPattern, SyntheticWorkload};

fn tiny_sim() -> SsdSim {
    let mut sim = SsdSim::new(SsdConfig::test_tiny(Architecture::DssdFnoc));
    sim.prefill();
    sim
}

fn fingerprint(sim: &mut SsdSim) -> String {
    let digest = sim.state_digest();
    let events = sim.events_handled();
    let p99 = sim.report_mut().latency_percentile(0.99).as_ns();
    let r = sim.report();
    format!(
        "digest={digest:016x} events={events} delivered={} req={} io_bytes={} gc_pages={} mean_ns={} p99_ns={}",
        r.events_delivered,
        r.requests_completed,
        r.io_bw.total_bytes(),
        r.gc_pages_copied,
        r.mean_latency().as_ns(),
        p99,
    )
}

/// Steps `sim` to completion using a `choices`-driven mix of stepping
/// primitives, then finalizes it. Every choice `(kind, amount)` maps to
/// one of the three public stepping calls.
fn step_to_completion(sim: &mut SsdSim, choices: impl Iterator<Item = (u8, u64)>) {
    for (kind, amount) in choices {
        let state = match kind % 3 {
            0 => sim.run_events(1 + amount % 256),
            1 => sim.run_until(sim.now() + SimSpan::from_ns(1 + amount % 300_000)),
            _ => sim.run_until_before(sim.now() + SimSpan::from_ns(1 + amount % 300_000)),
        };
        if state == RunState::Done {
            // Done means the run is over — the queue drained or the one
            // beyond-horizon pop (part of the event-count fingerprint)
            // already happened. Running further would pop a second one
            // the batch path never sees.
            sim.finish_run();
            return;
        }
    }
    // Choices exhausted first: run out the clock like the batch path.
    sim.run_events(u64::MAX);
    sim.finish_run();
}

fn open_loop_plan() -> Vec<(dssd_kernel::SimTime, dssd_workload::Request)> {
    let wl = SyntheticWorkload::mixed(AccessPattern::Random, 4, 0.5).bind(1 << 15);
    let mut rng = Rng::new(77);
    open_loop_schedule(wl, 120_000.0, SimSpan::from_ms(4), &mut rng)
}

#[test]
fn seeded_interleaved_stepping_matches_single_run_open_loop() {
    let plan = open_loop_plan();

    let mut batch = tiny_sim();
    batch.run_trace(plan.clone(), SimSpan::from_ms(4));
    let want = fingerprint(&mut batch);

    for seed in [1u64, 42, 1234] {
        let mut stepped = tiny_sim();
        stepped.begin_open_loop(SimSpan::from_ms(4));
        for (t, r) in plan.clone() {
            stepped.inject_arrival(t, r);
        }
        let mut rng = Rng::new(seed);
        step_to_completion(
            &mut stepped,
            std::iter::from_fn(move || Some((rng.next_u64() as u8, rng.next_u64()))).take(10_000),
        );
        assert_eq!(
            fingerprint(&mut stepped),
            want,
            "granularity seed {seed} perturbed the open-loop run"
        );
    }
}

#[test]
fn seeded_interleaved_stepping_matches_single_run_closed_loop() {
    let wl = || SyntheticWorkload::writes(AccessPattern::Random, 8);
    let mut batch = tiny_sim();
    batch.run_closed_loop(wl(), SimSpan::from_ms(4));
    let want = fingerprint(&mut batch);

    for seed in [7u64, 99] {
        let mut stepped = tiny_sim();
        stepped.begin_closed_loop(wl(), SimSpan::from_ms(4));
        let mut rng = Rng::new(seed);
        step_to_completion(
            &mut stepped,
            std::iter::from_fn(move || Some((rng.next_u64() as u8, rng.next_u64()))).take(10_000),
        );
        assert_eq!(
            fingerprint(&mut stepped),
            want,
            "granularity seed {seed} perturbed the closed-loop run"
        );
    }
}

/// Injecting arrivals live between steps (the service pacer's exact
/// access pattern) must also be invisible: advance to just before each
/// arrival, inject it, repeat.
#[test]
fn live_injection_between_steps_matches_upfront_push() {
    let plan = open_loop_plan();

    let mut batch = tiny_sim();
    batch.run_trace(plan.clone(), SimSpan::from_ms(4));
    let want = fingerprint(&mut batch);

    let mut live = tiny_sim();
    live.begin_open_loop(SimSpan::from_ms(4));
    for (t, r) in plan {
        live.run_until_before(t);
        live.inject_arrival(t, r);
    }
    live.run_events(u64::MAX);
    live.finish_run();
    assert_eq!(fingerprint(&mut live), want, "live injection perturbed the run");
}

#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Arbitrary (kind, amount) stepping programs never diverge
        /// from the single uninterrupted run.
        #[test]
        fn arbitrary_stepping_matches_single_run(
            choices in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400),
        ) {
            let plan = open_loop_plan();

            let mut batch = tiny_sim();
            batch.run_trace(plan.clone(), SimSpan::from_ms(4));
            let want = fingerprint(&mut batch);

            let mut stepped = tiny_sim();
            stepped.begin_open_loop(SimSpan::from_ms(4));
            for (t, r) in plan {
                stepped.inject_arrival(t, r);
            }
            step_to_completion(&mut stepped, choices.into_iter());
            prop_assert_eq!(fingerprint(&mut stepped), want);
        }
    }
}
