//! A std-only work-stealing fan-out helper for independent jobs.
//!
//! The paper's evaluation is thousands of *independent* simulator runs
//! (sweep points, figure bins, ablation cells). [`map_parallel`] fans a
//! slice of inputs across scoped worker threads and returns the outputs
//! **in input order**, so callers that aggregate or print results see
//! exactly the sequence a serial loop would have produced — parallelism
//! never changes bytes, only wall-clock.
//!
//! Work distribution is a single shared atomic cursor: each worker
//! claims the next unclaimed index, so fast workers automatically steal
//! the load of slow ones without any queues or channels. With `jobs == 1`
//! the closure runs on the calling thread in a plain loop, byte-identical
//! to the pre-parallel code path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every element of `inputs` using up to `jobs` threads
/// and returns the results in input order.
///
/// `jobs == 0` is treated as [`default_jobs`]. `jobs == 1` runs entirely
/// on the calling thread. The closure must be `Sync` because multiple
/// workers call it concurrently; each input is processed exactly once.
///
/// # Example
///
/// ```
/// use dssd_kernel::parallel::map_parallel;
///
/// let squares = map_parallel(&[1u64, 2, 3, 4], 2, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Panics if any invocation of `f` panics (the panic is propagated once
/// all workers have stopped).
pub fn map_parallel<I, O, F>(inputs: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    let jobs = jobs.min(inputs.len()).max(1);
    if jobs == 1 {
        return inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = Vec::with_capacity(inputs.len());
    slots.resize_with(inputs.len(), || None);
    let slots = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // Batch completed results locally and publish under the
                // lock in bursts, so the mutex is not on the per-item path.
                let mut done: Vec<(usize, O)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= inputs.len() {
                        break;
                    }
                    done.push((i, f(i, &inputs[i])));
                }
                let mut slots = slots.lock().unwrap();
                for (i, out) in done {
                    slots[i] = Some(out);
                }
            });
        }
    });

    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("worker left a result slot empty"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = map_parallel(&inputs, 4, |i, &x| {
            // Make later items finish earlier to exercise reordering.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 10
        });
        assert_eq!(out, (0..100).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_equals_jobs_many() {
        let inputs: Vec<u32> = (0..50).collect();
        let serial = map_parallel(&inputs, 1, |i, &x| (i as u32) * 1000 + x);
        let parallel = map_parallel(&inputs, 8, |i, &x| (i as u32) * 1000 + x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn each_input_processed_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let calls: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        let inputs: Vec<usize> = (0..200).collect();
        map_parallel(&inputs, 6, |_, &i| {
            calls[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "input {i} call count");
        }
    }

    #[test]
    fn empty_input_and_zero_jobs() {
        let out: Vec<u8> = map_parallel(&[] as &[u8], 0, |_, &x| x);
        assert!(out.is_empty());
        let out = map_parallel(&[7u8], 0, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn more_jobs_than_inputs() {
        let out = map_parallel(&[1, 2], 16, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4]);
    }
}
