//! Deterministic future-event list.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A deterministic priority queue of timestamped events.
///
/// Events are delivered in non-decreasing timestamp order. Events that
/// share a timestamp are delivered in the order they were pushed
/// (FIFO tie-breaking), which makes every simulation built on this queue
/// fully deterministic and replayable.
///
/// # Example
///
/// ```
/// use dssd_kernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(2), "b");
/// q.push(SimTime::from_us(1), "a");
/// q.push(SimTime::from_us(2), "c"); // same time as "b", pushed later
///
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert_eq!(q.pop().unwrap().1, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    popped: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far (a cheap progress/size
    /// metric for long simulations).
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_ns(7), "c");
        q.push(SimTime::from_ns(7), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 1);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any push sequence drains in (time, insertion) order.
        #[test]
        fn drains_in_stable_time_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ns(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut count = 0;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li, "FIFO tie-break violated");
                    }
                }
                last = Some((t, i));
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// Interleaved push/pop never loses or duplicates events.
        #[test]
        fn conservation_under_interleaving(
            ops in proptest::collection::vec((any::<bool>(), 0u64..100), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut pushed = 0u64;
            let mut popped = 0u64;
            for (is_pop, t) in ops {
                if is_pop {
                    if q.pop().is_some() {
                        popped += 1;
                    }
                } else {
                    q.push(SimTime::from_ns(t), ());
                    pushed += 1;
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(pushed, popped);
        }
    }
}
