//! Deterministic future-event list.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// Log2 of the calendar bucket width in nanoseconds (16 ns buckets).
/// Tuned against the flit-level NoC workloads, where the queue sustains
/// hundreds of events per microsecond: buckets must stay at a handful of
/// entries each, because pop min-scans the cursor bucket. Wider buckets
/// make that scan quadratic-ish in the event density; much narrower ones
/// spend more time sliding the cursor over empty buckets (and blow the
/// ring out of cache).
const BUCKET_SHIFT: u32 = 4;
/// Number of calendar buckets (must be a power of two). The calendar
/// window spans `NUM_BUCKETS << BUCKET_SHIFT` ≈ 66 µs of simulated
/// time — enough that bus/ECC/NoC/flash-array completions stay in the
/// calendar tier; only erases, GC round boundaries and admission idle
/// timers overflow into the far heap. The ring's headers are ~100 KB,
/// small enough to stay cache-resident next to the live buckets.
const NUM_BUCKETS: usize = 4096;

/// A deterministic priority queue of timestamped events.
///
/// Events are delivered in non-decreasing timestamp order. Events that
/// share a timestamp are delivered in the order they were pushed
/// (FIFO tie-breaking), which makes every simulation built on this queue
/// fully deterministic and replayable.
///
/// Same-time ordering can additionally be biased with an explicit *rank*
/// ([`EventQueue::push_ranked`]): at equal timestamps, lower ranks pop
/// first regardless of push order, and FIFO applies within a rank. Plain
/// [`EventQueue::push`] uses [`DEFAULT_RANK`]. Ranks exist so that a
/// caller injecting events incrementally (e.g. a live host front-end
/// feeding arrivals between steps) can reproduce the exact pop order of
/// a caller that pushed the same events up front: give the incremental
/// events a rank below `DEFAULT_RANK` and the tie-break no longer
/// depends on *when* they were pushed.
///
/// # Implementation
///
/// Two tiers: a bucketed *calendar* covering a sliding near-future
/// window, and a binary-heap overflow for events beyond it. The common
/// short-horizon push/pop is O(1) amortized — append to a bucket, scan
/// the earliest non-empty bucket — instead of the heap's O(log n)
/// sift per operation. Far events migrate into the calendar as the
/// window slides over their timestamps. Ordering (including FIFO
/// tie-breaking by insertion sequence) is bit-identical to a pure-heap
/// implementation; a randomized differential test asserts it.
///
/// # Example
///
/// ```
/// use dssd_kernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(2), "b");
/// q.push(SimTime::from_us(1), "a");
/// q.push(SimTime::from_us(2), "c"); // same time as "b", pushed later
///
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert_eq!(q.pop().unwrap().1, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future calendar: ring of buckets, one per time quantum.
    near: Vec<Vec<Entry<E>>>,
    /// Events currently in the calendar tier.
    near_len: usize,
    /// Quantum index (`time >> BUCKET_SHIFT`) of the bucket at `cursor`.
    window_start_q: u64,
    /// Ring position of the earliest possibly-non-empty bucket.
    cursor: usize,
    /// Overflow tier: events at or beyond `window_start_q + NUM_BUCKETS`.
    far: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    popped: u64,
}

/// Rank assigned by [`EventQueue::push`]. Ranks below this pop first at
/// equal timestamps; see [`EventQueue::push_ranked`].
pub const DEFAULT_RANK: u8 = 1;

/// Rank for host-arrival events: sorts before internally-scheduled events
/// ([`DEFAULT_RANK`]) at the same instant, no matter when it was pushed.
pub const ARRIVAL_RANK: u8 = 0;

/// The total delivery order of an event: `(time, rank, seq)`,
/// lexicographic. Two events never share a key inside one queue (the
/// sequence number is unique), so the key is the queue's full tie-break
/// story made explicit. Sharded schedulers ([`crate::ShardedQueue`])
/// assign keys from one shared sequence counter and merge per-shard
/// queues by key, which reproduces the exact pop order a single queue
/// would have produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Absolute event timestamp.
    pub time: SimTime,
    /// Same-time rank; lower pops first ([`ARRIVAL_RANK`] < [`DEFAULT_RANK`]).
    pub rank: u8,
    /// Insertion sequence number; FIFO tie-break within (time, rank).
    pub seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    rank: u8,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.rank == other.rank && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then(self.rank.cmp(&other.rank))
            .then(self.seq.cmp(&other.seq))
    }
}

fn quantum(time: SimTime) -> u64 {
    time.as_ns() >> BUCKET_SHIFT
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            near: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            near_len: 0,
            window_start_q: 0,
            cursor: 0,
            far: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time` with [`DEFAULT_RANK`].
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_ranked(time, DEFAULT_RANK, event);
    }

    /// Schedules `event` at `time` with an explicit same-time rank.
    /// At equal timestamps lower ranks pop first; within a rank, pushes
    /// pop FIFO. See the type-level docs for why ranks exist.
    pub fn push_ranked(&mut self, time: SimTime, rank: u8, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.push_entry(Entry { time, rank, seq, event });
    }

    /// Schedules `event` under a caller-supplied [`EventKey`], bypassing
    /// the internal sequence counter. This exists for sharded schedulers
    /// that split one logical event stream across several queues: keys
    /// minted from a single shared counter keep the *global* FIFO
    /// tie-break intact no matter which shard an event lands in. A queue
    /// fed through `push_keyed` must be fed exclusively through it —
    /// mixing with [`EventQueue::push`]/[`EventQueue::push_ranked`] on
    /// the same queue could reuse sequence numbers and break the
    /// uniqueness the ordering relies on.
    pub fn push_keyed(&mut self, key: EventKey, event: E) {
        self.push_entry(Entry { time: key.time, rank: key.rank, seq: key.seq, event });
    }

    fn push_entry(&mut self, entry: Entry<E>) {
        let q = quantum(entry.time);
        if q >= self.window_start_q + NUM_BUCKETS as u64 {
            self.far.push(Reverse(entry));
            return;
        }
        // Late pushes (before the window) land in the cursor bucket: the
        // per-bucket min-scan still delivers them in (time, seq) order
        // before anything later.
        let slot = if q <= self.window_start_q {
            self.cursor
        } else {
            (q % NUM_BUCKETS as u64) as usize
        };
        self.near[slot].push(entry);
        self.near_len += 1;
    }

    /// Migrates far-tier events whose quantum fell inside the calendar
    /// window into their buckets. Only entries at or ahead of the cursor
    /// can qualify, because the far tier never holds anything earlier
    /// than a past window end.
    fn drain_far_into_window(&mut self) {
        let window_end = self.window_start_q + NUM_BUCKETS as u64;
        while let Some(Reverse(top)) = self.far.peek() {
            if quantum(top.time) >= window_end {
                break;
            }
            let Some(Reverse(entry)) = self.far.pop() else { unreachable!() };
            let q = quantum(entry.time).max(self.window_start_q);
            self.near[(q % NUM_BUCKETS as u64) as usize].push(entry);
            self.near_len += 1;
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (key, event) = self.pop_keyed()?;
        Some((key.time, event))
    }

    /// Removes and returns the earliest event together with its full
    /// delivery key. Sharded schedulers use the key to merge several
    /// queues into one exact global order.
    pub fn pop_keyed(&mut self) -> Option<(EventKey, E)> {
        if self.near_len == 0 {
            // Calendar empty: jump the window to the earliest far event.
            let Reverse(top) = self.far.peek()?;
            self.window_start_q = quantum(top.time);
            self.cursor = (self.window_start_q % NUM_BUCKETS as u64) as usize;
            self.drain_far_into_window();
        }
        // Slide the cursor to the earliest non-empty bucket. Each slide
        // widens the window by one quantum, so check whether far events
        // became due.
        while self.near[self.cursor].is_empty() {
            self.cursor = (self.cursor + 1) % NUM_BUCKETS;
            self.window_start_q += 1;
            self.drain_far_into_window();
        }
        // The cursor bucket holds the earliest quantum: pick its minimum
        // by (time, seq). Buckets are small, so the scan is cheap.
        let bucket = &mut self.near[self.cursor];
        let mut best = 0;
        for i in 1..bucket.len() {
            if bucket[i] < bucket[best] {
                best = i;
            }
        }
        let entry = bucket.swap_remove(best);
        self.near_len -= 1;
        self.popped += 1;
        let key = EventKey { time: entry.time, rank: entry.rank, seq: entry.seq };
        Some((key, entry.event))
    }

    /// Removes and returns the earliest event only if `pred` accepts it;
    /// otherwise the queue is untouched (aside from cursor maintenance
    /// that [`EventQueue::pop`] would also have performed). This lets a
    /// hot loop fuse peek-and-pop into a single bucket scan: the event
    /// loop's NoC burst fast path drains runs of consecutive network
    /// events without paying a separate [`EventQueue::peek_time`] scan
    /// per event.
    pub fn pop_if(&mut self, pred: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        if self.near_len == 0 {
            let Reverse(top) = self.far.peek()?;
            self.window_start_q = quantum(top.time);
            self.cursor = (self.window_start_q % NUM_BUCKETS as u64) as usize;
            self.drain_far_into_window();
        }
        while self.near[self.cursor].is_empty() {
            self.cursor = (self.cursor + 1) % NUM_BUCKETS;
            self.window_start_q += 1;
            self.drain_far_into_window();
        }
        let bucket = &mut self.near[self.cursor];
        let mut best = 0;
        for i in 1..bucket.len() {
            if bucket[i] < bucket[best] {
                best = i;
            }
        }
        if !pred(bucket[best].time, &bucket[best].event) {
            return None;
        }
        let entry = bucket.swap_remove(best);
        self.near_len -= 1;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        let far_min = self.far.peek().map(|Reverse(e)| e.time);
        if self.near_len == 0 {
            return far_min;
        }
        // First non-empty bucket from the cursor holds the earliest
        // calendar quantum; min-scan it.
        let mut slot = self.cursor;
        loop {
            if let Some(near_min) = self.near[slot].iter().map(|e| e.time).min() {
                return match far_min {
                    Some(f) if f < near_min => Some(f),
                    _ => Some(near_min),
                };
            }
            slot = (slot + 1) % NUM_BUCKETS;
        }
    }

    /// The full delivery key of the earliest pending event, if any: the
    /// `(time, rank, seq)` triple that [`EventQueue::pop_keyed`] would
    /// return next. Sharded schedulers cache this per shard to decide
    /// which queue holds the global minimum without popping.
    #[must_use]
    pub fn peek_key(&self) -> Option<EventKey> {
        let far_min = self.far.peek().map(|Reverse(e)| EventKey {
            time: e.time,
            rank: e.rank,
            seq: e.seq,
        });
        if self.near_len == 0 {
            return far_min;
        }
        let mut slot = self.cursor;
        loop {
            let near_min = self.near[slot]
                .iter()
                .map(|e| EventKey { time: e.time, rank: e.rank, seq: e.seq })
                .min();
            if let Some(near_min) = near_min {
                return match far_min {
                    Some(f) if f < near_min => Some(f),
                    _ => Some(near_min),
                };
            }
            slot = (slot + 1) % NUM_BUCKETS;
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far (a cheap progress/size
    /// metric for long simulations). Counts pops from both tiers, so
    /// `delivered() + len()` always equals the number of pushes.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_ns(7), "c");
        q.push(SimTime::from_ns(7), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn far_horizon_events_cross_the_window() {
        // One window is NUM_BUCKETS << BUCKET_SHIFT ns; schedule well
        // beyond it, plus near events, and check global order.
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(3 * window_ns), "far");
        q.push(SimTime::from_ns(5), "near");
        q.push(SimTime::from_ns(window_ns + 7), "mid");
        q.push(SimTime::from_ns(3 * window_ns), "far2"); // FIFO with "far"
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(5)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert!(q.pop().is_none());
        assert_eq!(q.delivered(), 4);
    }

    #[test]
    fn same_bucket_different_times_order_correctly() {
        // Distinct times inside one bucket quantum must still sort.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(900), "b");
        q.push(SimTime::from_ns(100), "a");
        q.push(SimTime::from_ns(1000), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn delivered_plus_len_equals_pushes() {
        let mut q = EventQueue::new();
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        for i in 0..1000u64 {
            q.push(SimTime::from_ns(i * 173 % (2 * window_ns)), i);
        }
        for _ in 0..400 {
            q.pop();
        }
        assert_eq!(q.delivered(), 400);
        assert_eq!(q.len(), 600);
        assert_eq!(q.delivered() + q.len() as u64, 1000);
    }

    /// Reference implementation: the original single-tier binary heap.
    struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<Entry<E>>>,
        seq: u64,
    }

    impl<E> HeapQueue<E> {
        fn new() -> Self {
            HeapQueue { heap: BinaryHeap::new(), seq: 0 }
        }

        fn push_ranked(&mut self, time: SimTime, rank: u8, event: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse(Entry { time, rank, seq, event }));
        }

        fn pop(&mut self) -> Option<(SimTime, E)> {
            let Reverse(e) = self.heap.pop()?;
            Some((e.time, e.event))
        }
    }

    /// Randomized differential test: the calendar queue must pop the
    /// exact same sequence as the heap-only reference for any interleaved
    /// push/pop schedule, including times that straddle the window.
    #[test]
    fn differential_against_heap_reference() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        for seed in 0..20u64 {
            let mut rng = Rng::new(0xCA1E_4DA2 ^ seed);
            let mut calendar = EventQueue::new();
            let mut reference = HeapQueue::new();
            // Simulated "now" only moves forward, like a real event loop,
            // but pushes may target any horizon from immediate to far
            // beyond one calendar window.
            let mut now = 0u64;
            let mut id = 0u64;
            for _ in 0..3000 {
                if rng.range_u64(0..3) == 0 {
                    let a = calendar.pop();
                    let b = reference.pop();
                    assert_eq!(
                        a.as_ref().map(|(t, e)| (*t, *e)),
                        b.as_ref().map(|(t, e)| (*t, *e)),
                        "divergence at seed {seed}"
                    );
                    if let Some((t, _)) = a {
                        now = now.max(t.as_ns());
                    }
                } else {
                    let horizon = match rng.range_u64(0..4) {
                        0 => rng.range_u64(0..1024),            // same bucket
                        1 => rng.range_u64(0..65536),           // near window
                        2 => rng.range_u64(0..window_ns),       // whole window
                        _ => rng.range_u64(0..3 * window_ns),   // far tier
                    };
                    let t = SimTime::from_ns(now + horizon);
                    let rank = if rng.range_u64(0..4) == 0 { ARRIVAL_RANK } else { DEFAULT_RANK };
                    calendar.push_ranked(t, rank, id);
                    reference.push_ranked(t, rank, id);
                    id += 1;
                }
            }
            // Drain both completely.
            loop {
                let a = calendar.pop();
                let b = reference.pop();
                assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e)),
                    "drain divergence at seed {seed}"
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// A lower-rank event pushed *after* a same-time default-rank event
    /// still pops first: the rank decides the tie, not push order.
    #[test]
    fn lower_rank_wins_same_time_ties() {
        let t = SimTime::from_ns(500);
        let mut q = EventQueue::new();
        q.push(t, "internal");
        q.push_ranked(t, ARRIVAL_RANK, "arrival");
        q.push(t, "internal2");
        q.push_ranked(t, ARRIVAL_RANK, "arrival2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["arrival", "arrival2", "internal", "internal2"]);
    }

    /// The pop order of ranked arrivals must not depend on whether they
    /// were pushed up front (batch) or just-in-time between pops (live):
    /// the exact invariant the service front-end relies on.
    #[test]
    fn rank_makes_push_time_irrelevant() {
        let arrivals = [(10u64, "a0"), (20, "a1"), (20, "a2"), (35, "a3")];
        let internals = [(10u64, "i0"), (20, "i1"), (35, "i2")];

        // Batch: all arrivals first (lowest seqs), then internals.
        let mut batch = EventQueue::new();
        for &(t, e) in &arrivals {
            batch.push_ranked(SimTime::from_ns(t), ARRIVAL_RANK, e);
        }
        for &(t, e) in &internals {
            batch.push(SimTime::from_ns(t), e);
        }
        let batch_order: Vec<&str> =
            std::iter::from_fn(|| batch.pop().map(|(_, e)| e)).collect();

        // Live: internals first, arrivals injected interleaved with pops.
        let mut live = EventQueue::new();
        for &(t, e) in &internals {
            live.push(SimTime::from_ns(t), e);
        }
        let mut live_order = Vec::new();
        let mut pending = arrivals.iter().peekable();
        loop {
            // Inject every arrival due at or before the next pop instant.
            while let Some(&&(t, e)) = pending.peek() {
                let due = match live.peek_time() {
                    Some(next) => SimTime::from_ns(t) <= next,
                    None => true,
                };
                if !due {
                    break;
                }
                live.push_ranked(SimTime::from_ns(t), ARRIVAL_RANK, e);
                pending.next();
            }
            match live.pop() {
                Some((_, e)) => live_order.push(e),
                None => break,
            }
        }
        assert_eq!(live_order, batch_order);
    }

    /// `pop_if` with an always-true predicate is exactly `pop`; with an
    /// always-false predicate it must leave the queue untouched.
    #[test]
    fn pop_if_is_pop_or_noop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), "late");
        q.push(SimTime::from_ns(10), "early");
        q.push(SimTime::from_ns(10), "early2");
        assert_eq!(q.pop_if(|_, _| false), None);
        assert_eq!(q.len(), 3);
        // Declining must not reorder: the FIFO tie still resolves in
        // insertion order afterwards.
        assert_eq!(q.pop_if(|_, e| *e == "early"), Some((SimTime::from_ns(10), "early")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early2")));
        assert_eq!(q.pop_if(|t, _| t.as_ns() < 100), Some((SimTime::from_ns(30), "late")));
        assert_eq!(q.pop_if(|_, _| true), None);
    }

    /// Randomized differential: an interleaved schedule of pushes and
    /// `pop_if` calls must match peek-then-pop on the heap reference —
    /// the fused bucket scan may not see a different minimum than `pop`
    /// would, and a declined pop must leave the queue bit-identical.
    #[test]
    fn pop_if_differential_against_peek_then_pop() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        for seed in 0..10u64 {
            let mut rng = Rng::new(0x90F1_F000 ^ seed);
            let mut calendar = EventQueue::new();
            let mut reference = HeapQueue::new();
            let mut now = 0u64;
            let mut id = 0u64;
            for _ in 0..3000 {
                if rng.range_u64(0..3) == 0 {
                    // The predicate depends on both time and payload so
                    // declines are state-dependent, like the NoC burst
                    // loop's "only same-or-earlier NoC events" filter.
                    let bound = now + rng.range_u64(0..256);
                    let a = calendar.pop_if(|t, e| t.as_ns() <= bound && e % 3 != 0);
                    let b = match reference.heap.peek() {
                        Some(Reverse(e)) if e.time.as_ns() <= bound && e.event % 3 != 0 => {
                            reference.pop()
                        }
                        _ => None,
                    };
                    assert_eq!(a, b, "divergence at seed {seed}");
                    if let Some((t, _)) = a {
                        now = now.max(t.as_ns());
                    }
                } else {
                    let horizon = match rng.range_u64(0..3) {
                        0 => rng.range_u64(0..1024),
                        1 => rng.range_u64(0..window_ns),
                        _ => rng.range_u64(0..3 * window_ns),
                    };
                    let t = SimTime::from_ns(now + horizon);
                    calendar.push(t, id);
                    reference.push_ranked(t, DEFAULT_RANK, id);
                    id += 1;
                }
            }
            loop {
                let a = calendar.pop();
                let b = reference.pop();
                assert_eq!(a, b, "drain divergence at seed {seed}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// `push_keyed` with keys minted from an external counter must pop in
    /// exact key order, and `peek_key`/`pop_keyed` must agree with each
    /// other across both tiers.
    #[test]
    fn keyed_push_pop_roundtrip() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        let keys = [
            EventKey { time: SimTime::from_ns(2 * window_ns), rank: DEFAULT_RANK, seq: 0 },
            EventKey { time: SimTime::from_ns(50), rank: DEFAULT_RANK, seq: 1 },
            EventKey { time: SimTime::from_ns(50), rank: ARRIVAL_RANK, seq: 2 },
            EventKey { time: SimTime::from_ns(50), rank: DEFAULT_RANK, seq: 3 },
            EventKey { time: SimTime::from_ns(7), rank: DEFAULT_RANK, seq: 4 },
        ];
        for (i, &k) in keys.iter().enumerate() {
            q.push_keyed(k, i);
        }
        let mut sorted = keys;
        sorted.sort();
        for &want in &sorted {
            assert_eq!(q.peek_key(), Some(want));
            assert_eq!(q.peek_time(), Some(want.time));
            let (got, ev) = q.pop_keyed().unwrap();
            assert_eq!(got, want);
            assert_eq!(keys[ev], want);
        }
        assert_eq!(q.peek_key(), None);
        assert_eq!(q.pop_keyed(), None);
    }

    /// Randomized: `peek_key` must always name the entry `pop_keyed`
    /// returns next, even with sparse far-tier keys and shared-counter
    /// seq gaps (a shard only sees a subset of the global sequence).
    #[test]
    fn peek_key_matches_pop_keyed() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let mut rng = Rng::new(0x5EED_4E51);
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..2000 {
            if rng.range_u64(0..3) == 0 {
                let peeked = q.peek_key();
                let popped = q.pop_keyed();
                assert_eq!(peeked, popped.as_ref().map(|(k, _)| *k));
                if let Some((k, _)) = popped {
                    now = now.max(k.time.as_ns());
                }
            } else {
                let t = SimTime::from_ns(now + rng.range_u64(0..2 * window_ns));
                let rank = if rng.range_u64(0..4) == 0 { ARRIVAL_RANK } else { DEFAULT_RANK };
                // Gappy seqs: a shard owns a slice of the shared counter.
                seq += 1 + rng.range_u64(0..5);
                q.push_keyed(EventKey { time: t, rank, seq }, ());
            }
        }
    }

    /// Ties pushed into different tiers (one far, one near after the
    /// window slides) must still break FIFO by insertion order.
    #[test]
    fn cross_tier_ties_break_fifo() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let t = SimTime::from_ns(2 * window_ns + 11);
        let mut q = EventQueue::new();
        q.push(t, "first"); // far tier
        q.push(SimTime::from_ns(1), "warm");
        assert_eq!(q.pop().unwrap().1, "warm");
        // Window has not slid past t yet; push the tie directly.
        q.push(t, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }
}

#[cfg(all(test, feature = "proptest"))]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any push sequence drains in (time, insertion) order.
        #[test]
        fn drains_in_stable_time_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ns(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut count = 0;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li, "FIFO tie-break violated");
                    }
                }
                last = Some((t, i));
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// Interleaved push/pop never loses or duplicates events.
        #[test]
        fn conservation_under_interleaving(
            ops in proptest::collection::vec((any::<bool>(), 0u64..100), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut pushed = 0u64;
            let mut popped = 0u64;
            for (is_pop, t) in ops {
                if is_pop {
                    if q.pop().is_some() {
                        popped += 1;
                    }
                } else {
                    q.push(SimTime::from_ns(t), ());
                    pushed += 1;
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(pushed, popped);
        }
    }
}
