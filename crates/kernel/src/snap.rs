//! A tiny hand-rolled binary snapshot codec.
//!
//! The workspace vendors no external crates, so "serde" here is a
//! length-prefixed little-endian byte format with explicit `put_*` /
//! `take_*` pairs. It is deliberately dumb: no schema evolution, no
//! varints, no reflection. A snapshot is only ever read back by the same
//! build that wrote it (the format version is checked on load), which is
//! exactly the contract a resumable simulation needs — a snapshot from a
//! different build would not replay bit-identically anyway.

use std::fmt;

/// Error returned when a snapshot buffer cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SnapError {}

/// Append-only snapshot writer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor-based snapshot reader over an encoded buffer.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, message: &str) -> SnapError {
        SnapError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err("unexpected end of snapshot"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; rejects bytes other than 0 and 1.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an out-of-range byte.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.err("invalid bool byte")),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that do not
    /// fit the platform.
    ///
    /// # Errors
    ///
    /// Fails on truncation or overflow.
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.take_u64()?).map_err(|_| self.err("usize overflow"))
    }

    /// Reads a length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// Fails if the declared length exceeds the remaining buffer.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.take_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn take_str(&mut self) -> Result<&'a str, SnapError> {
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| SnapError {
            message: "invalid UTF-8 string".to_string(),
            offset: self.pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.125);
        w.put_usize(42);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("dssd");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_f64().unwrap(), -0.125);
        assert_eq!(r.take_usize().unwrap(), 42);
        assert_eq!(r.take_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.take_str().unwrap(), "dssd");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        let e = r.take_u64().unwrap_err();
        assert!(e.message.contains("end of snapshot"));
    }

    #[test]
    fn bad_bool_rejected() {
        let bytes = [9u8];
        let mut r = SnapReader::new(&bytes);
        assert!(r.take_bool().is_err());
    }
}
