//! Conservative parallel discrete-event execution.
//!
//! Two cooperating layers, both deterministic by construction:
//!
//! * [`ShardedQueue`] — splits one logical future-event list across
//!   per-shard [`EventQueue`]s while preserving the *exact* global pop
//!   order of a single queue. Every push is stamped with an [`EventKey`]
//!   minted from one shared sequence counter, so merging the shard heads
//!   by key reproduces the single-queue `(time, rank, seq)` order bit for
//!   bit. Parallelism comes from *batch extraction*: when the consumer
//!   drains the queue faster than one core can feed it, worker threads
//!   pre-pop sorted runs from each shard's calendar concurrently, and the
//!   consumer merges run heads against live calendar heads. Extraction
//!   timing, batch sizes and thread scheduling cannot change the pop
//!   order — only which (pre-sorted) container an event is served from.
//!   This is how a simulator whose handlers share entangled state (the
//!   SSD sim) can still move its queue work off the critical path without
//!   risking a single byte of divergence.
//!
//! * [`BarrierEngine`] — a classic conservative (CMB-style) parallel
//!   executor for models whose state *does* partition cleanly across
//!   shards. Shards run their handlers concurrently inside lookahead
//!   barrier epochs; cross-shard pushes travel through per-pair SPSC
//!   mailboxes drained at each barrier. The lookahead contract — a
//!   cross-shard message may not be scheduled earlier than `now +
//!   lookahead` — guarantees no shard ever pops an event earlier than an
//!   undelivered remote one (see the epoch invariant on
//!   [`BarrierEngine::run`]). Delivery order at each barrier is fixed
//!   (destination-major, then source, then send order), so results are
//!   independent of thread interleaving.
//!
//! The lookahead itself is model-specific: for the dSSD fabric it derives
//! from the minimum cross-shard latency (flit serialization on
//! inter-region links, channel-bus transfer for ctrl→flash legs); the
//! `dssd-noc` and `dssd-ssd` crates compute it from their configs.

use std::collections::VecDeque;

use crate::event::EventKey;
use crate::{EventQueue, SimSpan, SimTime};

/// Default per-shard batch size for one extraction round.
const RUN_BATCH: usize = 8192;
/// Default minimum shard backlog before extraction engages. Extraction
/// only pays when the pre-popped run is large enough to amortize the
/// worker-thread spawn; below this, pops come straight from the shard
/// calendars (still exact, no extraction overhead).
const SPAWN_MIN: usize = 1024;

/// A deterministic event queue split across shards, preserving exact
/// single-queue order.
///
/// Push with an explicit shard id; pop globally. The pop order equals a
/// single [`EventQueue`] fed by the same pushes in the same call order,
/// for *any* shard count, shard assignment, or extraction tuning — a
/// property the randomized differential tests below assert.
///
/// # Example
///
/// ```
/// use dssd_kernel::{ShardedQueue, SimTime, DEFAULT_RANK};
///
/// let mut q = ShardedQueue::new(2);
/// q.push(0, SimTime::from_us(2), DEFAULT_RANK, "late");
/// q.push(1, SimTime::from_us(1), DEFAULT_RANK, "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// ```
#[derive(Debug, Clone)]
pub struct ShardedQueue<E> {
    shards: Vec<EventQueue<E>>,
    /// Pre-extracted sorted runs, one per shard. Extraction pops from a
    /// shard's calendar, so each run is ascending by key.
    runs: Vec<VecDeque<(EventKey, E)>>,
    /// Cached earliest calendar key per shard; `None` = calendar empty.
    /// Invariant: `heads[i] == shards[i].peek_key()` at all times.
    heads: Vec<Option<EventKey>>,
    /// Shared sequence counter: the global FIFO tie-break.
    next_seq: u64,
    delivered: u64,
    len: usize,
    run_items: usize,
    batch: usize,
    spawn_min: usize,
    /// Spawn extraction workers even on a single-core host (test hook:
    /// the parallel path must be exercised regardless of the machine).
    force_parallel: bool,
}

/// Where the current global minimum lives.
enum Source {
    Run(usize),
    Calendar(usize),
}

/// One shard's extraction slot — its calendar queue, run buffer, and
/// cached head key — borrowed together for the scoped workers.
type ShardSlot<'a, E> = (
    &'a mut EventQueue<E>,
    &'a mut VecDeque<(EventKey, E)>,
    &'a mut Option<EventKey>,
);

impl<E: Send> ShardedQueue<E> {
    /// Creates a queue with `shards` partitions (at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedQueue {
            shards: (0..shards).map(|_| EventQueue::new()).collect(),
            runs: (0..shards).map(|_| VecDeque::new()).collect(),
            heads: vec![None; shards],
            next_seq: 0,
            delivered: 0,
            len: 0,
            run_items: 0,
            batch: RUN_BATCH,
            spawn_min: SPAWN_MIN,
            force_parallel: false,
        }
    }

    /// Overrides the extraction tuning (batch size per round, minimum
    /// backlog to engage) and forces worker threads even on a single-core
    /// host. Pop order is invariant under tuning — tests use tiny values
    /// to force the extraction path on small schedules.
    #[must_use]
    pub fn with_tuning(mut self, batch: usize, spawn_min: usize) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self.spawn_min = spawn_min.max(1);
        self.force_parallel = true;
        self
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Schedules `event` at `time` on `shard` with a same-time rank.
    /// The shard id affects only *where* the event is stored (and thus
    /// which extraction worker handles it), never the pop order.
    pub fn push(&mut self, shard: usize, time: SimTime, rank: u8, event: E) {
        let key = EventKey { time, rank, seq: self.next_seq };
        self.next_seq += 1;
        self.shards[shard].push_keyed(key, event);
        if self.heads[shard].is_none_or(|h| key < h) {
            self.heads[shard] = Some(key);
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.run_items == 0 {
            self.maybe_refill();
        }
        let (key, src) = self.best_source()?;
        Some((key.time, self.take(key, src)))
    }

    /// Removes and returns the earliest event only if `pred` accepts it;
    /// otherwise the queue is untouched. Mirrors [`EventQueue::pop_if`].
    pub fn pop_if(&mut self, pred: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        if self.run_items == 0 {
            self.maybe_refill();
        }
        let (key, src) = self.best_source()?;
        let accept = match src {
            Source::Run(i) => {
                let (_, ev) = self.runs[i].front().expect("run head vanished");
                pred(key.time, ev)
            }
            Source::Calendar(i) => {
                let (t, ev) = self.shards[i].pop_if(pred)?;
                debug_assert_eq!(t, key.time);
                self.heads[i] = self.shards[i].peek_key();
                self.len -= 1;
                self.delivered += 1;
                return Some((t, ev));
            }
        };
        if !accept {
            return None;
        }
        Some((key.time, self.take(key, src)))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|k| k.time)
    }

    /// The delivery key of the earliest pending event, if any.
    #[must_use]
    pub fn peek_key(&self) -> Option<EventKey> {
        self.best_source().map(|(k, _)| k)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events handed to the consumer so far. Extraction pops are *not*
    /// counted: `delivered() + len()` equals the number of pushes, same
    /// as the single-queue accounting.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Finds the shard and container holding the global minimum key.
    /// A shard's run head and calendar head are both candidates: a push
    /// made after extraction can be earlier than the run's remaining
    /// entries (a handler at time `t` scheduling `t + ε` while the run
    /// already holds `t + 2ε`).
    fn best_source(&self) -> Option<(EventKey, Source)> {
        let mut best: Option<(EventKey, Source)> = None;
        for i in 0..self.shards.len() {
            if let Some(&(k, _)) = self.runs[i].front() {
                if best.as_ref().is_none_or(|(b, _)| k < *b) {
                    best = Some((k, Source::Run(i)));
                }
            }
            if let Some(k) = self.heads[i] {
                if best.as_ref().is_none_or(|(b, _)| k < *b) {
                    best = Some((k, Source::Calendar(i)));
                }
            }
        }
        best
    }

    fn take(&mut self, key: EventKey, src: Source) -> E {
        let ev = match src {
            Source::Run(i) => {
                self.run_items -= 1;
                let (k, ev) = self.runs[i].pop_front().expect("run head vanished");
                debug_assert_eq!(k, key);
                ev
            }
            Source::Calendar(i) => {
                let (k, ev) = self.shards[i].pop_keyed().expect("calendar head vanished");
                debug_assert_eq!(k, key);
                self.heads[i] = self.shards[i].peek_key();
                ev
            }
        };
        self.len -= 1;
        self.delivered += 1;
        ev
    }

    /// Extracts sorted runs from shard calendars on worker threads when
    /// enough backlog exists to amortize the spawn. Requires at least two
    /// qualifying shards — with one there is nothing to overlap, and
    /// serving straight from the calendar is strictly cheaper. On a
    /// single-core host extraction is skipped entirely (it could only
    /// add overhead); pop order is identical either way.
    fn maybe_refill(&mut self) {
        if !self.force_parallel && host_cores() < 2 {
            return;
        }
        let qualifying = self.shards.iter().filter(|q| q.len() >= self.spawn_min).count();
        if qualifying < 2 {
            return;
        }
        let batch = self.batch;
        let spawn_min = self.spawn_min;
        let mut extracted = 0;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut inline: Option<ShardSlot<'_, E>> = None;
            for ((q, run), head) in self
                .shards
                .iter_mut()
                .zip(self.runs.iter_mut())
                .zip(self.heads.iter_mut())
            {
                if q.len() < spawn_min {
                    continue;
                }
                if inline.is_none() {
                    // The coordinator extracts the first qualifying shard
                    // itself instead of idling at the join.
                    inline = Some((q, run, head));
                } else {
                    handles.push(scope.spawn(move || extract(q, run, head, batch)));
                }
            }
            if let Some((q, run, head)) = inline {
                extracted += extract(q, run, head, batch);
            }
            for h in handles {
                extracted += h.join().expect("extraction worker panicked");
            }
        });
        self.run_items += extracted;
    }
}

/// Cached host core count; extraction threads only engage on multi-core
/// machines.
fn host_cores() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Pops up to `batch` events from one shard's calendar into its run and
/// refreshes the cached head. Runs stay sorted because calendar pops are.
fn extract<E>(
    q: &mut EventQueue<E>,
    run: &mut VecDeque<(EventKey, E)>,
    head: &mut Option<EventKey>,
    batch: usize,
) -> usize {
    let mut n = 0;
    while n < batch {
        match q.pop_keyed() {
            Some(ke) => {
                run.push_back(ke);
                n += 1;
            }
            None => break,
        }
    }
    *head = q.peek_key();
    n
}

/// One shard of a [`BarrierEngine`] model: owns its slice of state and
/// handles its events. Implementations must not share mutable state
/// across shards — all cross-shard interaction goes through
/// [`Outbox::send`].
pub trait ShardWorker: Send {
    /// The event type flowing through this model.
    type Ev: Send;

    /// Handles one event at simulated time `now`. Follow-ups for this
    /// shard go through [`Outbox::push_local`]; events for other shards
    /// through [`Outbox::send`], subject to the lookahead contract.
    fn handle(&mut self, now: SimTime, ev: Self::Ev, out: &mut Outbox<'_, Self::Ev>);
}

/// A per-pair mailbox: written only by its source shard's worker during
/// the parallel phase, drained only by the coordinator at the barrier —
/// single producer, single consumer by construction.
type Mailbox<E> = Vec<(SimTime, E)>;

/// The scheduling interface handed to [`ShardWorker::handle`].
#[derive(Debug)]
pub struct Outbox<'a, E> {
    now: SimTime,
    lookahead: SimSpan,
    shard: usize,
    local: &'a mut EventQueue<E>,
    remote: &'a mut [Mailbox<E>],
}

impl<E> Outbox<'_, E> {
    /// The timestamp of the event being handled.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's lookahead: the minimum cross-shard scheduling delay.
    #[must_use]
    pub fn lookahead(&self) -> SimSpan {
        self.lookahead
    }

    /// Schedules a follow-up on this shard, at any time `t >= now`.
    pub fn push_local(&mut self, t: SimTime, ev: E) {
        assert!(t >= self.now, "local event scheduled in the past");
        self.local.push(t, ev);
    }

    /// Sends an event to shard `dst`. Cross-shard sends must respect the
    /// lookahead contract: `t >= now + lookahead`. Sends to the own shard
    /// degrade to [`Outbox::push_local`].
    ///
    /// # Panics
    ///
    /// Panics when a cross-shard send violates the lookahead — a modeling
    /// bug that would break the conservative epoch invariant.
    pub fn send(&mut self, dst: usize, t: SimTime, ev: E) {
        if dst == self.shard {
            self.push_local(t, ev);
            return;
        }
        assert!(
            t >= self.now + self.lookahead,
            "cross-shard send at {t} violates the lookahead contract (now {} + lookahead {})",
            self.now,
            self.lookahead,
        );
        self.remote[dst].push((t, ev));
    }
}

/// Counters from a [`BarrierEngine`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierStats {
    /// Barrier epochs executed.
    pub epochs: u64,
    /// Events handled across all shards.
    pub events: u64,
    /// Cross-shard messages delivered at barriers.
    pub messages: u64,
}

/// A conservative parallel discrete-event executor over partitioned
/// state.
///
/// Each epoch: compute the global minimum pending time `T`, set the
/// barrier `B = min(T + lookahead, horizon)`, let every shard process its
/// events with `t < B` concurrently, then deliver the mailboxes in fixed
/// (destination, source, send) order and repeat.
///
/// **Epoch invariant:** every event processed in an epoch has `t >= T`,
/// so every cross-shard message it sends has timestamp
/// `>= t + lookahead >= T + lookahead >= B` — no message can land inside
/// the window a peer shard is currently executing, which is exactly why
/// no shard ever pops an event earlier than an undelivered remote one.
/// Delivery order is deterministic, so the run's result is independent of
/// thread scheduling; [`BarrierEngine::run_reference`] executes the same
/// epochs without threads and must produce bit-identical state.
pub struct BarrierEngine<W: ShardWorker> {
    workers: Vec<W>,
    queues: Vec<EventQueue<W::Ev>>,
    /// `mailboxes[src][dst]`; see [`Mailbox`] for the SPSC discipline.
    mailboxes: Vec<Vec<Mailbox<W::Ev>>>,
    lookahead: SimSpan,
    stats: BarrierStats,
}

impl<W: ShardWorker> std::fmt::Debug for BarrierEngine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BarrierEngine")
            .field("shards", &self.workers.len())
            .field("lookahead", &self.lookahead)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<W: ShardWorker> BarrierEngine<W> {
    /// Creates an engine over `workers` shards with the given lookahead.
    ///
    /// # Panics
    ///
    /// Panics on an empty worker set or a zero lookahead (a zero
    /// lookahead admits no parallel window: the barrier would equal the
    /// minimum pending time and every epoch would be empty).
    #[must_use]
    pub fn new(workers: Vec<W>, lookahead: SimSpan) -> Self {
        assert!(!workers.is_empty(), "need at least one shard");
        assert!(!lookahead.is_zero(), "lookahead must be positive");
        let n = workers.len();
        BarrierEngine {
            workers,
            queues: (0..n).map(|_| EventQueue::new()).collect(),
            mailboxes: (0..n).map(|_| (0..n).map(|_| Vec::new()).collect()).collect(),
            lookahead,
            stats: BarrierStats::default(),
        }
    }

    /// Schedules an initial event on `shard`.
    pub fn seed(&mut self, shard: usize, t: SimTime, ev: W::Ev) {
        self.queues[shard].push(t, ev);
    }

    /// Run counters so far.
    #[must_use]
    pub fn stats(&self) -> BarrierStats {
        self.stats
    }

    /// The shard workers, for result extraction.
    #[must_use]
    pub fn workers(&self) -> &[W] {
        &self.workers
    }

    /// Consumes the engine, returning the shard workers.
    #[must_use]
    pub fn into_workers(self) -> Vec<W> {
        self.workers
    }

    /// Executes barrier epochs on worker threads until every event before
    /// `horizon` (exclusive) is handled.
    pub fn run(&mut self, horizon: SimTime) {
        self.run_epochs(horizon, true);
    }

    /// Identical schedule to [`BarrierEngine::run`], executed without
    /// threads. Exists so tests can assert the threaded run is
    /// bit-identical to a serial one.
    pub fn run_reference(&mut self, horizon: SimTime) {
        self.run_epochs(horizon, false);
    }

    fn run_epochs(&mut self, horizon: SimTime, threaded: bool) {
        while let Some(t_min) = self.queues.iter().filter_map(EventQueue::peek_time).min() {
            if t_min >= horizon {
                break;
            }
            let barrier = (t_min + self.lookahead).min(horizon);
            let lookahead = self.lookahead;
            let mut events = 0u64;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut own = None;
                for (shard, ((w, q), row)) in self
                    .workers
                    .iter_mut()
                    .zip(self.queues.iter_mut())
                    .zip(self.mailboxes.iter_mut())
                    .enumerate()
                {
                    if !threaded {
                        // Serial reference: same epochs, shard order.
                        events += run_shard(shard, w, q, row, barrier, lookahead);
                    } else if shard == 0 {
                        // The coordinator works shard 0 itself instead of
                        // idling at the join; spawn the rest first.
                        own = Some((shard, w, q, row));
                    } else {
                        handles.push(
                            scope.spawn(move || run_shard(shard, w, q, row, barrier, lookahead)),
                        );
                    }
                }
                if let Some((shard, w, q, row)) = own {
                    events += run_shard(shard, w, q, row, barrier, lookahead);
                }
                for h in handles {
                    events += h.join().expect("shard worker panicked");
                }
            });
            // Barrier: deliver mailboxes in fixed (dst, src, send) order.
            let n = self.workers.len();
            for dst in 0..n {
                for src in 0..n {
                    for (t, ev) in self.mailboxes[src][dst].drain(..) {
                        debug_assert!(t >= barrier, "conservative epoch invariant violated");
                        self.queues[dst].push(t, ev);
                        self.stats.messages += 1;
                    }
                }
            }
            self.stats.epochs += 1;
            self.stats.events += events;
        }
    }
}

/// One shard's slice of an epoch: drain events strictly before `barrier`.
fn run_shard<W: ShardWorker>(
    shard: usize,
    w: &mut W,
    q: &mut EventQueue<W::Ev>,
    row: &mut [Mailbox<W::Ev>],
    barrier: SimTime,
    lookahead: SimSpan,
) -> u64 {
    let mut n = 0;
    while let Some((t, ev)) = q.pop_if(|t, _| t < barrier) {
        let mut out = Outbox { now: t, lookahead, shard, local: q, remote: row };
        w.handle(t, ev, &mut out);
        n += 1;
    }
    n
}

pub mod demo {
    //! A synthetic partitioned model exercising the [`BarrierEngine`]:
    //! per-shard "channel farms" whose stations complete jobs, burn a
    //! deterministic amount of handler CPU, and occasionally forward a
    //! job to another shard with at least the lookahead of delay.
    //!
    //! Timestamps are laid out on a 256 ns residue grid encoding
    //! `(destination, source)` so that no two events from different
    //! sources ever tie — the one schedule class where barrier delivery
    //! order and single-queue push order could differ. Under that
    //! restriction the engine must match a plain single-queue execution
    //! of the same model bit for bit, which the kernel tests assert and
    //! the `shard_engine` bench rows exploit for honest scaling numbers.

    use super::{BarrierEngine, BarrierStats, Outbox, ShardWorker};
    use crate::{EventQueue, Rng, SimSpan, SimTime};

    /// Residue grid: times are congruent to `dst * GRID_SRC + src`
    /// modulo `GRID`, which makes cross-source same-time ties impossible.
    const GRID: u64 = 256;
    const GRID_SRC: u64 = 16;
    /// Lookahead of the demo fabric, a multiple of the grid.
    pub const LOOKAHEAD_NS: u64 = 4096;

    /// Tuning for the demo model.
    #[derive(Debug, Clone, Copy)]
    pub struct DemoConfig {
        /// Shards (parallel workers).
        pub shards: usize,
        /// Stations per shard, each cycling one job.
        pub stations: usize,
        /// Handler CPU burn: xoshiro draws folded per event.
        pub work: u32,
        /// Forward a finished job cross-shard once every `cross_every`
        /// completions (0 = never).
        pub cross_every: u32,
    }

    impl Default for DemoConfig {
        fn default() -> Self {
            DemoConfig { shards: 4, stations: 1024, work: 64, cross_every: 8 }
        }
    }

    /// A completed job at one station.
    #[derive(Debug, Clone, Copy)]
    pub struct JobDone {
        /// Station index within the owning shard.
        pub station: u32,
    }

    /// One shard's state: a bank of stations plus measurement folds.
    #[derive(Debug, Clone)]
    pub struct Farm {
        shard: usize,
        shards: usize,
        work: u32,
        cross_every: u32,
        rng: Rng,
        handled: u64,
        forwarded: u64,
        digest: u64,
    }

    impl Farm {
        fn new(shard: usize, cfg: &DemoConfig) -> Farm {
            Farm {
                shard,
                shards: cfg.shards,
                work: cfg.work,
                cross_every: cfg.cross_every,
                rng: Rng::new(0xFA43 ^ ((shard as u64) << 8)),
                handled: 0,
                forwarded: 0,
                digest: 0xcbf29ce484222325,
            }
        }

        /// A state fingerprint: equal digests mean equal executions.
        #[must_use]
        pub fn digest(&self) -> u64 {
            self.digest
                ^ self.rng.state_digest()
                ^ self.handled.wrapping_mul(0x9E3779B97F4A7C15)
                ^ self.forwarded.rotate_left(17)
        }

        /// Events handled by this shard.
        #[must_use]
        pub fn handled(&self) -> u64 {
            self.handled
        }

        /// Next service completion, kept on this shard's residue class.
        fn service(&mut self, now: SimTime) -> SimTime {
            let spans = 8 + self.rng.range_u64(0..24); // 2–8 µs, grid units
            align(now + SimSpan::from_ns(spans * GRID), self.shard, self.shard)
        }

        fn burn(&mut self, station: u32) {
            let mut acc = self.digest ^ u64::from(station);
            for _ in 0..self.work {
                acc = acc.rotate_left(7) ^ self.rng.next_u64();
            }
            self.digest = acc;
        }
    }

    /// Rounds `t` up onto the residue class of (src → dst).
    fn align(t: SimTime, dst: usize, src: usize) -> SimTime {
        let want = (dst as u64 % GRID_SRC) * GRID_SRC + (src as u64 % GRID_SRC);
        let rem = t.as_ns() % GRID;
        let add = (want + GRID - rem) % GRID;
        t + SimSpan::from_ns(add)
    }

    impl ShardWorker for Farm {
        type Ev = JobDone;

        fn handle(&mut self, now: SimTime, ev: JobDone, out: &mut Outbox<'_, JobDone>) {
            self.handled += 1;
            self.burn(ev.station);
            let next = self.service(now);
            if self.cross_every != 0 && self.handled.is_multiple_of(u64::from(self.cross_every)) {
                let dst = self.rng.index(self.shards);
                if dst != self.shard {
                    self.forwarded += 1;
                    let t = align(now + SimSpan::from_ns(LOOKAHEAD_NS + GRID), dst, self.shard);
                    out.send(dst, t, ev);
                    return;
                }
            }
            out.push_local(next, ev);
        }
    }

    /// Builds a seeded engine for `cfg`.
    #[must_use]
    pub fn build(cfg: &DemoConfig) -> BarrierEngine<Farm> {
        let workers = (0..cfg.shards).map(|s| Farm::new(s, cfg)).collect();
        let mut eng = BarrierEngine::new(workers, SimSpan::from_ns(LOOKAHEAD_NS));
        seed(cfg, |shard, t, ev| eng.seed(shard, t, ev));
        eng
    }

    fn seed(cfg: &DemoConfig, mut push: impl FnMut(usize, SimTime, JobDone)) {
        for shard in 0..cfg.shards {
            for station in 0..cfg.stations {
                // Stagger starts across the grid, on-residue per shard.
                let t0 = align(
                    SimTime::from_ns((station as u64 % 64) * GRID),
                    shard,
                    shard,
                );
                push(shard, t0, JobDone { station: station as u32 });
            }
        }
    }

    /// Runs the engine (threaded) and returns per-shard digests plus
    /// stats.
    #[must_use]
    pub fn run_engine(cfg: &DemoConfig, horizon: SimTime) -> (Vec<u64>, BarrierStats) {
        let mut eng = build(cfg);
        eng.run(horizon);
        let stats = eng.stats();
        (eng.workers().iter().map(Farm::digest).collect(), stats)
    }

    /// Reference execution of the same model on one plain [`EventQueue`],
    /// no shards, no barriers, no threads. Under the residue-grid tie
    /// freedom this must match [`run_engine`] bit for bit.
    #[must_use]
    pub fn run_single(cfg: &DemoConfig, horizon: SimTime) -> Vec<u64> {
        let mut farms: Vec<Farm> = (0..cfg.shards).map(|s| Farm::new(s, cfg)).collect();
        let mut q: EventQueue<(usize, JobDone)> = EventQueue::new();
        seed(cfg, |shard, t, ev| q.push(t, (shard, ev)));
        let lookahead = SimSpan::from_ns(LOOKAHEAD_NS);
        while let Some((t, (shard, ev))) = q.pop_if(|t, _| t < horizon) {
            // Inline single-queue analogue of the Outbox: locals and
            // remotes all land in the one queue, tagged by shard.
            let farm = &mut farms[shard];
            farm.handled += 1;
            farm.burn(ev.station);
            let next = farm.service(t);
            if farm.cross_every != 0 && farm.handled.is_multiple_of(u64::from(farm.cross_every)) {
                let dst = farm.rng.index(farm.shards);
                if dst != shard {
                    farm.forwarded += 1;
                    let at = align(t + SimSpan::from_ns(LOOKAHEAD_NS + GRID), dst, shard);
                    assert!(at >= t + lookahead);
                    q.push(at, (dst, ev));
                    continue;
                }
            }
            q.push(next, (shard, ev));
        }
        farms.iter().map(Farm::digest).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::demo::{run_engine, run_single, DemoConfig};
    use super::*;
    use crate::{Rng, ARRIVAL_RANK, DEFAULT_RANK};

    /// Reference for the sharded queue: one plain EventQueue fed by the
    /// same push sequence.
    fn differential_schedule(shards: usize, seed: u64, tuning: Option<(usize, usize)>) {
        let mut sharded = ShardedQueue::new(shards);
        if let Some((batch, spawn_min)) = tuning {
            sharded = sharded.with_tuning(batch, spawn_min);
        }
        let mut reference: EventQueue<u64> = EventQueue::new();
        let mut rng = Rng::new(0x54A4D ^ seed);
        let mut now = 0u64;
        let mut id = 0u64;
        for _ in 0..4000 {
            match rng.range_u64(0..5) {
                0 | 1 => {
                    let a = sharded.pop();
                    let b = reference.pop();
                    assert_eq!(a, b, "pop divergence at seed {seed}");
                    if let Some((t, _)) = a {
                        now = now.max(t.as_ns());
                    }
                }
                2 => {
                    let bound = now + rng.range_u64(0..512);
                    let a = sharded.pop_if(|t, e| t.as_ns() <= bound && e % 3 != 0);
                    let b = reference.pop_if(|t, e| t.as_ns() <= bound && e % 3 != 0);
                    assert_eq!(a, b, "pop_if divergence at seed {seed}");
                    if let Some((t, _)) = a {
                        now = now.max(t.as_ns());
                    }
                }
                _ => {
                    let t = SimTime::from_ns(now + rng.range_u64(0..200_000));
                    let rank = if rng.range_u64(0..5) == 0 { ARRIVAL_RANK } else { DEFAULT_RANK };
                    let shard = rng.index(shards);
                    sharded.push(shard, t, rank, id);
                    reference.push_ranked(t, rank, id);
                    id += 1;
                }
            }
            assert_eq!(sharded.len(), reference.len());
        }
        loop {
            assert_eq!(sharded.peek_key().map(|k| k.time), sharded.peek_time());
            let a = sharded.pop();
            let b = reference.pop();
            assert_eq!(a, b, "drain divergence at seed {seed}");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(sharded.delivered(), reference.delivered());
    }

    /// The sharded queue must reproduce single-queue order exactly, for
    /// any shard count and shard assignment.
    #[test]
    fn sharded_matches_single_queue() {
        for shards in [1, 2, 3, 8] {
            for seed in 0..6 {
                differential_schedule(shards, seed, None);
            }
        }
    }

    /// Tiny tuning forces the parallel extraction path on small
    /// schedules; pop order must be invariant under tuning.
    #[test]
    fn extraction_does_not_change_order() {
        for shards in [2, 3, 8] {
            for seed in 0..6 {
                differential_schedule(shards, seed, Some((16, 4)));
                differential_schedule(shards, seed, Some((3, 1)));
            }
        }
    }

    /// Same-instant ties across shards must break by global push order
    /// (the shared sequence counter), exactly like one queue — including
    /// when some ties sit in pre-extracted runs and others arrive in
    /// calendars afterwards.
    #[test]
    fn cross_shard_ties_break_by_global_fifo() {
        let t = SimTime::from_us(5);
        let mut q = ShardedQueue::new(3).with_tuning(2, 1);
        q.push(2, t, DEFAULT_RANK, "a");
        q.push(0, t, DEFAULT_RANK, "b");
        q.push(1, t, ARRIVAL_RANK, "c"); // lower rank: pops first
        q.push(0, t, DEFAULT_RANK, "d");
        // Force extraction of what exists so far, then add more ties.
        assert_eq!(q.pop().unwrap().1, "c");
        q.push(1, t, DEFAULT_RANK, "e");
        q.push(2, t, ARRIVAL_RANK, "f");
        let rest: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec!["f", "a", "b", "d", "e"]);
    }

    /// A push earlier than a shard's already-extracted run must still pop
    /// first: the calendar head outranks the run head.
    #[test]
    fn late_push_beats_extracted_run() {
        let mut q = ShardedQueue::new(2).with_tuning(8, 1);
        for i in 0..8u64 {
            q.push((i % 2) as usize, SimTime::from_us(10 + i), DEFAULT_RANK, i);
        }
        // First pop triggers extraction of everything into runs.
        assert_eq!(q.pop().unwrap().1, 0);
        // Now push an event earlier than the remaining run entries.
        q.push(0, SimTime::from_us(1), DEFAULT_RANK, 99);
        assert_eq!(q.pop().unwrap().1, 99);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    /// The barrier engine's threaded run must be bit-identical to its
    /// serial reference execution of the same epochs.
    #[test]
    fn engine_threaded_matches_serial_epochs() {
        let cfg = DemoConfig { shards: 4, stations: 32, work: 8, cross_every: 4 };
        let horizon = SimTime::from_us(400);
        let mut threaded = demo::build(&cfg);
        threaded.run(horizon);
        let mut serial = demo::build(&cfg);
        serial.run_reference(horizon);
        assert_eq!(threaded.stats(), serial.stats());
        let a: Vec<u64> = threaded.workers().iter().map(demo::Farm::digest).collect();
        let b: Vec<u64> = serial.workers().iter().map(demo::Farm::digest).collect();
        assert_eq!(a, b);
    }

    /// Under the demo model's tie-free residue grid, the engine must also
    /// match a plain single-queue execution of the same model.
    #[test]
    fn engine_matches_single_queue_execution() {
        for shards in [1, 2, 3, 8] {
            let cfg = DemoConfig { shards, stations: 24, work: 4, cross_every: 3 };
            let horizon = SimTime::from_us(300);
            let (engine_digests, stats) = run_engine(&cfg, horizon);
            let single_digests = run_single(&cfg, horizon);
            assert_eq!(engine_digests, single_digests, "{shards} shards diverged");
            assert!(stats.events > 0);
            if shards > 1 {
                assert!(stats.messages > 0, "no cross-shard traffic exercised");
            }
        }
    }

    /// Events exactly at the barrier instant belong to the next epoch;
    /// cross-shard messages land at or after the barrier. Violating the
    /// lookahead contract must panic.
    #[test]
    #[should_panic(expected = "lookahead contract")]
    fn lookahead_violation_panics() {
        struct Bad;
        impl ShardWorker for Bad {
            type Ev = ();
            fn handle(&mut self, now: SimTime, (): (), out: &mut Outbox<'_, ()>) {
                out.send(1, now + SimSpan::from_ns(1), ());
            }
        }
        let mut eng = BarrierEngine::new(vec![Bad, Bad], SimSpan::from_ns(1000));
        eng.seed(0, SimTime::ZERO, ());
        eng.run(SimTime::from_us(1));
    }
}
