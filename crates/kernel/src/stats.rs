//! Measurement instruments: histograms, bandwidth meters, utilization
//! meters and online means.
//!
//! These are the instruments every experiment binary uses to produce the
//! paper's figures: latency percentiles (tail latency, Figs 10–11),
//! millisecond-binned bandwidth timelines (Fig 2), and busy-time
//! utilization split by traffic class (Figs 2c/2d, 7b).

use crate::{SimSpan, SimTime};

/// Sub-bucket resolution bits for the log-bucketed histogram mode: 128
/// sub-buckets per octave, giving a worst-case bucket width of 1/128 of
/// the value and a midpoint representative within 1/256 (≈0.4%) of any
/// sample — comfortably inside the advertised ≤1% relative error.
const LOG_SUB_BITS: u32 = 7;
const LOG_SUB: u64 = 1 << LOG_SUB_BITS;

fn log_bucket_index(v: u64) -> usize {
    if v < LOG_SUB {
        v as usize
    } else {
        let e = 63 - u64::from(v.leading_zeros());
        let shift = (e - u64::from(LOG_SUB_BITS)) as u32;
        let sub = (v >> shift) - LOG_SUB;
        ((e - u64::from(LOG_SUB_BITS) + 1) * LOG_SUB + sub) as usize
    }
}

fn log_bucket_value(i: usize) -> u64 {
    let i = i as u64;
    if i < LOG_SUB {
        i
    } else {
        let octave = i / LOG_SUB; // >= 1
        let sub = i % LOG_SUB;
        let shift = (octave - 1) as u32;
        let low = (LOG_SUB + sub) << shift;
        low + (1u64 << shift) / 2
    }
}

#[derive(Debug, Clone)]
enum HistogramRepr {
    /// Raw samples, sorted lazily: exact percentiles, O(n) memory.
    Exact { samples: Vec<u64>, sorted: bool },
    /// HDR-style log-bucketed counts: ≤1% relative error, O(1) memory
    /// (at most ~7.5k buckets across the full `u64` range).
    Log { buckets: Vec<u64> },
}

/// A histogram of [`SimSpan`] samples with exact and log-bucketed modes.
///
/// The default ([`Histogram::new`]) stores samples raw (nanoseconds) and
/// sorts lazily, so percentiles are exact rather than bucketed — important
/// for the paper's 99th- and 99.99th-percentile tail-latency comparisons
/// where bucketing error would distort multi-10× ratios.
///
/// The opt-in log-bucketed mode ([`Histogram::log_bucketed`]) keeps
/// HDR-style per-octave counts instead (128 sub-buckets per power of two),
/// bounding memory at a few kilobytes regardless of run length while
/// keeping percentiles within 1% relative error. `mean`, `min`, `max`,
/// `count` and `sum` stay exact in both modes.
///
/// # Example
///
/// ```
/// use dssd_kernel::stats::Histogram;
/// use dssd_kernel::SimSpan;
///
/// let mut h = Histogram::new();
/// for us in 1..=100 {
///     h.record(SimSpan::from_us(us));
/// }
/// assert_eq!(h.percentile(0.99), SimSpan::from_us(99));
/// assert_eq!(h.max(), SimSpan::from_us(100));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    repr: HistogramRepr,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty exact-percentile histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            repr: HistogramRepr::Exact {
                samples: Vec::new(),
                sorted: true,
            },
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Creates an empty log-bucketed histogram: bounded memory, ≤1%
    /// relative percentile error. Intended for long runs (telemetry
    /// summaries, endurance sweeps) where storing every sample would grow
    /// without bound.
    #[must_use]
    pub fn log_bucketed() -> Self {
        Histogram {
            repr: HistogramRepr::Log {
                buckets: Vec::new(),
            },
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Whether this histogram uses the bounded log-bucketed representation.
    #[must_use]
    pub fn is_log_bucketed(&self) -> bool {
        matches!(self.repr, HistogramRepr::Log { .. })
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimSpan) {
        let v = sample.as_ns();
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        match &mut self.repr {
            HistogramRepr::Exact { samples, sorted } => {
                samples.push(v);
                *sorted = false;
            }
            HistogramRepr::Log { buckets } => {
                let i = log_bucket_index(v);
                if buckets.len() <= i {
                    buckets.resize(i + 1, 0);
                }
                buckets[i] += 1;
            }
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// True if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of all samples ([`SimSpan::ZERO`] when empty). Exact in both
    /// modes (the sum is tracked outside the buckets).
    #[must_use]
    pub fn mean(&self) -> SimSpan {
        if self.count == 0 {
            return SimSpan::ZERO;
        }
        SimSpan::from_ns((self.sum / u128::from(self.count)) as u64)
    }

    /// The `p`-quantile (`p` in `[0, 1]`), using the nearest-rank method.
    /// Returns [`SimSpan::ZERO`] when empty. Exact in the default mode;
    /// within 1% relative error in log-bucketed mode (and always clamped
    /// to the exact observed `[min, max]`).
    pub fn percentile(&mut self, p: f64) -> SimSpan {
        if self.count == 0 {
            return SimSpan::ZERO;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        match &mut self.repr {
            HistogramRepr::Exact { samples, sorted } => {
                if !*sorted {
                    samples.sort_unstable();
                    *sorted = true;
                }
                SimSpan::from_ns(samples[(rank - 1) as usize])
            }
            HistogramRepr::Log { buckets } => {
                let mut seen = 0u64;
                for (i, &c) in buckets.iter().enumerate() {
                    seen += c;
                    if seen >= rank {
                        return SimSpan::from_ns(
                            log_bucket_value(i).clamp(self.min, self.max),
                        );
                    }
                }
                SimSpan::from_ns(self.max)
            }
        }
    }

    /// Largest sample, exact in both modes ([`SimSpan::ZERO`] when empty).
    #[must_use]
    pub fn max(&self) -> SimSpan {
        if self.count == 0 {
            return SimSpan::ZERO;
        }
        SimSpan::from_ns(self.max)
    }

    /// Smallest sample, exact in both modes ([`SimSpan::ZERO`] when empty).
    #[must_use]
    pub fn min(&self) -> SimSpan {
        if self.count == 0 {
            return SimSpan::ZERO;
        }
        SimSpan::from_ns(self.min)
    }

    /// Merges another histogram into this one, so `map_parallel` sweep
    /// shards can combine their statistics without re-running.
    ///
    /// Mode is contagious toward the bounded representation: merging any
    /// log-bucketed histogram (either side) converts the result to
    /// log-bucketed; exact-into-exact stays exact.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if other.is_log_bucketed() && !self.is_log_bucketed() {
            self.convert_to_log();
        }
        match (&mut self.repr, &other.repr) {
            (
                HistogramRepr::Exact { samples, sorted },
                HistogramRepr::Exact {
                    samples: other_samples,
                    ..
                },
            ) => {
                samples.extend_from_slice(other_samples);
                *sorted = false;
            }
            (
                HistogramRepr::Log { buckets },
                HistogramRepr::Log {
                    buckets: other_buckets,
                },
            ) => {
                if buckets.len() < other_buckets.len() {
                    buckets.resize(other_buckets.len(), 0);
                }
                for (b, o) in buckets.iter_mut().zip(other_buckets) {
                    *b += o;
                }
            }
            (
                HistogramRepr::Log { buckets },
                HistogramRepr::Exact {
                    samples: other_samples,
                    ..
                },
            ) => {
                for &v in other_samples {
                    let i = log_bucket_index(v);
                    if buckets.len() <= i {
                        buckets.resize(i + 1, 0);
                    }
                    buckets[i] += 1;
                }
            }
            (HistogramRepr::Exact { .. }, HistogramRepr::Log { .. }) => {
                unreachable!("self was converted to log above")
            }
        }
    }

    fn convert_to_log(&mut self) {
        if let HistogramRepr::Exact { samples, .. } = &self.repr {
            let mut buckets: Vec<u64> = Vec::new();
            for &v in samples {
                let i = log_bucket_index(v);
                if buckets.len() <= i {
                    buckets.resize(i + 1, 0);
                }
                buckets[i] += 1;
            }
            self.repr = HistogramRepr::Log { buckets };
        }
    }
}

/// A windowed byte-throughput meter.
///
/// Bytes are accumulated into fixed-width time bins (the paper measures
/// I/O bandwidth every 1 ms for Fig 2); the series can then be read back
/// as bytes-per-second per bin.
///
/// # Example
///
/// ```
/// use dssd_kernel::stats::BandwidthMeter;
/// use dssd_kernel::{SimSpan, SimTime};
///
/// let mut m = BandwidthMeter::new(SimSpan::from_ms(1));
/// m.record(SimTime::from_us(100), 1_000_000);
/// m.record(SimTime::from_us(1_500), 2_000_000);
/// let series = m.series();
/// assert_eq!(series.len(), 2);
/// assert!((series[0].1 - 1e9).abs() < 1.0); // 1 MB in 1 ms = 1 GB/s
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthMeter {
    window: SimSpan,
    bins: Vec<u64>,
    total: u64,
}

impl BandwidthMeter {
    /// Creates a meter with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: SimSpan) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        BandwidthMeter {
            window,
            bins: Vec::new(),
            total: 0,
        }
    }

    /// Credits `bytes` of completed transfer at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let bin = (at.as_ns() / self.window.as_ns()) as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += bytes;
        self.total += bytes;
    }

    /// Total bytes recorded.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The bin width.
    #[must_use]
    pub fn window(&self) -> SimSpan {
        self.window
    }

    /// The timeline as `(bin start, bytes per second)` pairs.
    #[must_use]
    pub fn series(&self) -> Vec<(SimTime, f64)> {
        let w = self.window.as_secs_f64();
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| (SimTime::from_ns(i as u64 * self.window.as_ns()), b as f64 / w))
            .collect()
    }

    /// Mean bytes-per-second over `elapsed` (0 when `elapsed` is zero).
    #[must_use]
    pub fn mean_rate(&self, elapsed: SimSpan) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.total as f64 / elapsed.as_secs_f64()
    }

    /// Merges another meter's bins into this one (for combining
    /// `map_parallel` sweep shards).
    ///
    /// # Panics
    ///
    /// Panics if the two meters have different bin widths.
    pub fn merge(&mut self, other: &BandwidthMeter) {
        assert_eq!(
            self.window, other.window,
            "cannot merge BandwidthMeters with different bin widths"
        );
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.total += other.total;
    }
}

/// A windowed busy-time integrator.
///
/// Busy intervals (e.g. bus occupancy) are accumulated into fixed-width
/// time bins, correctly splitting intervals that span bin boundaries, so
/// utilization timelines like Fig 2(c,d) can be produced.
///
/// # Example
///
/// ```
/// use dssd_kernel::stats::UtilizationMeter;
/// use dssd_kernel::{SimSpan, SimTime};
///
/// let mut m = UtilizationMeter::new(SimSpan::from_ms(1));
/// // busy from 0.5 ms to 1.5 ms: 50% of each of the first two bins
/// m.record_busy(SimTime::from_us(500), SimTime::from_us(1_500));
/// let u = m.series();
/// assert!((u[0].1 - 0.5).abs() < 1e-9);
/// assert!((u[1].1 - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationMeter {
    window: SimSpan,
    bins: Vec<u64>,
    total_busy: SimSpan,
}

impl UtilizationMeter {
    /// Creates a meter with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: SimSpan) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        UtilizationMeter {
            window,
            bins: Vec::new(),
            total_busy: SimSpan::ZERO,
        }
    }

    /// Records a busy interval `[start, end)`, splitting it across bins.
    pub fn record_busy(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        self.total_busy += end - start;
        let w = self.window.as_ns();
        let mut cur = start.as_ns();
        let end = end.as_ns();
        while cur < end {
            let bin = (cur / w) as usize;
            let bin_end = (cur / w + 1) * w;
            let seg_end = bin_end.min(end);
            if self.bins.len() <= bin {
                self.bins.resize(bin + 1, 0);
            }
            self.bins[bin] += seg_end - cur;
            cur = seg_end;
        }
    }

    /// Total busy time recorded.
    #[must_use]
    pub fn total_busy(&self) -> SimSpan {
        self.total_busy
    }

    /// The timeline as `(bin start, utilization in [0,1])` pairs.
    #[must_use]
    pub fn series(&self) -> Vec<(SimTime, f64)> {
        let w = self.window.as_ns() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| (SimTime::from_ns(i as u64 * self.window.as_ns()), b as f64 / w))
            .collect()
    }

    /// Mean utilization over `elapsed` (0 when `elapsed` is zero).
    #[must_use]
    pub fn mean(&self, elapsed: SimSpan) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.total_busy.as_ns() as f64 / elapsed.as_ns() as f64
    }

    /// Merges another meter's busy-time bins into this one (for combining
    /// `map_parallel` sweep shards).
    ///
    /// # Panics
    ///
    /// Panics if the two meters have different bin widths.
    pub fn merge(&mut self, other: &UtilizationMeter) {
        assert_eq!(
            self.window, other.window,
            "cannot merge UtilizationMeters with different bin widths"
        );
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.total_busy += other.total_busy;
    }
}

/// A numerically simple online mean/min/max accumulator for `f64` series.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineMean {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineMean {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineMean::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator's observations into this one.
    pub fn merge(&mut self, other: &OnlineMean) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_exact() {
        let mut h = Histogram::new();
        for us in (1..=1000).rev() {
            h.record(SimSpan::from_us(us));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.percentile(0.50), SimSpan::from_us(500));
        assert_eq!(h.percentile(0.99), SimSpan::from_us(990));
        assert_eq!(h.percentile(1.0), SimSpan::from_us(1000));
        assert_eq!(h.percentile(0.0), SimSpan::from_us(1));
        assert_eq!(h.min(), SimSpan::from_us(1));
        assert_eq!(h.max(), SimSpan::from_us(1000));
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = Histogram::new();
        h.record(SimSpan::from_us(7));
        assert_eq!(h.percentile(0.5), SimSpan::from_us(7));
        assert_eq!(h.mean(), SimSpan::from_us(7));
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), SimSpan::ZERO);
        assert_eq!(h.mean(), SimSpan::ZERO);
        assert_eq!(h.max(), SimSpan::ZERO);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimSpan::from_us(1));
        b.record(SimSpan::from_us(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimSpan::from_us(2));
    }

    #[test]
    fn histogram_interleaves_record_and_percentile() {
        let mut h = Histogram::new();
        h.record(SimSpan::from_us(10));
        assert_eq!(h.percentile(1.0), SimSpan::from_us(10));
        h.record(SimSpan::from_us(20));
        assert_eq!(h.percentile(1.0), SimSpan::from_us(20));
    }

    #[test]
    fn bandwidth_meter_bins_and_totals() {
        let mut m = BandwidthMeter::new(SimSpan::from_ms(1));
        m.record(SimTime::from_us(10), 100);
        m.record(SimTime::from_us(999), 100);
        m.record(SimTime::from_us(1000), 100);
        assert_eq!(m.total_bytes(), 300);
        let s = m.series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 200_000.0).abs() < 1e-6);
        assert!((s[1].1 - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_meter_mean_rate() {
        let mut m = BandwidthMeter::new(SimSpan::from_ms(1));
        m.record(SimTime::from_us(1), 8_000);
        assert!((m.mean_rate(SimSpan::from_us(1_000)) - 8e6).abs() < 1.0);
        assert_eq!(m.mean_rate(SimSpan::ZERO), 0.0);
    }

    #[test]
    fn utilization_meter_splits_across_bins() {
        let mut m = UtilizationMeter::new(SimSpan::from_us(10));
        m.record_busy(SimTime::from_us(5), SimTime::from_us(25));
        let s = m.series();
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 0.5).abs() < 1e-12);
        assert!((s[1].1 - 1.0).abs() < 1e-12);
        assert!((s[2].1 - 0.5).abs() < 1e-12);
        assert_eq!(m.total_busy(), SimSpan::from_us(20));
    }

    #[test]
    fn utilization_meter_ignores_empty_interval() {
        let mut m = UtilizationMeter::new(SimSpan::from_us(10));
        m.record_busy(SimTime::from_us(5), SimTime::from_us(5));
        assert_eq!(m.total_busy(), SimSpan::ZERO);
        assert!(m.series().is_empty());
    }

    #[test]
    fn online_mean_tracks_extremes() {
        let mut m = OnlineMean::new();
        for x in [3.0, -1.0, 7.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 7.0);
    }

    #[test]
    fn histogram_zero_length_spans() {
        let mut h = Histogram::new();
        h.record(SimSpan::ZERO);
        h.record(SimSpan::ZERO);
        h.record(SimSpan::from_us(4));
        assert_eq!(h.min(), SimSpan::ZERO);
        assert_eq!(h.percentile(0.5), SimSpan::ZERO);
        assert_eq!(h.percentile(1.0), SimSpan::from_us(4));
        assert_eq!(h.mean(), SimSpan::from_ns(4_000 / 3));
    }

    #[test]
    fn histogram_single_sample_percentiles() {
        for make in [Histogram::new, Histogram::log_bucketed] {
            let mut h = make();
            h.record(SimSpan::from_us(7));
            for p in [0.0, 0.5, 0.99, 0.9999, 1.0] {
                assert_eq!(h.percentile(p), SimSpan::from_us(7), "p={p}");
            }
            assert_eq!(h.min(), SimSpan::from_us(7));
            assert_eq!(h.max(), SimSpan::from_us(7));
            assert_eq!(h.mean(), SimSpan::from_us(7));
        }
    }

    #[test]
    fn log_bucket_roundtrip_error_is_bounded() {
        // Every representative value must be within 1% of every sample
        // mapped into its bucket, across the full dynamic range.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for s in [v, v + v / 3, v.saturating_mul(2) - 1] {
                let rep = log_bucket_value(log_bucket_index(s));
                let err = (rep as f64 - s as f64).abs() / s as f64;
                assert!(err <= 0.01, "sample {s}: rep {rep}, err {err}");
            }
            v = v.saturating_mul(2);
        }
        // Small values are exact.
        for s in 0..LOG_SUB {
            assert_eq!(log_bucket_value(log_bucket_index(s)), s);
        }
    }

    #[test]
    fn log_bucketed_percentiles_within_one_percent_of_exact() {
        let mut exact = Histogram::new();
        let mut log = Histogram::log_bucketed();
        // A skewed distribution spanning several decades.
        let mut x = 17u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let ns = 100 + (x >> 40) * (x >> 62).max(1);
            exact.record(SimSpan::from_ns(ns));
            log.record(SimSpan::from_ns(ns));
        }
        assert_eq!(exact.count(), log.count());
        assert_eq!(exact.mean(), log.mean());
        assert_eq!(exact.min(), log.min());
        assert_eq!(exact.max(), log.max());
        for p in [0.5, 0.9, 0.99, 0.9999] {
            let e = exact.percentile(p).as_ns() as f64;
            let l = log.percentile(p).as_ns() as f64;
            assert!((l - e).abs() / e <= 0.01, "p={p}: exact {e}, log {l}");
        }
    }

    #[test]
    fn merged_shards_equal_single_run() {
        // Satellite requirement: exact-vs-merged equivalence. Record one
        // stream into a single histogram, and the same stream split into
        // shards that are merged — all derived stats must agree.
        let samples: Vec<u64> = (0..1000).map(|i| (i * 37) % 4093 + 1).collect();
        let mut whole = Histogram::new();
        let mut shards = vec![Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &s) in samples.iter().enumerate() {
            whole.record(SimSpan::from_ns(s));
            shards[i % 3].record(SimSpan::from_ns(s));
        }
        let mut merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.mean(), whole.mean());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.percentile(p), whole.percentile(p), "p={p}");
        }
    }

    #[test]
    fn merge_mixes_exact_and_log_modes() {
        let mut exact = Histogram::new();
        let mut log = Histogram::log_bucketed();
        for us in 1..=100 {
            exact.record(SimSpan::from_us(us));
            log.record(SimSpan::from_us(100 + us));
        }
        // log into exact: result becomes log-bucketed.
        let mut a = exact.clone();
        a.merge(&log);
        assert!(a.is_log_bucketed());
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), SimSpan::from_us(1));
        assert_eq!(a.max(), SimSpan::from_us(200));
        // exact into log: stays log-bucketed, same totals.
        let mut b = log.clone();
        b.merge(&exact);
        assert_eq!(b.count(), 200);
        assert_eq!(b.mean(), a.mean());
        let p50a = a.percentile(0.5).as_ns() as f64;
        let p50b = b.percentile(0.5).as_ns() as f64;
        assert!((p50a - p50b).abs() / p50a <= 0.01);
    }

    #[test]
    fn merge_with_empty_histograms() {
        let mut a = Histogram::new();
        let b = Histogram::new();
        a.merge(&b);
        assert!(a.is_empty());
        a.record(SimSpan::from_us(5));
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.percentile(0.5), SimSpan::from_us(5));
    }

    #[test]
    fn bandwidth_meter_bin_boundary_samples() {
        let mut m = BandwidthMeter::new(SimSpan::from_us(10));
        // A sample exactly on a bin boundary belongs to the later bin.
        m.record(SimTime::from_us(10), 100);
        m.record(SimTime::from_ns(9_999), 50);
        m.record(SimTime::ZERO, 25);
        let s = m.series();
        assert_eq!(s.len(), 2);
        let w = SimSpan::from_us(10).as_secs_f64();
        assert!((s[0].1 - 75.0 / w).abs() < 1e-6);
        assert!((s[1].1 - 100.0 / w).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_meter_merge_requires_same_window() {
        let mut a = BandwidthMeter::new(SimSpan::from_ms(1));
        let mut b = BandwidthMeter::new(SimSpan::from_ms(1));
        a.record(SimTime::from_us(100), 10);
        b.record(SimTime::from_us(2_500), 30);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 40);
        assert_eq!(a.series().len(), 3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.merge(&BandwidthMeter::new(SimSpan::from_ms(2)));
        }));
        assert!(r.is_err(), "mismatched windows must panic");
    }

    #[test]
    fn utilization_meter_overlapping_busy_intervals() {
        // Two overlapping busy intervals double-count, as documented: the
        // meter integrates busy time, it does not deduplicate sources.
        let mut m = UtilizationMeter::new(SimSpan::from_us(10));
        m.record_busy(SimTime::from_us(0), SimTime::from_us(10));
        m.record_busy(SimTime::from_us(5), SimTime::from_us(15));
        assert_eq!(m.total_busy(), SimSpan::from_us(20));
        let s = m.series();
        assert!((s[0].1 - 1.5).abs() < 1e-12);
        assert!((s[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_meter_merge_combines_bins() {
        let mut a = UtilizationMeter::new(SimSpan::from_us(10));
        let mut b = UtilizationMeter::new(SimSpan::from_us(10));
        a.record_busy(SimTime::from_us(0), SimTime::from_us(5));
        b.record_busy(SimTime::from_us(15), SimTime::from_us(20));
        a.merge(&b);
        assert_eq!(a.total_busy(), SimSpan::from_us(10));
        let s = a.series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 0.5).abs() < 1e-12);
        assert!((s[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn online_mean_merge() {
        let mut a = OnlineMean::new();
        let mut b = OnlineMean::new();
        for x in [1.0, 2.0] {
            a.record(x);
        }
        for x in [3.0, 10.0] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 4.0).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 10.0);
        // Merging into an empty accumulator copies the other side.
        let mut empty = OnlineMean::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 4);
        assert_eq!(empty.max(), 10.0);
        // Merging an empty accumulator is a no-op.
        a.merge(&OnlineMean::new());
        assert_eq!(a.count(), 4);
    }
}
