//! Measurement instruments: histograms, bandwidth meters, utilization
//! meters and online means.
//!
//! These are the instruments every experiment binary uses to produce the
//! paper's figures: latency percentiles (tail latency, Figs 10–11),
//! millisecond-binned bandwidth timelines (Fig 2), and busy-time
//! utilization split by traffic class (Figs 2c/2d, 7b).

use crate::{SimSpan, SimTime};

/// An exact-percentile histogram of [`SimSpan`] samples.
///
/// Samples are stored raw (nanoseconds) and sorted lazily, so percentiles
/// are exact rather than bucketed — important for the paper's 99th- and
/// 99.99th-percentile tail-latency comparisons where bucketing error would
/// distort multi-10× ratios.
///
/// # Example
///
/// ```
/// use dssd_kernel::stats::Histogram;
/// use dssd_kernel::SimSpan;
///
/// let mut h = Histogram::new();
/// for us in 1..=100 {
///     h.record(SimSpan::from_us(us));
/// }
/// assert_eq!(h.percentile(0.99), SimSpan::from_us(99));
/// assert_eq!(h.max(), SimSpan::from_us(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimSpan) {
        self.samples.push(sample.as_ns());
        self.sum += sample.as_ns() as u128;
        self.sorted = false;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of all samples ([`SimSpan::ZERO`] when empty).
    #[must_use]
    pub fn mean(&self) -> SimSpan {
        if self.samples.is_empty() {
            return SimSpan::ZERO;
        }
        SimSpan::from_ns((self.sum / self.samples.len() as u128) as u64)
    }

    /// The exact `p`-quantile (`p` in `[0, 1]`), using the nearest-rank
    /// method. Returns [`SimSpan::ZERO`] when empty.
    pub fn percentile(&mut self, p: f64) -> SimSpan {
        if self.samples.is_empty() {
            return SimSpan::ZERO;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.samples.len() as f64).ceil() as usize).max(1);
        SimSpan::from_ns(self.samples[rank - 1])
    }

    /// Largest sample ([`SimSpan::ZERO`] when empty).
    #[must_use]
    pub fn max(&self) -> SimSpan {
        SimSpan::from_ns(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample ([`SimSpan::ZERO`] when empty).
    #[must_use]
    pub fn min(&self) -> SimSpan {
        SimSpan::from_ns(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }
}

/// A windowed byte-throughput meter.
///
/// Bytes are accumulated into fixed-width time bins (the paper measures
/// I/O bandwidth every 1 ms for Fig 2); the series can then be read back
/// as bytes-per-second per bin.
///
/// # Example
///
/// ```
/// use dssd_kernel::stats::BandwidthMeter;
/// use dssd_kernel::{SimSpan, SimTime};
///
/// let mut m = BandwidthMeter::new(SimSpan::from_ms(1));
/// m.record(SimTime::from_us(100), 1_000_000);
/// m.record(SimTime::from_us(1_500), 2_000_000);
/// let series = m.series();
/// assert_eq!(series.len(), 2);
/// assert!((series[0].1 - 1e9).abs() < 1.0); // 1 MB in 1 ms = 1 GB/s
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthMeter {
    window: SimSpan,
    bins: Vec<u64>,
    total: u64,
}

impl BandwidthMeter {
    /// Creates a meter with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: SimSpan) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        BandwidthMeter {
            window,
            bins: Vec::new(),
            total: 0,
        }
    }

    /// Credits `bytes` of completed transfer at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let bin = (at.as_ns() / self.window.as_ns()) as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += bytes;
        self.total += bytes;
    }

    /// Total bytes recorded.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The bin width.
    #[must_use]
    pub fn window(&self) -> SimSpan {
        self.window
    }

    /// The timeline as `(bin start, bytes per second)` pairs.
    #[must_use]
    pub fn series(&self) -> Vec<(SimTime, f64)> {
        let w = self.window.as_secs_f64();
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| (SimTime::from_ns(i as u64 * self.window.as_ns()), b as f64 / w))
            .collect()
    }

    /// Mean bytes-per-second over `elapsed` (0 when `elapsed` is zero).
    #[must_use]
    pub fn mean_rate(&self, elapsed: SimSpan) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.total as f64 / elapsed.as_secs_f64()
    }
}

/// A windowed busy-time integrator.
///
/// Busy intervals (e.g. bus occupancy) are accumulated into fixed-width
/// time bins, correctly splitting intervals that span bin boundaries, so
/// utilization timelines like Fig 2(c,d) can be produced.
///
/// # Example
///
/// ```
/// use dssd_kernel::stats::UtilizationMeter;
/// use dssd_kernel::{SimSpan, SimTime};
///
/// let mut m = UtilizationMeter::new(SimSpan::from_ms(1));
/// // busy from 0.5 ms to 1.5 ms: 50% of each of the first two bins
/// m.record_busy(SimTime::from_us(500), SimTime::from_us(1_500));
/// let u = m.series();
/// assert!((u[0].1 - 0.5).abs() < 1e-9);
/// assert!((u[1].1 - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationMeter {
    window: SimSpan,
    bins: Vec<u64>,
    total_busy: SimSpan,
}

impl UtilizationMeter {
    /// Creates a meter with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: SimSpan) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        UtilizationMeter {
            window,
            bins: Vec::new(),
            total_busy: SimSpan::ZERO,
        }
    }

    /// Records a busy interval `[start, end)`, splitting it across bins.
    pub fn record_busy(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        self.total_busy += end - start;
        let w = self.window.as_ns();
        let mut cur = start.as_ns();
        let end = end.as_ns();
        while cur < end {
            let bin = (cur / w) as usize;
            let bin_end = (cur / w + 1) * w;
            let seg_end = bin_end.min(end);
            if self.bins.len() <= bin {
                self.bins.resize(bin + 1, 0);
            }
            self.bins[bin] += seg_end - cur;
            cur = seg_end;
        }
    }

    /// Total busy time recorded.
    #[must_use]
    pub fn total_busy(&self) -> SimSpan {
        self.total_busy
    }

    /// The timeline as `(bin start, utilization in [0,1])` pairs.
    #[must_use]
    pub fn series(&self) -> Vec<(SimTime, f64)> {
        let w = self.window.as_ns() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| (SimTime::from_ns(i as u64 * self.window.as_ns()), b as f64 / w))
            .collect()
    }

    /// Mean utilization over `elapsed` (0 when `elapsed` is zero).
    #[must_use]
    pub fn mean(&self, elapsed: SimSpan) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.total_busy.as_ns() as f64 / elapsed.as_ns() as f64
    }
}

/// A numerically simple online mean/min/max accumulator for `f64` series.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineMean {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineMean {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineMean::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_exact() {
        let mut h = Histogram::new();
        for us in (1..=1000).rev() {
            h.record(SimSpan::from_us(us));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.percentile(0.50), SimSpan::from_us(500));
        assert_eq!(h.percentile(0.99), SimSpan::from_us(990));
        assert_eq!(h.percentile(1.0), SimSpan::from_us(1000));
        assert_eq!(h.percentile(0.0), SimSpan::from_us(1));
        assert_eq!(h.min(), SimSpan::from_us(1));
        assert_eq!(h.max(), SimSpan::from_us(1000));
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = Histogram::new();
        h.record(SimSpan::from_us(7));
        assert_eq!(h.percentile(0.5), SimSpan::from_us(7));
        assert_eq!(h.mean(), SimSpan::from_us(7));
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), SimSpan::ZERO);
        assert_eq!(h.mean(), SimSpan::ZERO);
        assert_eq!(h.max(), SimSpan::ZERO);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimSpan::from_us(1));
        b.record(SimSpan::from_us(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimSpan::from_us(2));
    }

    #[test]
    fn histogram_interleaves_record_and_percentile() {
        let mut h = Histogram::new();
        h.record(SimSpan::from_us(10));
        assert_eq!(h.percentile(1.0), SimSpan::from_us(10));
        h.record(SimSpan::from_us(20));
        assert_eq!(h.percentile(1.0), SimSpan::from_us(20));
    }

    #[test]
    fn bandwidth_meter_bins_and_totals() {
        let mut m = BandwidthMeter::new(SimSpan::from_ms(1));
        m.record(SimTime::from_us(10), 100);
        m.record(SimTime::from_us(999), 100);
        m.record(SimTime::from_us(1000), 100);
        assert_eq!(m.total_bytes(), 300);
        let s = m.series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 200_000.0).abs() < 1e-6);
        assert!((s[1].1 - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_meter_mean_rate() {
        let mut m = BandwidthMeter::new(SimSpan::from_ms(1));
        m.record(SimTime::from_us(1), 8_000);
        assert!((m.mean_rate(SimSpan::from_us(1_000)) - 8e6).abs() < 1.0);
        assert_eq!(m.mean_rate(SimSpan::ZERO), 0.0);
    }

    #[test]
    fn utilization_meter_splits_across_bins() {
        let mut m = UtilizationMeter::new(SimSpan::from_us(10));
        m.record_busy(SimTime::from_us(5), SimTime::from_us(25));
        let s = m.series();
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 0.5).abs() < 1e-12);
        assert!((s[1].1 - 1.0).abs() < 1e-12);
        assert!((s[2].1 - 0.5).abs() < 1e-12);
        assert_eq!(m.total_busy(), SimSpan::from_us(20));
    }

    #[test]
    fn utilization_meter_ignores_empty_interval() {
        let mut m = UtilizationMeter::new(SimSpan::from_us(10));
        m.record_busy(SimTime::from_us(5), SimTime::from_us(5));
        assert_eq!(m.total_busy(), SimSpan::ZERO);
        assert!(m.series().is_empty());
    }

    #[test]
    fn online_mean_tracks_extremes() {
        let mut m = OnlineMean::new();
        for x in [3.0, -1.0, 7.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 7.0);
    }
}
