//! FIFO bandwidth-server resource.

use crate::{SimSpan, SimTime};

/// The outcome of enqueueing a transfer on a [`BandwidthServer`]: when the
/// transfer starts occupying the resource and when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the resource starts serving this transfer.
    pub start: SimTime,
    /// When the transfer completes (schedule your completion event here).
    pub done: SimTime,
}

impl Transfer {
    /// Time spent queued before service began (relative to the enqueue
    /// instant passed to [`BandwidthServer::enqueue`]).
    #[must_use]
    pub fn wait_since(&self, enqueued: SimTime) -> SimSpan {
        self.start.saturating_since(enqueued)
    }

    /// Time spent in service.
    #[must_use]
    pub fn service(&self) -> SimSpan {
        self.done - self.start
    }
}

/// Per-traffic-class accounting for a [`BandwidthServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Transfers served.
    pub items: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total busy (service) time attributed to this class.
    pub busy: SimSpan,
}

/// A FIFO bandwidth resource.
///
/// Models a bus, a DRAM port, or a flash channel: transfers are served one
/// at a time in arrival order, each occupying the resource for
/// `overhead + bytes / bandwidth`. Because all SSD data movement in this
/// reproduction is page-granular (4 KB / 16 KB), FIFO service at item
/// granularity is an accurate contention model — exactly the "bus
/// structure … modeled for system-bus in SimpleSSD" of the paper's
/// methodology.
///
/// The server is *passive*: it computes start/finish times analytically
/// and never schedules events itself. Callers schedule a completion event
/// at [`Transfer::done`].
///
/// # Example
///
/// ```
/// use dssd_kernel::{BandwidthServer, SimSpan, SimTime};
///
/// // An 8 GB/s system bus with no per-item overhead.
/// let mut bus = BandwidthServer::new(8_000_000_000, SimSpan::ZERO);
/// let a = bus.enqueue(SimTime::ZERO, 4096, 0);
/// let b = bus.enqueue(SimTime::ZERO, 4096, 0);
/// assert_eq!(a.done.as_ns(), 512);      // 4 KiB at 8 GB/s
/// assert_eq!(b.start, a.done);          // FIFO: b waits for a
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    bytes_per_sec: u64,
    overhead: SimSpan,
    busy_until: SimTime,
    classes: Vec<ServerStats>,
}

impl BandwidthServer {
    /// Creates a server with the given bandwidth (bytes per second) and a
    /// fixed per-item overhead (arbitration/protocol cost).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[must_use]
    pub fn new(bytes_per_sec: u64, overhead: SimSpan) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be non-zero");
        BandwidthServer {
            bytes_per_sec,
            overhead,
            busy_until: SimTime::ZERO,
            classes: Vec::new(),
        }
    }

    /// The configured bandwidth in bytes per second.
    #[must_use]
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Enqueues a transfer of `bytes` arriving at `now`, attributed to
    /// traffic class `class` (e.g. 0 = host I/O, 1 = garbage collection).
    /// Returns when the transfer starts and completes.
    pub fn enqueue(&mut self, now: SimTime, bytes: u64, class: usize) -> Transfer {
        self.enqueue_extra(now, bytes, class, SimSpan::ZERO)
    }

    /// [`BandwidthServer::enqueue`] with additional per-item overhead on
    /// top of the server's base overhead (e.g. firmware descriptor
    /// management for individually-shepherded transfers).
    pub fn enqueue_extra(
        &mut self,
        now: SimTime,
        bytes: u64,
        class: usize,
        extra: SimSpan,
    ) -> Transfer {
        let start = now.max(self.busy_until);
        let service =
            self.overhead + extra + SimSpan::for_transfer(bytes, self.bytes_per_sec);
        let done = start + service;
        self.busy_until = done;
        if self.classes.len() <= class {
            self.classes.resize(class + 1, ServerStats::default());
        }
        let c = &mut self.classes[class];
        c.items += 1;
        c.bytes += bytes;
        c.busy += service;
        Transfer { start, done }
    }

    /// How long a transfer arriving at `now` would wait before service.
    #[must_use]
    pub fn backlog(&self, now: SimTime) -> SimSpan {
        self.busy_until.saturating_since(now)
    }

    /// The instant the server next becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Accounting for one traffic class (zeros if never used).
    #[must_use]
    pub fn class_stats(&self, class: usize) -> ServerStats {
        self.classes.get(class).copied().unwrap_or_default()
    }

    /// Total busy time across all classes.
    #[must_use]
    pub fn total_busy(&self) -> SimSpan {
        self.classes.iter().map(|c| c.busy).sum()
    }

    /// Fraction of `elapsed` the server spent busy serving `class`.
    /// Returns 0 when `elapsed` is zero. Clamped to 1.0: a transfer
    /// enqueued near the end of the window occupies the server past it
    /// (`busy_until` can exceed the horizon), so raw busy/elapsed can
    /// top 100% even though the resource is never oversubscribed.
    #[must_use]
    pub fn utilization(&self, class: usize, elapsed: SimSpan) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.class_stats(class).busy.as_ns() as f64 / elapsed.as_ns() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps(n: u64) -> u64 {
        n * 1_000_000_000
    }

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = BandwidthServer::new(gbps(1), SimSpan::ZERO);
        let t = s.enqueue(SimTime::from_us(10), 4096, 0);
        assert_eq!(t.start, SimTime::from_us(10));
        assert_eq!(t.done, SimTime::from_us(10) + SimSpan::from_ns(4096));
    }

    #[test]
    fn fifo_serializes_contending_transfers() {
        let mut s = BandwidthServer::new(gbps(1), SimSpan::ZERO);
        let a = s.enqueue(SimTime::ZERO, 4096, 0);
        let b = s.enqueue(SimTime::ZERO, 4096, 1);
        assert_eq!(b.start, a.done);
        assert_eq!(b.done.as_ns(), 2 * 4096);
        assert_eq!(b.wait_since(SimTime::ZERO), SimSpan::from_ns(4096));
    }

    #[test]
    fn overhead_is_charged_per_item() {
        let mut s = BandwidthServer::new(gbps(1), SimSpan::from_ns(100));
        let a = s.enqueue(SimTime::ZERO, 1000, 0);
        assert_eq!(a.service(), SimSpan::from_ns(1100));
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut s = BandwidthServer::new(gbps(1), SimSpan::ZERO);
        s.enqueue(SimTime::ZERO, 1000, 0);
        s.enqueue(SimTime::from_us(100), 1000, 0); // long idle gap
        assert_eq!(s.total_busy(), SimSpan::from_ns(2000));
        let u = s.utilization(0, SimSpan::from_us(101));
        assert!(u < 0.001 + 2000.0 / 101_000.0);
    }

    #[test]
    fn utilization_clamps_when_busy_straddles_window() {
        // 10 µs of service enqueued at t=0, measured over a 1 µs window:
        // the busy time straddles the window end, but the server can
        // never be more than 100% occupied within it.
        let mut s = BandwidthServer::new(gbps(1), SimSpan::ZERO);
        s.enqueue(SimTime::ZERO, 10_000, 0);
        let u = s.utilization(0, SimSpan::from_us(1));
        assert!((u - 1.0).abs() < f64::EPSILON, "utilization {u} not clamped");
        // Within-window busy time is still reported proportionally.
        assert!(s.utilization(0, SimSpan::from_us(20)) < 1.0);
        // And the zero-elapsed guard still short-circuits.
        assert_eq!(s.utilization(0, SimSpan::ZERO), 0.0);
    }

    #[test]
    fn class_attribution() {
        let mut s = BandwidthServer::new(gbps(1), SimSpan::ZERO);
        s.enqueue(SimTime::ZERO, 1000, 0);
        s.enqueue(SimTime::ZERO, 3000, 1);
        assert_eq!(s.class_stats(0).bytes, 1000);
        assert_eq!(s.class_stats(1).bytes, 3000);
        assert_eq!(s.class_stats(1).items, 1);
        assert_eq!(s.class_stats(7), ServerStats::default());
    }

    #[test]
    fn backlog_reflects_queue() {
        let mut s = BandwidthServer::new(gbps(1), SimSpan::ZERO);
        assert!(s.backlog(SimTime::ZERO).is_zero());
        s.enqueue(SimTime::ZERO, 10_000, 0);
        assert_eq!(s.backlog(SimTime::ZERO), SimSpan::from_ns(10_000));
        assert!(s.backlog(SimTime::from_us(20)).is_zero());
    }

    #[test]
    fn throughput_matches_bandwidth_under_saturation() {
        let mut s = BandwidthServer::new(gbps(8), SimSpan::ZERO);
        let mut done = SimTime::ZERO;
        let n = 10_000u64;
        for _ in 0..n {
            done = s.enqueue(SimTime::ZERO, 4096, 0).done;
        }
        let achieved = (n * 4096) as f64 / done.as_secs_f64();
        let rel = (achieved - 8e9).abs() / 8e9;
        assert!(rel < 0.01, "achieved {achieved}");
    }
}

#[cfg(all(test, feature = "proptest"))]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Service intervals never overlap, never start before arrival,
        /// and preserve FIFO order; accounting matches exactly.
        #[test]
        fn fifo_invariants(
            arrivals in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..100),
        ) {
            let mut s = BandwidthServer::new(1_000_000_000, SimSpan::from_ns(7));
            let mut arrivals = arrivals;
            arrivals.sort();
            let mut prev_done = SimTime::ZERO;
            let mut total_bytes = 0u64;
            let mut total_busy = SimSpan::ZERO;
            for &(at, bytes) in &arrivals {
                let t = s.enqueue(SimTime::from_ns(at), bytes, 0);
                prop_assert!(t.start >= SimTime::from_ns(at), "service before arrival");
                prop_assert!(t.start >= prev_done, "overlapping service");
                prop_assert!(t.done > t.start);
                prev_done = t.done;
                total_bytes += bytes;
                total_busy += t.service();
            }
            let stats = s.class_stats(0);
            prop_assert_eq!(stats.bytes, total_bytes);
            prop_assert_eq!(stats.items, arrivals.len() as u64);
            prop_assert_eq!(stats.busy, total_busy);
            prop_assert_eq!(s.busy_until(), prev_done);
        }

        /// `enqueue_extra` only ever lengthens service, monotonically.
        #[test]
        fn extra_overhead_is_additive(bytes in 1u64..100_000, extra in 0u64..10_000) {
            let mut a = BandwidthServer::new(2_000_000_000, SimSpan::from_ns(5));
            let mut b = BandwidthServer::new(2_000_000_000, SimSpan::from_ns(5));
            let ta = a.enqueue(SimTime::ZERO, bytes, 0);
            let tb = b.enqueue_extra(SimTime::ZERO, bytes, 0, SimSpan::from_ns(extra));
            prop_assert_eq!(
                tb.service().as_ns(),
                ta.service().as_ns() + extra
            );
        }
    }
}
