//! Deterministic pseudo-random number generation.
//!
//! The kernel ships its own small generator (xoshiro256\*\* seeded through
//! SplitMix64) so that simulation results are bit-reproducible across
//! machines and never depend on the version behaviour of an external RNG
//! crate.

/// A seedable xoshiro256\*\* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use dssd_kernel::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let x = a.range_u64(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    gauss_cache: Option<f64>,
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, per the
        // xoshiro authors' recommendation.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
            gauss_cache: None,
        }
    }

    /// Decomposes the generator into its raw xoshiro256\*\* state and the
    /// cached Box–Muller pair, for snapshotting. [`Rng::from_parts`]
    /// reconstructs a generator that continues the exact same stream.
    #[must_use]
    pub fn to_parts(&self) -> ([u64; 4], Option<f64>) {
        (self.state, self.gauss_cache)
    }

    /// Rebuilds a generator from [`Rng::to_parts`] output.
    #[must_use]
    pub fn from_parts(state: [u64; 4], gauss_cache: Option<f64>) -> Self {
        Rng { state, gauss_cache }
    }

    /// A 64-bit digest of the generator state (for snapshot validation).
    /// Does not advance the stream.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in self.state {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let cached = self.gauss_cache.map_or(0, f64::to_bits);
        (h ^ cached).wrapping_mul(0x0000_0100_0000_01B3)
    }

    /// Derives an independent generator for a sub-component, keyed by
    /// `stream`. Useful for giving each simulated component its own
    /// deterministic stream.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mix = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::new(mix)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let width = range.end - range.start;
        // Lemire-style rejection-free-enough multiply-shift; bias is
        // negligible (< 2^-64 * width) for simulation purposes, but we use
        // rejection to keep results exactly uniform.
        let zone = u64::MAX - (u64::MAX % width);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + (v % width);
            }
        }
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0..n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A sample from the normal distribution `N(mean, sigma^2)` via the
    /// Box–Muller transform (with caching of the paired sample).
    pub fn gaussian(&mut self, mean: f64, sigma: f64) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return mean + sigma * z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1 = loop {
            let u = self.unit_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.unit_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_cache = Some(r * theta.sin());
        mean + sigma * r * theta.cos()
    }

    /// An exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.unit_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.range_u64(100..107);
            assert!((100..107).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.range_u64(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).range_u64(5..5);
    }

    #[test]
    fn gaussian_moments_are_close() {
        let mut r = Rng::new(42);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.gaussian(5578.0, 826.9);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 5578.0).abs() < 10.0, "mean {mean}");
        assert!((var.sqrt() - 826.9).abs() < 10.0, "sigma {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Rng::new(77);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(10);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(8);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
