//! Simulated time.
//!
//! Time is measured in integer nanoseconds. [`SimTime`] is a point on the
//! simulated clock; [`SimSpan`] is a duration. The arithmetic follows the
//! usual affine rules: `Time + Span = Time`, `Time - Time = Span`,
//! `Span * k = Span`, and so on. Keeping the two concepts as distinct
//! newtypes prevents an entire class of unit bugs in the simulators built
//! on top of the kernel.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use dssd_kernel::{SimTime, SimSpan};
/// let t = SimTime::from_us(3);
/// assert_eq!(t + SimSpan::from_us(2), SimTime::from_us(5));
/// assert_eq!(SimTime::from_us(5) - t, SimSpan::from_us(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A length of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use dssd_kernel::SimSpan;
/// let s = SimSpan::from_us(4);
/// assert_eq!(s * 2, SimSpan::from_us(8));
/// assert_eq!(s.as_ns(), 4_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; useful as an "idle forever" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time `ns` nanoseconds after simulation start.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time `us` microseconds after simulation start.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time `ms` milliseconds after simulation start.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds since simulation start, as a float.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds since simulation start, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Creates a span of `ns` nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimSpan(ns)
    }

    /// Creates a span of `us` microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimSpan(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimSpan(ms * 1_000_000)
    }

    /// Creates a span from a float number of microseconds, rounding to the
    /// nearest nanosecond.
    #[must_use]
    pub fn from_us_f64(us: f64) -> Self {
        SimSpan((us * 1_000.0).round() as u64)
    }

    /// The time needed to move `bytes` at `bytes_per_sec`, rounded up to a
    /// whole nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[must_use]
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be non-zero");
        // ns = bytes * 1e9 / rate, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000).div_ceil(bytes_per_sec as u128);
        SimSpan(ns as u64)
    }

    /// Length in nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Length in microseconds, as a float.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in seconds, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    #[must_use]
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }

    /// Saturating subtraction of spans.
    #[must_use]
    pub fn saturating_sub(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimSpan) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime - SimSpan went negative"),
        )
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(
            self.0
                .checked_sub(rhs.0)
                .expect("SimSpan subtraction went negative"),
        )
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 * rhs)
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimSpan::from_us(1), SimSpan::from_ns(1_000));
        assert_eq!(SimSpan::from_ms(2), SimSpan::from_us(2_000));
    }

    #[test]
    fn affine_arithmetic() {
        let t = SimTime::from_us(10);
        let s = SimSpan::from_us(4);
        assert_eq!(t + s, SimTime::from_us(14));
        assert_eq!((t + s) - t, s);
        assert_eq!(t - s, SimTime::from_us(6));
        assert_eq!(s + s, SimSpan::from_us(8));
        assert_eq!(s * 3, SimSpan::from_us(12));
        assert_eq!(s / 2, SimSpan::from_us(2));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_span_panics() {
        let _ = SimTime::from_us(1) - SimTime::from_us(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(2);
        assert_eq!(a.saturating_since(b), SimSpan::ZERO);
        assert_eq!(b.saturating_since(a), SimSpan::from_us(1));
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 3 B/s is 333,333,333.33 ns, so it must round up.
        assert_eq!(
            SimSpan::for_transfer(1, 3),
            SimSpan::from_ns(333_333_334)
        );
        // 4 KiB at 1 GB/s is exactly 4096 ns.
        assert_eq!(
            SimSpan::for_transfer(4096, 1_000_000_000),
            SimSpan::from_ns(4096)
        );
    }

    #[test]
    fn transfer_time_large_values_do_not_overflow() {
        let s = SimSpan::for_transfer(u64::MAX / 2, 8_000_000_000);
        assert!(s.as_ns() > 0);
    }

    #[test]
    fn float_views() {
        assert!((SimTime::from_ms(3).as_ms_f64() - 3.0).abs() < 1e-12);
        assert!((SimSpan::from_us(7).as_us_f64() - 7.0).abs() < 1e-12);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimSpan = [1u64, 2, 3].iter().map(|&u| SimSpan::from_us(u)).sum();
        assert_eq!(total, SimSpan::from_us(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::from_us(5)).is_empty());
        assert!(!format!("{}", SimSpan::from_us(5)).is_empty());
    }
}
