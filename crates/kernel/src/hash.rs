//! A fast, deterministic hasher for hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with per-process random
//! keys) costs tens of nanoseconds per lookup and randomizes iteration
//! order per process. Hot simulator maps are keyed lookups on small
//! integer keys, so they use this Fx-style multiply-rotate hash instead:
//! a few cycles per key, and *fixed* seeding, so even an accidental
//! iteration is at least reproducible run-to-run rather than a latent
//! determinism hazard.
//!
//! Not DoS-resistant — never use it for attacker-controlled keys. Keys
//! here are simulator-internal ids.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio (same constant rustc's FxHash uses).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A `HashMap` with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(u64::MAX, "b");
        m.insert(0, "c");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&u64::MAX), Some(&"b"));
        assert_eq!(m.remove(&0), Some("c"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
        // Sequential keys must not collide in the low bits the table uses.
        let low: std::collections::BTreeSet<u64> = (0..64).map(|i| h(i) & 0xFF).collect();
        assert!(low.len() > 32, "low-bit spread too poor: {}", low.len());
    }

    #[test]
    fn tuple_and_byte_keys_work() {
        let mut m: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for i in 0..100 {
            m.insert((i, i * 3), i);
        }
        assert_eq!(m.get(&(7, 21)), Some(&7));
        let mut h = FxHasher::default();
        h.write(b"hello world");
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(b"hello worle");
        assert_ne!(a, h.finish());
    }
}
