//! Discrete-event simulation kernel for the dSSD reproduction.
//!
//! This crate provides the domain-independent substrate shared by every
//! simulator in the workspace:
//!
//! * [`SimTime`] / [`SimSpan`] — nanosecond-resolution simulated time.
//! * [`EventQueue`] — a deterministic future-event list with stable
//!   (insertion-order) tie-breaking, so identical inputs always replay the
//!   exact same schedule.
//! * [`Rng`] — a small, seedable xoshiro256\*\* pseudo-random generator with
//!   Gaussian sampling, so simulation results never depend on an external
//!   RNG crate's version behaviour.
//! * [`stats`] — streaming histograms with exact percentiles, windowed
//!   bandwidth meters, busy-time utilization integrators and online means.
//! * [`BandwidthServer`] — a FIFO bandwidth resource used to model the
//!   system bus, DRAM, flash channel buses and the dedicated GC bus of the
//!   paper's `dSSD_b` configuration.
//! * [`Slab`] — a generational slab arena giving O(1), allocation-free,
//!   deterministic id↔state maps for hot-path entities.
//! * [`FxHashMap`] — a deterministic, fast-hashing map for keyed lookups
//!   that cannot use dense ids.
//! * [`parallel`] — a std-only scoped-thread fan-out for embarrassingly
//!   parallel sweeps, with results in deterministic input order.
//! * [`shard`] — conservative parallel execution *within* one run:
//!   [`ShardedQueue`] splits a future-event list across shards while
//!   preserving exact single-queue pop order (parallel batch extraction),
//!   and [`BarrierEngine`] runs cleanly partitioned models concurrently
//!   under lookahead barriers with SPSC mailboxes.
//! * [`snap`] — a tiny hand-rolled binary codec for simulation snapshots
//!   (the workspace vendors no external serialization crate).
//!
//! # Example
//!
//! ```
//! use dssd_kernel::{EventQueue, SimTime, SimSpan};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimSpan::from_us(5), "second");
//! q.push(SimTime::ZERO + SimSpan::from_us(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_ns(1_000));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod hash;
pub mod parallel;
mod rng;
mod server;
pub mod shard;
mod slab;
pub mod snap;
pub mod stats;
mod time;

pub use event::{EventKey, EventQueue, ARRIVAL_RANK, DEFAULT_RANK};
pub use shard::{BarrierEngine, BarrierStats, Outbox, ShardWorker, ShardedQueue};
pub use hash::{FxHashMap, FxHasher};
pub use rng::Rng;
pub use server::{BandwidthServer, ServerStats, Transfer};
pub use slab::{Slab, SlabKey};
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use time::{SimSpan, SimTime};
