//! A `Vec`-backed slab arena with generation-tagged keys.
//!
//! The simulator's hot paths used to keep their in-flight state
//! (requests, copy jobs, packets) in `HashMap<u64, T>` tables, paying a
//! hash + probe on every event. A [`Slab`] replaces those maps with a
//! dense `Vec` indexed by a small integer, so lookup is one bounds check
//! and one generation compare. Freed slots go on a LIFO free list and are
//! reused; the generation tag in the key catches stale handles (a key
//! that outlived its slot never aliases the slot's next tenant).
//!
//! Keys are allocated deterministically: the same sequence of
//! insert/remove operations always yields the same keys, so simulations
//! that embed keys in events replay bit-identically.

use std::fmt;

/// A handle to an occupied [`Slab`] slot: a dense index plus the slot's
/// generation at insertion time.
///
/// Keys are `Copy` and pack into a `u64` (see [`SlabKey::to_bits`]) so
/// they can ride inside event payloads or foreign id fields.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// The slot index (dense, reused after removal).
    #[must_use]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Packs the key into a `u64` (index in the low 32 bits).
    #[must_use]
    pub fn to_bits(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Reconstructs a key from its packed representation.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        SlabKey {
            index: bits as u32,
            generation: (bits >> 32) as u32,
        }
    }
}

impl fmt::Debug for SlabKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}v{}", self.index, self.generation)
    }
}

#[derive(Debug, Clone)]
enum Slot<T> {
    Vacant { generation: u32 },
    Occupied { generation: u32, value: T },
}

/// A dense arena of `T` with O(1) insert, lookup and remove.
///
/// # Example
///
/// ```
/// use dssd_kernel::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab[a], "alpha");
/// assert_eq!(slab.remove(b), Some("beta"));
/// assert_eq!(slab.get(b), None); // stale key rejected
/// let c = slab.insert("gamma"); // reuses b's slot, new generation
/// assert_eq!(c.index(), b.index());
/// assert_ne!(c, b);
/// assert_eq!(slab.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Creates an empty slab with room for `capacity` values before
    /// reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts `value` and returns its key. Reuses the most recently
    /// freed slot, bumping its generation.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            let Slot::Vacant { generation } = *slot else {
                unreachable!("free list points at occupied slot");
            };
            *slot = Slot::Occupied { generation, value };
            return SlabKey { index, generation };
        }
        let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
        self.slots.push(Slot::Occupied { generation: 0, value });
        SlabKey { index, generation: 0 }
    }

    /// The value at `key`, or `None` if the key is stale or unknown.
    #[must_use]
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.slots.get(key.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value at `key`.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.slots.get_mut(key.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// True if `key` refers to a live value.
    #[must_use]
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the value at `key`, or `None` if the key is
    /// stale or unknown. The slot's generation is bumped so outstanding
    /// copies of `key` stop resolving.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index())?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == key.generation => {
                let next_gen = generation.wrapping_add(1);
                let Slot::Occupied { value, .. } =
                    std::mem::replace(slot, Slot::Vacant { generation: next_gen })
                else {
                    unreachable!("matched occupied slot above");
                };
                self.free.push(key.index);
                self.len -= 1;
                Some(value)
            }
            _ => None,
        }
    }

    /// Live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no value is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over live `(key, value)` pairs in slot-index order
    /// (deterministic, unlike a hash map's iteration order).
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, slot)| match slot {
            Slot::Occupied { generation, value } => Some((
                SlabKey { index: i as u32, generation: *generation },
                value,
            )),
            Slot::Vacant { .. } => None,
        })
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> std::ops::Index<SlabKey> for Slab<T> {
    type Output = T;

    fn index(&self, key: SlabKey) -> &T {
        self.get(key).expect("stale or unknown slab key")
    }
}

impl<T> std::ops::IndexMut<SlabKey> for Slab<T> {
    fn index_mut(&mut self, key: SlabKey) -> &mut T {
        self.get_mut(key).expect("stale or unknown slab key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let b = s.insert(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&10));
        assert_eq!(s[b], 20);
        *s.get_mut(a).unwrap() = 11;
        assert_eq!(s.remove(a), Some(11));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
    }

    #[test]
    fn slots_are_reused_lifo_with_new_generation() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        s.remove(a);
        s.remove(b);
        // LIFO free list: b's slot comes back first.
        let c = s.insert("c");
        assert_eq!(c.index(), b.index());
        assert_ne!(c, b, "reused slot must carry a new generation");
        let d = s.insert("d");
        assert_eq!(d.index(), a.index());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stale_keys_are_rejected_everywhere() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let fresh = s.insert(2); // same slot, new generation
        assert_eq!(a.index(), fresh.index());
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert!(!s.contains(a));
        assert_eq!(s.remove(a), None, "stale remove must not evict the new tenant");
        assert_eq!(s.get(fresh), Some(&2));
    }

    #[test]
    #[should_panic(expected = "stale or unknown slab key")]
    fn indexing_with_stale_key_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let _ = s[a];
    }

    #[test]
    fn keys_pack_into_u64() {
        let mut s = Slab::new();
        let a = s.insert(5);
        s.remove(a);
        let b = s.insert(6); // generation 1
        let bits = b.to_bits();
        assert_eq!(SlabKey::from_bits(bits), b);
        assert_ne!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn iteration_is_index_ordered_and_skips_vacant() {
        let mut s = Slab::new();
        let a = s.insert(0);
        let _b = s.insert(1);
        let _c = s.insert(2);
        s.remove(a);
        let got: Vec<i32> = s.iter().map(|(_, &v)| v).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn key_allocation_is_deterministic() {
        let run = || {
            let mut s = Slab::new();
            let mut keys = Vec::new();
            for i in 0..100 {
                keys.push(s.insert(i));
                if i % 3 == 0 {
                    let k = keys[i / 2];
                    s.remove(k);
                }
            }
            keys.iter().map(|k| k.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn churn_conserves_values() {
        let mut s = Slab::new();
        let mut live = Vec::new();
        for round in 0..50u64 {
            for i in 0..10 {
                live.push((s.insert(round * 100 + i), round * 100 + i));
            }
            // Free every other live entry.
            let mut keep = Vec::new();
            for (i, (k, v)) in live.drain(..).enumerate() {
                if i % 2 == 0 {
                    assert_eq!(s.remove(k), Some(v));
                } else {
                    keep.push((k, v));
                }
            }
            live = keep;
        }
        assert_eq!(s.len(), live.len());
        for (k, v) in &live {
            assert_eq!(s.get(*k), Some(v));
        }
    }
}
