//! `dssd-cli` — drive the dSSD simulator from the command line.
//!
//! ```text
//! dssd-cli run        --arch dssd_f --pages 8 --ms 30 [--pattern random]
//!                     [--qd 64] [--dram-hit] [--gc-continuous] [--seed N]
//!                     [--fault-read-transient P] [--fault-read-hard P]
//!                     [--fault-program P] [--fault-erase P] [--fault-noc P]
//!                     [--fault-max-retries N] [--fault-retry-success P]
//!                     [--durable] [--journal-entries N] [--ckpt-interval-pages N]
//!                     [--power-loss-ms MS] [--power-loss-event N]
//!                     [--power-loss-mttf-ms MS]
//!                     [--snapshot-at-ms MS] [--snapshot-out FILE] [--resume FILE]
//!                     [--trace-out FILE] [--trace-window MS] [--trace-summary]
//!                     [--epoch-out FILE] [--epoch-ms MS]
//!                     [--progress] [--no-noc-express] [--no-flash-express]
//!                     [--shards N]
//! dssd-cli sweep      [--arch all|dssd_f] [--factors 1.0,1.5,2.0] [--jobs N]
//!                     [--pages 8] [--ms 5] [--seed N] [--gc-continuous]
//!                     [--shards N] [--json FILE]
//! dssd-cli trace      --volume prn_0 --arch baseline [--speedup 10] [--ms 40]
//!                     [--trace-out FILE] [--trace-window MS] [--trace-summary]
//!                     [--epoch-out FILE] [--epoch-ms MS]
//!                     [--progress] [--no-noc-express] [--no-flash-express]
//! dssd-cli trace      --csv FILE --arch dssd_f [--ms 40]
//! dssd-cli serve      --spec FILE [--arch dssd_f] [--batch] [--report FILE]
//!                     [--trace-out FILE] [--trace-window MS] [--trace-summary]
//!                     [--progress] [--no-noc-express] [--no-flash-express]
//! dssd-cli validate   [--trace FILE] [--epochs FILE] [--service FILE]
//! dssd-cli crashpoints [--arch dssd_f] [--pages 8] [--ms 2] [--stride 500]
//!                     [--seeds 1,2,3] [--journal-entries N]
//!                     [--ckpt-interval-pages N]
//! dssd-cli endurance  [--policy recycled] [--superblocks 256] [--sigma 826.9]
//!                     [--srt 1024] [--reserved 0.07] [--journal-entries N]
//!                     [--ckpt-interval-pages N] [--power-loss-fills F]
//! dssd-cli noc        [--topology mesh|ring|crossbar] [--terminals 8]
//!                     [--pattern uniform|tornado|hotspot] [--load-mbps 150]
//!                     [--no-noc-express]
//! dssd-cli volumes
//! ```
//!
//! Telemetry flags are shared by `run` and `trace`: `--trace-out` writes a
//! Chrome Trace JSON document (load it at <https://ui.perfetto.dev>),
//! `--trace-window MS` caps the ring buffer to the last `MS` milliseconds,
//! `--epoch-out` writes the epoch time-series as JSONL (`--epoch-ms` sets
//! the sampling interval), and `--trace-summary` prints per-stage
//! p50/p99/p99.99 tables next to the `StageKind` breakdown means. Tracing
//! never perturbs a run — the same seed produces byte-identical stdout
//! with and without these flags (all telemetry status goes to stderr).
//!
//! Durability flags (`run`): `--durable` turns on the FTL metadata
//! durability model (OOB P2L, mapping journal, periodic checkpoints —
//! charged as real flash traffic); `--power-loss-ms`/`--power-loss-event`
//! cut power at a simulated instant or event ordinal, and
//! `--power-loss-mttf-ms` draws the loss instant from a dedicated
//! exponential stream; the report then includes the mount/recovery audit.
//! `--snapshot-at-ms` pauses the run mid-flight, writes a replay-cursor
//! snapshot (`--snapshot-out`, default `dssd.snap`), and continues;
//! `--resume FILE` rebuilds that paused state (pass the *same* run flags)
//! and finishes the run — stdout is byte-identical to the uninterrupted
//! run. `crashpoints` forks a running sim at every k-th event, forces
//! power loss on each fork, and verifies both crash-consistency
//! invariants (no acknowledged write lost, no trimmed data resurrected).
//!
//! `serve` drives the live block-device front-end (`dssd-service`): the
//! `--spec` file declares tenants, their offered load, and their QoS
//! knobs (token-bucket rate limits, queue-depth caps, a global backlog
//! threshold). The live run submits through per-tenant SQ/CQ rings with
//! admission control; `--batch` replays the *same* deterministic
//! submission schedule as a plain `run_trace`. For a spec with no QoS
//! constraint the two modes print byte-identical stdout — CI diffs
//! exactly that. `--report FILE` (live mode) writes the per-tenant
//! `dssd-service-report-v1` JSON, checked by `validate --service`.
//!
//! `--progress` prints a once-per-second heartbeat (sim-time, events
//! processed, events/sec) to stderr; stdout stays byte-identical.
//! `--no-noc-express` disables the fNoC's contention-free express path
//! and forces pure flit-level simulation — results are bit-identical
//! either way, so this only matters when debugging a suspected
//! divergence (see DESIGN.md §10). `--no-flash-express` does the same
//! for the flash-side express path (analytic leg-chain coalescing, the
//! NoC event burst loop, and the quiet-router sweep skip — DESIGN.md
//! §13): byte-identical output, one-event-at-a-time execution.
//! `--shards N` (default 1) runs the intra-run sharded engine: the
//! future-event list is split across N per-shard queues by home
//! resource (channel blocks, fNoC regions) and merged back in exact
//! global order (DESIGN.md §14) — stdout is byte-identical for every
//! N, so shard count is a performance knob, never a results knob.

mod args;

use std::process::ExitCode;

use args::{ArgError, Flags};
use dssd_bench::runner::{self, run_sweep, BenchRecord, SweepPoint};
use dssd_kernel::{Rng, SimSpan};
use dssd_noc::traffic::{schedule, Pattern};
use dssd_noc::{drive, Network, NocConfig, TopologyKind};
use dssd_ftl::MetaConfig;
use dssd_kernel::SimTime;
use dssd_reliability::{CrashpointConfig, EnduranceConfig, EnduranceSim, SuperblockPolicy};
use dssd_ssd::{
    Architecture, DurabilityConfig, FaultConfig, PowerLossConfig, RunPlan, SimSnapshot,
    SsdConfig, SsdSim, StageKind, TraceConfig,
};
use dssd_service::{serve, ServiceSpec};
use dssd_telemetry::json::{validate_chrome_trace, validate_epoch_jsonl, validate_service_report};
use dssd_telemetry::{chrome, Class, Stage};
use dssd_workload::{msr, AccessPattern, SyntheticWorkload, Trace};

const USAGE: &str = "usage: dssd-cli <run|sweep|trace|serve|validate|crashpoints|endurance|noc|volumes> [--flags]
run 'dssd-cli <command> --help' is not needed: every flag has a default;
see the crate docs (or the source header) for the full flag list.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "sweep" => cmd_sweep(rest),
        "trace" => cmd_trace(rest),
        "serve" => cmd_serve(rest),
        "validate" => cmd_validate(rest),
        "crashpoints" => cmd_crashpoints(rest),
        "endurance" => cmd_endurance(rest),
        "noc" => cmd_noc(rest),
        "volumes" => cmd_volumes(),
        other => Err(ArgError(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_arch(s: &str) -> Result<Architecture, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Architecture::Baseline),
        "bw" => Ok(Architecture::ExtraBandwidth),
        "dssd" => Ok(Architecture::Dssd),
        "dssd_b" | "dssdb" => Ok(Architecture::DssdBus),
        "dssd_f" | "dssdf" | "fnoc" => Ok(Architecture::DssdFnoc),
        other => Err(ArgError(format!(
            "unknown architecture `{other}` (baseline|bw|dssd|dssd_b|dssd_f)"
        ))),
    }
}

fn build_config(flags: &Flags) -> Result<SsdConfig, ArgError> {
    let arch = parse_arch(flags.get("arch").unwrap_or("dssd_f"))?;
    let mut cfg = SsdConfig::test_tiny(arch);
    cfg.gc_continuous = flags.switch("gc-continuous");
    cfg.srt_active_remaps = flags.get_or("srt-remaps", 0usize)?;
    let seed = flags.get_or("seed", cfg.seed)?;
    cfg = cfg.with_seed(seed);
    let factor = flags.get_or("onchip-factor", cfg.onchip_bw_factor)?;
    if factor >= 1.0 {
        cfg = cfg.with_onchip_factor(factor);
    }
    cfg.faults = build_faults(flags)?;
    build_durability(flags, &mut cfg)?;
    if flags.switch("no-noc-express") {
        // Escape hatch for debugging suspected express-path divergence:
        // force flit-level simulation (bit-identical, just slower).
        cfg.noc = cfg.noc.with_express(false);
    }
    if flags.switch("no-flash-express") {
        // Same escape hatch for the flash-side express path (DESIGN.md
        // §13): fall back to one-event-at-a-time execution.
        cfg.flash_express = false;
    }
    let shards = flags.get_or("shards", 1usize)?;
    cfg = cfg.with_shards(shards);
    if let Err(e) = cfg.validate() {
        return Err(ArgError(e));
    }
    Ok(cfg)
}

/// Parses the durability and power-loss flags. Any of them implies
/// `--durable`; with none given the config is untouched, so default runs
/// stay bit-identical to the pre-durability simulator.
fn build_durability(flags: &Flags, cfg: &mut SsdConfig) -> Result<(), ArgError> {
    let wants = flags.switch("durable")
        || ["journal-entries", "ckpt-interval-pages", "power-loss-ms", "power-loss-event",
            "power-loss-mttf-ms"]
        .iter()
        .any(|k| flags.get(k).is_some());
    if !wants {
        return Ok(());
    }
    let mut d = DurabilityConfig::default();
    d.journal_entries_per_page = flags.get_or("journal-entries", d.journal_entries_per_page)?;
    d.checkpoint_interval_pages =
        flags.get_or("ckpt-interval-pages", d.checkpoint_interval_pages)?;
    cfg.durability = Some(d);
    let mut pl = PowerLossConfig::none();
    let at_ms = flags.get_or("power-loss-ms", 0.0f64)?;
    if at_ms > 0.0 {
        pl.at = SimTime::ZERO + SimSpan::from_ns((at_ms * 1e6) as u64);
    }
    pl.at_event = flags.get_or("power-loss-event", 0u64)?;
    let mttf_ms = flags.get_or("power-loss-mttf-ms", 0.0f64)?;
    if mttf_ms > 0.0 {
        pl.mean_time_to_loss = SimSpan::from_ns((mttf_ms * 1e6) as u64);
    }
    cfg.power_loss = pl;
    Ok(())
}

fn build_faults(flags: &Flags) -> Result<FaultConfig, ArgError> {
    let mut f = FaultConfig::none();
    f.read_transient_prob = flags.get_or("fault-read-transient", 0.0)?;
    f.read_hard_prob = flags.get_or("fault-read-hard", 0.0)?;
    f.program_fail_prob = flags.get_or("fault-program", 0.0)?;
    f.erase_fail_prob = flags.get_or("fault-erase", 0.0)?;
    f.noc_degrade_prob = flags.get_or("fault-noc", 0.0)?;
    f.max_read_retries = flags.get_or("fault-max-retries", f.max_read_retries)?;
    f.retry_success_prob = flags.get_or("fault-retry-success", f.retry_success_prob)?;
    if let Some(err) = f.validate() {
        return Err(ArgError(err));
    }
    Ok(f)
}

fn print_report(sim: &mut SsdSim) {
    let p99 = sim.report_mut().latency_percentile(0.99);
    let p999 = sim.report_mut().latency_percentile(0.999);
    let r = sim.report();
    println!("requests      {}", r.requests_completed);
    println!("io bandwidth  {:.3} GB/s", r.io_bandwidth_gbps());
    println!("gc bandwidth  {:.3} GB/s", r.gc_bandwidth_gbps());
    println!("gc rounds     {}", r.gc_rounds);
    println!("mean latency  {}", r.mean_latency());
    println!("p99 latency   {p99}");
    println!("p99.9 latency {p999}");
    println!(
        "sysbus util   io {:.1}% / gc {:.1}%",
        r.sysbus_io_utilization().min(1.0) * 100.0,
        r.sysbus_gc_utilization().min(1.0) * 100.0
    );
    if let Some(eol) = r.end_of_life {
        println!("END OF LIFE at {:.1} ms", eol.as_ms_f64());
    }
    if let Some(m) = sim.meta_stats() {
        println!();
        println!("durability model:");
        println!(
            "  journal        {} pages flushed ({} entries)",
            m.journal_pages, m.journal_entries
        );
        println!(
            "  checkpoints    {} taken ({} flash pages)",
            m.checkpoints, m.checkpoint_pages
        );
    }
    if let Some(rec) = r.recovery {
        println!();
        println!("POWER LOSS at {:.3} ms:", rec.power_loss_at.as_ms_f64());
        println!("  requests torn     {}", rec.requests_torn);
        println!("  page programs torn {}", rec.torn_pages);
        println!(
            "  mount scan        {} ckpt + {} journal + {} oob pages",
            rec.checkpoint_pages, rec.journal_pages_replayed, rec.oob_pages_scanned
        );
        println!("  journal entries   {} replayed", rec.journal_entries_replayed);
        println!("  recovery time     {}", rec.recovery_time);
        println!(
            "  invariants        {}",
            if rec.invariants_hold() {
                "OK (no acked write lost, no trim resurrected)".to_string()
            } else {
                format!(
                    "VIOLATED ({} acked writes lost, {} trims resurrected)",
                    rec.lost_acked_writes, rec.resurrected_trims
                )
            }
        );
    }
    let c = r.faults;
    if c != Default::default() {
        println!();
        println!("fault injection:");
        println!(
            "  read retries        {} ({} recovered, {} uncorrectable)",
            c.read_retries, c.reads_recovered, c.uncorrectable_reads
        );
        println!("  retry latency added {}", c.retry_latency);
        println!(
            "  program failures    {} / erase failures {}",
            c.program_failures, c.erase_failures
        );
        println!(
            "  blocks retired      {} ({} superblocks retired online, {} remapped)",
            c.blocks_retired, c.superblocks_retired, r.dynamic_remaps
        );
        if c.noc_faults > 0 {
            println!("  noc packets delayed {}", c.noc_faults);
        }
        println!("  requests failed     {}", c.requests_failed);
    }
    println!();
    println!("io breakdown (mean us/stage):");
    for s in StageKind::all() {
        let v = r.io_breakdown.mean_us(s);
        if v > 0.005 {
            println!("  {:<11} {v:>9.1}", s.label());
        }
    }
    if r.copyback_breakdown.count() > 0 {
        println!("copyback breakdown (mean us/stage):");
        for s in StageKind::all() {
            let v = r.copyback_breakdown.mean_us(s);
            if v > 0.005 {
                println!("  {:<11} {v:>9.1}", s.label());
            }
        }
    }
}

/// Parses the shared telemetry flags into a [`TraceConfig`], or `None`
/// when no telemetry flag was given (untraced runs pay nothing).
fn trace_config(flags: &Flags) -> Result<Option<TraceConfig>, ArgError> {
    let wants_trace = flags.get("trace-out").is_some()
        || flags.get("trace-window").is_some()
        || flags.switch("trace-summary");
    let wants_epoch = flags.get("epoch-out").is_some() || flags.get("epoch-ms").is_some();
    if !wants_trace && !wants_epoch {
        return Ok(None);
    }
    let window = flags
        .get("trace-window")
        .map(|_| flags.get_or("trace-window", 0u64))
        .transpose()?
        .map(SimSpan::from_ms);
    if window == Some(SimSpan::ZERO) {
        return Err(ArgError("--trace-window must be >= 1 ms".into()));
    }
    let epoch = if wants_epoch {
        let ms = flags.get_or("epoch-ms", 1u64)?;
        if ms == 0 {
            return Err(ArgError("--epoch-ms must be >= 1".into()));
        }
        Some(SimSpan::from_ms(ms))
    } else {
        None
    };
    Ok(Some(TraceConfig { window, epoch }))
}

/// Writes the requested telemetry artifacts after a traced run.
///
/// Every status line goes to *stderr*: a traced run's stdout must stay
/// byte-identical to an untraced same-seed run (CI diffs exactly that).
/// Only `--trace-summary` adds stdout output, and only when asked.
fn write_trace_outputs(sim: &mut SsdSim, flags: &Flags) -> Result<(), ArgError> {
    if let Some(path) = flags.get("trace-out") {
        let file = std::fs::File::create(path)
            .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        chrome::write_chrome_trace(sim.tracer(), &mut w)
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        eprintln!(
            "trace: {} events to {path} ({} pruned by the window, {} unfinished) \
             — load at ui.perfetto.dev",
            sim.tracer().events().count(),
            sim.tracer().events_pruned(),
            sim.tracer().open_entities(),
        );
    }
    if let Some(path) = flags.get("epoch-out") {
        let series = sim
            .epoch_series()
            .ok_or_else(|| ArgError("--epoch-out requires epoch sampling".into()))?;
        let file = std::fs::File::create(path)
            .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        series
            .write_jsonl(&mut w)
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        eprintln!("trace: {} epoch samples to {path}", series.len());
    }
    if flags.switch("trace-summary") {
        print_trace_summary(sim);
    }
    Ok(())
}

/// The `--trace-summary` report: per-class completion counts and latency
/// tails, then a per-stage table with trace percentiles next to the
/// simulator's own `StageKind` breakdown means for cross-checking.
fn print_trace_summary(sim: &mut SsdSim) {
    let Some(summary) = sim.tracer().summary() else {
        return;
    };
    let r = sim.report();
    println!();
    println!("trace summary:");
    for (class, label, breakdown) in [
        (Class::Io, "host i/o", &r.io_breakdown),
        (Class::Gc, "gc copyback", &r.copyback_breakdown),
    ] {
        let n = summary.count(class);
        if n == 0 {
            continue;
        }
        // Percentiles need `&mut` (lazy sort / bucket walk); summaries are
        // log-bucketed, so the clone is a few kilobytes.
        let mut lat = summary.latency(class).clone();
        println!(
            "  {label}: {n} completed, {} failed; latency p50 {} / p99 {} / p99.99 {}",
            summary.failed(class),
            lat.percentile(0.5),
            lat.percentile(0.99),
            lat.percentile(0.9999),
        );
        println!(
            "    {:<11} {:>10} {:>10} {:>10} {:>10} {:>13}",
            "stage", "p50 us", "p99 us", "p99.99 us", "mean us", "breakdown us"
        );
        for stage in Stage::ALL {
            if summary.stage_total_ns(class, stage) == 0 {
                continue;
            }
            let mut h = summary.stage_hist(class, stage).clone();
            let mean_us = summary.stage_total_ns(class, stage) as f64 / 1e3 / n as f64;
            println!(
                "    {:<11} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>13.1}",
                stage.label(),
                h.percentile(0.5).as_us_f64(),
                h.percentile(0.99).as_us_f64(),
                h.percentile(0.9999).as_us_f64(),
                mean_us,
                breakdown.mean_us(StageKind::all()[stage.index()]),
            );
        }
    }
}

/// `validate` — check exported telemetry against its schema (the same
/// validators the test suite uses). `--trace FILE` checks a Chrome Trace
/// JSON document; `--epochs FILE` checks an epoch time-series JSONL
/// export (flat numeric objects, uniform columns, strictly increasing
/// `t_ms`). CI runs both on freshly exported files.
fn cmd_validate(rest: &[String]) -> Result<(), ArgError> {
    let flags = Flags::parse(rest, &[])?;
    if flags.get("trace").is_none()
        && flags.get("epochs").is_none()
        && flags.get("service").is_none()
    {
        return Err(ArgError(
            "validate needs --trace FILE, --epochs FILE and/or --service FILE".into(),
        ));
    }
    if let Some(path) = flags.get("trace") {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let stats = validate_chrome_trace(&doc)
            .map_err(|e| ArgError(format!("{path}: invalid trace: {e}")))?;
        println!(
            "{path}: valid ({} events: {} slices, {} async, {} instants, {} metadata)",
            stats.events, stats.spans, stats.asyncs, stats.instants, stats.metadata
        );
    }
    if let Some(path) = flags.get("epochs") {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let stats = validate_epoch_jsonl(&doc)
            .map_err(|e| ArgError(format!("{path}: invalid epoch series: {e}")))?;
        println!(
            "{path}: valid ({} samples, {} columns, monotonic t_ms)",
            stats.rows, stats.columns
        );
    }
    if let Some(path) = flags.get("service") {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let stats = validate_service_report(&doc)
            .map_err(|e| ArgError(format!("{path}: invalid service report: {e}")))?;
        println!(
            "{path}: valid ({} tenants: {} submitted, {} completed, {} rejected)",
            stats.tenants, stats.submitted, stats.completed, stats.rejected
        );
    }
    Ok(())
}

/// `crashpoints` — the dhara-style crash-consistency sweep: step a mother
/// run, fork it every `--stride` events, force power loss on the fork,
/// and verify the mount recovers with both invariants intact. Exits
/// non-zero on any violation.
fn cmd_crashpoints(rest: &[String]) -> Result<(), ArgError> {
    let flags = Flags::parse(rest, &["gc-continuous", "no-flash-express", "no-noc-express"])?;
    let mut base = build_config(&flags)?;
    if base.durability.is_none() {
        base.durability = Some(DurabilityConfig::default());
    }
    base.power_loss = PowerLossConfig::none();
    let pages = flags.get_or("pages", 8u32)?;
    let ms = flags.get_or("ms", 2u64)?;
    let stride = flags.get_or("stride", 500u64)?;
    if stride == 0 {
        return Err(ArgError("--stride must be >= 1".into()));
    }
    let seeds: Vec<u64> = match flags.get("seeds") {
        None => vec![1, 2, 3],
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| ArgError(format!("--seeds: cannot parse `{t}`")))
            })
            .collect::<Result<_, _>>()?,
    };
    let config = CrashpointConfig {
        workload: SyntheticWorkload::writes(AccessPattern::Random, pages).with_queue_depth(64),
        duration: SimSpan::from_ms(ms),
        stride,
        seeds,
        base,
    };
    println!(
        "crashpoint sweep on {}: {} ms, every {} events, seeds {:?}",
        config.base.architecture.label(),
        ms,
        stride,
        config.seeds
    );
    let report = dssd_reliability::sweep(&config);
    println!("crashpoints    {}", report.points);
    println!("requests torn  {}", report.requests_torn);
    println!("programs torn  {}", report.torn_pages);
    println!("mount reads    {} pages", report.pages_read);
    println!(
        "recovery time  mean {} / max {}",
        report.mean_recovery(),
        report.max_recovery
    );
    if report.passed() {
        println!("invariants     OK across all {} points", report.points);
        Ok(())
    } else {
        for v in &report.violations {
            eprintln!(
                "VIOLATION seed {} event {} at {:.3} ms: {} acked writes lost, \
                 {} trims resurrected",
                v.seed,
                v.events,
                v.at.as_ms_f64(),
                v.lost_acked_writes,
                v.resurrected_trims
            );
        }
        Err(ArgError(format!(
            "{} of {} crashpoints violated recovery invariants",
            report.violations.len(),
            report.points
        )))
    }
}

fn cmd_run(rest: &[String]) -> Result<(), ArgError> {
    let flags = Flags::parse(
        rest,
        &[
            "dram-hit",
            "durable",
            "gc-continuous",
            "no-flash-express",
            "no-noc-express",
            "no-prefill",
            "progress",
            "reads",
            "trace-summary",
        ],
    )?;
    let cfg = build_config(&flags)?;
    let tracing = trace_config(&flags)?;
    let pages = flags.get_or("pages", 8u32)?;
    let ms = flags.get_or("ms", 30u64)?;
    let qd = flags.get_or("qd", 64usize)?;
    let pattern = match flags.get("pattern").unwrap_or("random") {
        "random" | "rand" => AccessPattern::Random,
        "sequential" | "seq" => AccessPattern::Sequential,
        p => return Err(ArgError(format!("unknown pattern `{p}`"))),
    };
    let read_fraction = if flags.switch("reads") { 1.0 } else { 0.0 };
    println!(
        "running {} for {ms} ms: {pages}-page {:?} requests, QD {qd}\n",
        cfg.architecture.label(),
        pattern
    );
    let mut wl = SyntheticWorkload::mixed(pattern, pages, read_fraction).with_queue_depth(qd);
    if flags.switch("dram-hit") {
        wl = wl.with_dram_hit_fraction(1.0);
    }
    let duration = SimSpan::from_ms(ms);
    let plan = RunPlan { workload: wl.clone(), duration };
    let mut sim = if let Some(path) = flags.get("resume") {
        // Rebuild the snapshotted state by deterministic replay; the
        // remaining flags must match the snapshotting invocation.
        let bytes =
            std::fs::read(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let snap = SimSnapshot::from_bytes(&bytes)
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        let mut sim = snap.restore(cfg, &plan).map_err(|e| ArgError(format!("{path}: {e}")))?;
        eprintln!(
            "resumed {} events ({:.3} ms) from {path}",
            snap.cursor(),
            snap.taken_at().as_ms_f64()
        );
        sim.set_progress(flags.switch("progress"));
        sim
    } else {
        let mut sim = SsdSim::new(cfg);
        sim.set_progress(flags.switch("progress"));
        if let Some(tc) = tracing {
            sim.enable_tracing(tc);
        }
        if !flags.switch("no-prefill") {
            sim.prefill();
        }
        sim.begin_closed_loop(wl, duration);
        let snap_ms = flags.get_or("snapshot-at-ms", 0.0f64)?;
        if snap_ms > 0.0 {
            let at = SimTime::ZERO + SimSpan::from_ns((snap_ms * 1e6) as u64);
            sim.run_until(at);
            if sim.halted() {
                eprintln!("snapshot skipped: power loss struck before {snap_ms} ms");
            } else {
                let snap = SimSnapshot::capture(&sim, &plan);
                let path = flags.get("snapshot-out").unwrap_or("dssd.snap");
                std::fs::write(path, snap.to_bytes())
                    .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
                eprintln!(
                    "snapshot: {} events ({:.3} ms) to {path}",
                    snap.cursor(),
                    snap.taken_at().as_ms_f64()
                );
            }
        }
        sim
    };
    sim.run_events(u64::MAX);
    sim.finish_run();
    print_report(&mut sim);
    write_trace_outputs(&mut sim, &flags)?;
    Ok(())
}

/// `sweep` — fan independent simulation points out across cores.
///
/// The per-point numbers are bit-identical for every `--jobs` value
/// (each point owns its RNG and event queue), so the printed table can
/// be diffed across `--jobs` settings; CI does exactly that. Wall-clock
/// times are only recorded in the optional `--json` output.
fn cmd_sweep(rest: &[String]) -> Result<(), ArgError> {
    let flags = Flags::parse(rest, &["gc-continuous"])?;
    let jobs = flags.get_or("jobs", 0usize)?; // 0 = all available cores
    let ms = flags.get_or("ms", 5u64)?;
    let pages = flags.get_or("pages", 8u32)?;
    let factors: Vec<f64> = match flags.get("factors") {
        None => vec![1.0],
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| ArgError(format!("--factors: cannot parse `{t}`")))
            })
            .collect::<Result<_, _>>()?,
    };
    let archs: Vec<Architecture> = match flags.get("arch") {
        None | Some("all") => Architecture::all().to_vec(),
        Some(a) => vec![parse_arch(a)?],
    };
    let mut points = Vec::new();
    for &arch in &archs {
        for &factor in &factors {
            if factor < 1.0 {
                return Err(ArgError(format!("--factors: `{factor}` must be >= 1.0")));
            }
            let mut cfg = SsdConfig::test_tiny(arch);
            cfg.gc_continuous = flags.switch("gc-continuous");
            let seed = flags.get_or("seed", cfg.seed)?;
            cfg = cfg.with_seed(seed);
            if factor > 1.0 {
                cfg = cfg.with_onchip_factor(factor);
            }
            cfg = cfg.with_shards(flags.get_or("shards", 1usize)?);
            let label = format!("{}/x{factor}", arch.label());
            let mut p = SweepPoint::writes(label, cfg, SimSpan::from_ms(ms));
            p.request_pages = pages;
            points.push(p);
        }
    }
    println!("sweep: {} points, {pages}-page random writes, {ms} ms each", points.len());
    let out = run_sweep(&points, jobs);
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "point", "io GB/s", "gc GB/s", "mean us", "p99 us", "requests", "events"
    );
    for o in &out {
        let s = o.summary;
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>9.1} {:>9.1} {:>9} {:>10}",
            o.label, s.io_gbps, s.gc_gbps, s.mean_us, s.p99_us, s.requests, s.events
        );
    }
    if let Some(path) = flags.get("json") {
        let records: Vec<BenchRecord> = out
            .iter()
            .map(|o| BenchRecord::from_samples(o.label.clone(), &[o.wall], o.summary.events))
            .collect();
        runner::write_bench_json(std::path::Path::new(path), "dssd-cli sweep", &records)
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!("wrote {} records to {path}", records.len());
    }
    Ok(())
}

fn cmd_trace(rest: &[String]) -> Result<(), ArgError> {
    let flags =
        Flags::parse(
        rest,
        &["gc-continuous", "no-flash-express", "no-noc-express", "progress", "trace-summary"],
    )?;
    let mut cfg = build_config(&flags)?;
    cfg.gc_continuous = true;
    let tracing = trace_config(&flags)?;
    let ms = flags.get_or("ms", 40u64)?;
    let speedup: f64 = flags.get_or("speedup", 10.0)?;
    let trace: Trace = match (flags.get("csv"), flags.get("volume")) {
        (Some(path), _) => std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?
            .parse()
            .map_err(|e| ArgError(format!("{e}")))?,
        (None, volume) => {
            let name = volume.unwrap_or("prn_0");
            let profile = msr::profile(name)
                .ok_or_else(|| ArgError(format!("unknown volume `{name}` (try `volumes`)")))?;
            profile.synthesize(
                SimSpan::from_ns((SimSpan::from_ms(ms).as_ns() as f64 * speedup) as u64),
                flags.get_or("seed", 42u64)?,
            )
        }
    };
    println!(
        "replaying {} records ({:.0}% reads) at {speedup}x on {} for {ms} ms\n",
        trace.len(),
        trace.read_ratio() * 100.0,
        cfg.architecture.label()
    );
    let page_bytes = cfg.geometry.page_bytes;
    let mut sim = SsdSim::new(cfg);
    sim.set_progress(flags.switch("progress"));
    if let Some(tc) = tracing {
        sim.enable_tracing(tc);
    }
    sim.prefill();
    let requests = trace
        .accelerate(speedup)
        .to_requests(page_bytes, sim.ftl().lpn_count());
    sim.run_trace(requests, SimSpan::from_ms(ms));
    print_report(&mut sim);
    write_trace_outputs(&mut sim, &flags)?;
    Ok(())
}

/// `serve` — the live multi-tenant front-end. Parses a tenant spec,
/// drives the simulator through per-tenant SQ/CQ rings with QoS and
/// admission control, and prints the standard device report. With
/// `--batch` the *same* deterministic submission schedule is replayed
/// as a plain `run_trace`; for a spec with no QoS constraint, live and
/// batch stdout are byte-identical (the CI serve-smoke job diffs them).
/// All service-mode accounting goes to stderr or `--report FILE` so the
/// diffable stdout stays mode-independent.
fn cmd_serve(rest: &[String]) -> Result<(), ArgError> {
    let flags = Flags::parse(
        rest,
        &["batch", "gc-continuous", "no-flash-express", "no-noc-express", "progress", "trace-summary"],
    )?;
    let cfg = build_config(&flags)?;
    let tracing = trace_config(&flags)?;
    let path = flags
        .get("spec")
        .ok_or_else(|| ArgError("serve needs --spec FILE".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let spec = ServiceSpec::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let batch = flags.switch("batch");
    if batch && flags.get("report").is_some() {
        return Err(ArgError(
            "--report needs the live front-end (drop --batch)".into(),
        ));
    }
    println!(
        "serving {} tenants on {} for {} ms\n",
        spec.tenants.len(),
        cfg.architecture.label(),
        spec.duration.as_ns() as f64 / 1e6
    );
    let mut sim = SsdSim::new(cfg);
    sim.set_progress(flags.switch("progress"));
    if let Some(tc) = tracing {
        sim.enable_tracing(tc);
    }
    sim.prefill();
    if batch {
        let plan = spec.batch_requests(sim.ftl().lpn_count());
        sim.run_trace(plan, spec.duration);
    } else {
        let mut report = serve(&spec, &mut sim);
        for t in &report.tenants {
            eprintln!(
                "serve: tenant {} — {} submitted, {} completed, {} rejected, \
                 {} throttled, {} expired",
                t.name, t.submitted, t.completed, t.rejected, t.throttled, t.expired
            );
        }
        if let Some(out) = flags.get("report") {
            std::fs::write(out, report.to_json())
                .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
            eprintln!("serve: per-tenant report to {out}");
        }
    }
    print_report(&mut sim);
    write_trace_outputs(&mut sim, &flags)?;
    Ok(())
}

fn cmd_endurance(rest: &[String]) -> Result<(), ArgError> {
    let flags = Flags::parse(rest, &[])?;
    let mut cfg = EnduranceConfig::paper_tlc();
    cfg.superblocks = flags.get_or("superblocks", cfg.superblocks)?;
    cfg.pe_sigma = flags.get_or("sigma", cfg.pe_sigma)?;
    cfg.pe_mean = flags.get_or("mean", cfg.pe_mean)?;
    cfg.srt_entries = flags.get_or("srt", cfg.srt_entries)?;
    cfg.reserved_fraction = flags.get_or("reserved", cfg.reserved_fraction)?;
    cfg.seed = flags.get_or("seed", cfg.seed)?;
    // Metadata-journal accounting and power-loss injection: any of the
    // three flags arms the journal model.
    let journal_entries = flags.get_or("journal-entries", 0u32)?;
    let ckpt_interval = flags.get_or("ckpt-interval-pages", 0u64)?;
    cfg.mean_fills_between_power_loss = flags.get_or("power-loss-fills", 0.0f64)?;
    if journal_entries > 0 || ckpt_interval > 0 || cfg.mean_fills_between_power_loss > 0.0 {
        cfg.journal = Some(MetaConfig {
            journal_entries_per_page: if journal_entries > 0 { journal_entries } else { 256 },
            checkpoint_interval_pages: ckpt_interval,
            page_bytes: cfg.page_bytes,
        });
    }
    let policies: Vec<SuperblockPolicy> = match flags.get("policy") {
        None | Some("all") => SuperblockPolicy::all().to_vec(),
        Some("baseline") => vec![SuperblockPolicy::Baseline],
        Some("recycled") => vec![SuperblockPolicy::Recycled],
        Some("reserved") | Some("reserv") => vec![SuperblockPolicy::Reserved],
        Some("was") => vec![SuperblockPolicy::WearAware],
        Some(p) => return Err(ArgError(format!("unknown policy `{p}`"))),
    };
    println!(
        "{} superblocks, P/E ~ N({}, {}^2), SRT {} entries\n",
        cfg.superblocks, cfg.pe_mean, cfg.pe_sigma, cfg.srt_entries
    );
    println!(
        "{:<9} {:>13} {:>13} {:>13} {:>8}",
        "policy", "first bad", "at 5% bad", "total", "remaps"
    );
    for policy in policies {
        let r = EnduranceSim::new(cfg).run(policy);
        let tb = |b: u64| format!("{:.2} TB", b as f64 / 1e12);
        println!(
            "{:<9} {:>13} {:>13} {:>13} {:>8}",
            policy.label(),
            r.first_bad_bytes().map(tb).unwrap_or_else(|| "-".into()),
            tb(r.written_at_bad_fraction(0.05).unwrap_or(r.total_written)),
            tb(r.total_written),
            r.remap_events,
        );
        if cfg.journal.is_some() {
            let replay_max = r
                .power_loss_points
                .iter()
                .map(|p| p.journal_pages_replayed)
                .max()
                .unwrap_or(0);
            println!(
                "          {} power losses, {} journal + {} ckpt pages, \
                 worst mount replays {} pages",
                r.power_loss_points.len(),
                r.journal_pages,
                r.checkpoint_pages,
                replay_max,
            );
        }
    }
    Ok(())
}

fn cmd_noc(rest: &[String]) -> Result<(), ArgError> {
    let flags = Flags::parse(rest, &["no-noc-express"])?;
    let topology = match flags.get("topology").unwrap_or("mesh") {
        "mesh" | "mesh1d" => TopologyKind::Mesh1D,
        "ring" => TopologyKind::Ring,
        "crossbar" | "xbar" => TopologyKind::Crossbar,
        t => return Err(ArgError(format!("unknown topology `{t}`"))),
    };
    let terminals = flags.get_or("terminals", 8usize)?;
    let pattern = match flags.get("pattern").unwrap_or("uniform") {
        "uniform" | "random" => Pattern::UniformRandom,
        "tornado" => Pattern::Tornado,
        "hotspot" => Pattern::Hotspot,
        "bitrev" | "bitreverse" => Pattern::BitReverse,
        p => return Err(ArgError(format!("unknown pattern `{p}`"))),
    };
    let load_mbps = flags.get_or("load-mbps", 150u64)?;
    let ms = flags.get_or("ms", 2u64)?;
    let config = NocConfig::new(topology, terminals)
        .with_bisection_bandwidth(flags.get_or("bisection", 2_000_000_000u64)?)
        .with_input_buffer_flits(flags.get_or("buffer", 4usize)?)
        .with_express(!flags.switch("no-noc-express"));
    let mut rng = Rng::new(flags.get_or("seed", 7u64)?);
    let packets = schedule(
        terminals,
        pattern,
        load_mbps * 1_000_000,
        4096,
        SimSpan::from_ms(ms),
        &mut rng,
    );
    let offered = packets.len();
    let mut net = Network::new(config);
    let delivered = drive(&mut net, packets);
    let end = delivered.iter().map(|d| d.at).max().unwrap_or_default();
    let bytes: u64 = delivered.iter().map(|d| d.packet.bytes).sum();
    println!("{topology:?}, {terminals} terminals, {pattern:?} @ {load_mbps} MB/s/node");
    println!("offered   {offered} packets");
    println!("delivered {} packets", delivered.len());
    println!(
        "throughput {:.3} GB/s",
        bytes as f64 / end.as_secs_f64().max(1e-12) / 1e9
    );
    println!("mean latency {}", net.stats().mean_latency());
    println!("mean hops    {:.2}", net.stats().mean_hops());
    Ok(())
}

fn cmd_volumes() -> Result<(), ArgError> {
    println!(
        "{:<8} {:>10} {:>9} {:>10} {:>8} {:>6}",
        "volume", "read%", "read KiB", "write KiB", "IOPS", "class"
    );
    for p in msr::PROFILES {
        println!(
            "{:<8} {:>10.0} {:>9.0} {:>10.0} {:>8.0} {:>6}",
            p.name,
            p.read_ratio * 100.0,
            p.read_kib,
            p.write_kib,
            p.iops,
            if p.is_read_intensive() { "read" } else { "write" }
        );
    }
    Ok(())
}
