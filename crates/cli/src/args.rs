//! A small dependency-free flag parser: `--key value` and `--switch`.

use std::collections::HashMap;
use std::fmt;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

/// A flag-parsing or validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Flags {
    /// Parses `--key value` pairs and bare `--switch`es. `known_switches`
    /// lists the flags that take no value.
    pub fn parse(args: &[String], known_switches: &[&str]) -> Result<Flags, ArgError> {
        let mut flags = Flags::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected argument `{arg}`")));
            };
            if known_switches.contains(&key) {
                flags.switches.push(key.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
                flags.values.insert(key.to_string(), value.clone());
            }
        }
        Ok(flags)
    }

    /// True if the bare switch was given.
    #[must_use]
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// The raw value of `--key`, if given.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed value of `--key`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse `{v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = Flags::parse(&args(&["--ms", "30", "--dram-hit"]), &["dram-hit"]).unwrap();
        assert_eq!(f.get("ms"), Some("30"));
        assert!(f.switch("dram-hit"));
        assert!(!f.switch("other"));
        assert_eq!(f.get_or("ms", 0u64).unwrap(), 30);
        assert_eq!(f.get_or("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Flags::parse(&args(&["ms"]), &[]).is_err());
        assert!(Flags::parse(&args(&["--ms"]), &[]).is_err());
        let f = Flags::parse(&args(&["--ms", "abc"]), &[]).unwrap();
        assert!(f.get_or("ms", 0u64).is_err());
    }
}
