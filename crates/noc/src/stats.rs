//! Network measurement counters.

use dssd_kernel::stats::Histogram;
use dssd_kernel::SimSpan;

use crate::Delivered;

/// Aggregate network statistics.
///
/// # Example
///
/// ```
/// use dssd_noc::{drive, Network, NocConfig, Packet, TopologyKind};
/// use dssd_kernel::SimTime;
///
/// let mut net = Network::new(NocConfig::new(TopologyKind::Ring, 4));
/// drive(&mut net, vec![(SimTime::ZERO, Packet::new(0, 0, 2, 4096))]);
/// assert_eq!(net.stats().delivered, 1);
/// assert!(net.stats().mean_latency().as_ns() > 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct NocStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets fully delivered.
    pub delivered: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Total flit-link traversals (a load/energy proxy).
    pub flit_hops: u64,
    /// Per-packet injection-to-ejection latency.
    pub latency: Histogram,
    /// Total head-flit hops (for mean hop count).
    pub total_hops: u64,
    /// Arbitration attempts that found a routable flit but no downstream
    /// credit — a back-pressure signal sampled by the telemetry epoch
    /// probe.
    pub credit_stalls: u64,
}

impl NocStats {
    pub(crate) fn record_delivery(&mut self, d: &Delivered) {
        self.delivered += 1;
        self.bytes_delivered += d.packet.bytes;
        self.total_hops += d.hops as u64;
        self.latency.record(d.latency());
    }

    /// Mean packet latency ([`SimSpan::ZERO`] if nothing delivered).
    #[must_use]
    pub fn mean_latency(&self) -> SimSpan {
        self.latency.mean()
    }

    /// Mean hops per delivered packet.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivered payload throughput over `elapsed`.
    #[must_use]
    pub fn throughput(&self, elapsed: SimSpan) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes_delivered as f64 / elapsed.as_secs_f64()
        }
    }
}
