//! fNoC topologies: 1-D mesh, ring, crossbar (modeled as a star).

use dssd_kernel::SimSpan;

/// The interconnect shapes compared in the paper (Fig 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Bidirectional line; dimension-order (left/right) routing. The
    /// paper's default — it matches the linear floorplan of the flash
    /// controllers.
    Mesh1D,
    /// Bidirectional ring; shortest-path routing.
    Ring,
    /// Full crossbar, modeled as a star: every controller connects to a
    /// central switch with one link pair, and the switch has no internal
    /// contention.
    Crossbar,
    /// 2-D mesh with XY dimension-order routing — the paper's future-work
    /// question ("as the number of flash controllers increases ... it
    /// remains to be seen what the optimal topology will be"), answerable
    /// here. `cols` is the X dimension; terminals are laid out row-major.
    Mesh2D {
        /// Columns of the grid (terminals must divide evenly).
        cols: usize,
    },
}

impl TopologyKind {
    /// Number of unidirectional channels crossing the bisection for `k`
    /// terminal nodes.
    ///
    /// * 1-D mesh: one bidirectional channel crosses the middle → 2.
    /// * Ring: two bidirectional channels cross → 4.
    /// * Crossbar: conventionally credited with `k/2` port-bandwidth
    ///   units each way → `k`.
    #[must_use]
    pub fn bisection_channels(self, k: usize) -> usize {
        match self {
            TopologyKind::Mesh1D => 2,
            TopologyKind::Ring => 4,
            TopologyKind::Crossbar => k.max(2),
            TopologyKind::Mesh2D { cols } => {
                // Cut across the longer dimension.
                let rows = k.div_ceil(cols.max(1));
                2 * rows.min(cols).max(1)
            }
        }
    }

    /// The per-link bandwidth that gives this topology a total bisection
    /// bandwidth of `bisection_bytes_per_sec` with `k` terminals — the
    /// normalization used for the Fig 13 comparison ("bisection bandwidth
    /// is held constant across the different topologies").
    #[must_use]
    pub fn link_bw_for_bisection(self, k: usize, bisection_bytes_per_sec: u64) -> u64 {
        (bisection_bytes_per_sec / self.bisection_channels(k) as u64).max(1)
    }
}

/// Where an output port leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortLink {
    /// Ejection to the local terminal (the controller's NI).
    Local,
    /// A channel to `(node, input port at that node)`.
    Link {
        /// Downstream node.
        peer: usize,
        /// Input-port index at the downstream node.
        peer_in: usize,
    },
}

/// A built topology: per-node port maps and a routing function.
///
/// Ports are symmetric: output port `p` of node `n` feeds input port
/// `peer_in` of its peer, and input port `p` of node `n` is fed by the
/// matching reverse channel. Port 0 is always the local port.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    terminals: usize,
    /// Output links per node (index = output port).
    outputs: Vec<Vec<PortLink>>,
}

impl Topology {
    /// Builds a topology over `terminals` terminal nodes.
    ///
    /// For [`TopologyKind::Crossbar`] an extra hub node is appended after
    /// the terminals (node index `terminals`).
    ///
    /// # Panics
    ///
    /// Panics if `terminals < 2`.
    #[must_use]
    pub fn build(kind: TopologyKind, terminals: usize) -> Self {
        assert!(terminals >= 2, "need at least two terminals");
        let outputs = match kind {
            TopologyKind::Mesh1D | TopologyKind::Ring => {
                let wrap = kind == TopologyKind::Ring;
                (0..terminals)
                    .map(|n| {
                        // port 0 = local, 1 = left (toward n-1), 2 = right.
                        let left = if n > 0 {
                            Some(n - 1)
                        } else if wrap {
                            Some(terminals - 1)
                        } else {
                            None
                        };
                        let right = if n + 1 < terminals {
                            Some(n + 1)
                        } else if wrap {
                            Some(0)
                        } else {
                            None
                        };
                        let mut v = vec![PortLink::Local];
                        // A packet leaving left arrives at the peer's
                        // "right" input (port 2) and vice versa.
                        v.push(match left {
                            Some(p) => PortLink::Link { peer: p, peer_in: 2 },
                            None => PortLink::Local, // unused edge port
                        });
                        v.push(match right {
                            Some(p) => PortLink::Link { peer: p, peer_in: 1 },
                            None => PortLink::Local, // unused edge port
                        });
                        v
                    })
                    .collect()
            }
            TopologyKind::Mesh2D { cols } => {
                assert!(cols >= 1 && terminals.is_multiple_of(cols),
                        "terminals must fill the 2-D mesh grid");
                let rows = terminals / cols;
                (0..terminals)
                    .map(|n| {
                        let (x, y) = (n % cols, n / cols);
                        // ports: 0=local, 1=-x, 2=+x, 3=-y, 4=+y;
                        // a -x departure arrives on the peer's +x input.
                        let mut v = vec![PortLink::Local];
                        v.push(if x > 0 {
                            PortLink::Link { peer: n - 1, peer_in: 2 }
                        } else {
                            PortLink::Local
                        });
                        v.push(if x + 1 < cols {
                            PortLink::Link { peer: n + 1, peer_in: 1 }
                        } else {
                            PortLink::Local
                        });
                        v.push(if y > 0 {
                            PortLink::Link { peer: n - cols, peer_in: 4 }
                        } else {
                            PortLink::Local
                        });
                        v.push(if y + 1 < rows {
                            PortLink::Link { peer: n + cols, peer_in: 3 }
                        } else {
                            PortLink::Local
                        });
                        v
                    })
                    .collect()
            }
            TopologyKind::Crossbar => {
                let hub = terminals;
                let mut outputs: Vec<Vec<PortLink>> = (0..terminals)
                    .map(|n| {
                        vec![
                            PortLink::Local,
                            // Leaf uplink lands on hub input port n.
                            PortLink::Link { peer: hub, peer_in: n },
                        ]
                    })
                    .collect();
                // Hub: output port n goes down to leaf n's input port 1.
                outputs.push(
                    (0..terminals)
                        .map(|n| PortLink::Link { peer: n, peer_in: 1 })
                        .collect(),
                );
                outputs
            }
        };
        Topology { kind, terminals, outputs }
    }

    /// The topology kind.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of terminal (injecting/ejecting) nodes.
    #[must_use]
    pub fn terminals(&self) -> usize {
        self.terminals
    }

    /// Total nodes including any internal switch nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.outputs.len()
    }

    /// Ports at `node` (inputs and outputs are symmetric).
    #[must_use]
    pub fn ports(&self, node: usize) -> usize {
        self.outputs[node].len()
    }

    /// Where output port `port` of `node` leads.
    #[must_use]
    pub fn output(&self, node: usize, port: usize) -> PortLink {
        self.outputs[node][port]
    }

    /// The output port a packet at `node` destined for terminal `dst`
    /// should take (deterministic routing: dimension-order on the mesh,
    /// shortest path on the ring, up/down on the star).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a terminal.
    #[must_use]
    pub fn route(&self, node: usize, dst: usize) -> usize {
        assert!(dst < self.terminals, "destination {dst} is not a terminal");
        match self.kind {
            TopologyKind::Mesh1D => {
                if dst == node {
                    0
                } else if dst < node {
                    1
                } else {
                    2
                }
            }
            TopologyKind::Ring => {
                if dst == node {
                    return 0;
                }
                let k = self.terminals;
                let cw = (dst + k - node) % k; // hops going "right"
                let ccw = (node + k - dst) % k; // hops going "left"
                if cw <= ccw {
                    2
                } else {
                    1
                }
            }
            TopologyKind::Crossbar => {
                if node == self.terminals {
                    dst // hub: direct down-port per leaf
                } else if dst == node {
                    0
                } else {
                    1 // leaf: uplink
                }
            }
            TopologyKind::Mesh2D { cols } => {
                if dst == node {
                    return 0;
                }
                let (x, y) = (node % cols, node / cols);
                let (dx, dy) = (dst % cols, dst / cols);
                // XY dimension-order: resolve X first, then Y.
                if dx < x {
                    1
                } else if dx > x {
                    2
                } else if dy < y {
                    3
                } else {
                    4
                }
            }
        }
    }

    /// Minimal hop count (links traversed) between terminals.
    #[must_use]
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        if src == dst {
            return 0;
        }
        match self.kind {
            TopologyKind::Mesh1D => src.abs_diff(dst),
            TopologyKind::Ring => {
                let k = self.terminals;
                ((dst + k - src) % k).min((src + k - dst) % k)
            }
            TopologyKind::Crossbar => 2,
            TopologyKind::Mesh2D { cols } => {
                (src % cols).abs_diff(dst % cols) + (src / cols).abs_diff(dst / cols)
            }
        }
    }
}

/// Configuration of a [`Network`](crate::Network).
///
/// # Example
///
/// ```
/// use dssd_noc::{NocConfig, TopologyKind};
/// use dssd_kernel::SimSpan;
///
/// let cfg = NocConfig::new(TopologyKind::Mesh1D, 8)
///     .with_link_bandwidth(2_000_000_000)
///     .with_input_buffer_flits(8);
/// assert_eq!(cfg.terminals, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Interconnect shape.
    pub topology: TopologyKind,
    /// Number of terminal nodes (`k` in the paper; one per flash channel).
    pub terminals: usize,
    /// Flit size in bytes.
    pub flit_bytes: u32,
    /// Packet header/command bytes prepended to the page payload
    /// (Fig 4 step ⑤).
    pub header_bytes: u32,
    /// Per-link channel bandwidth in bytes/second.
    pub link_bytes_per_sec: u64,
    /// Router pipeline latency added per hop.
    pub router_latency: SimSpan,
    /// Input buffer capacity per port, in flits.
    pub input_buffer_flits: usize,
    /// Enable the contention-free express path (default on). When a
    /// packet's whole route is provably free of interference, the network
    /// fast-forwards it with a single delivery event instead of per-flit
    /// router events; results are bit-identical either way, so this only
    /// exists as a debugging escape hatch (`--no-noc-express`).
    pub express: bool,
}

impl NocConfig {
    /// A config with the paper's defaults: 1 GB/s channels (equal to one
    /// flash-bus channel), 32 B flits, 16 B header, 4-flit input buffers
    /// and a 2 ns router pipeline.
    #[must_use]
    pub fn new(topology: TopologyKind, terminals: usize) -> Self {
        NocConfig {
            topology,
            terminals,
            flit_bytes: 32,
            header_bytes: 16,
            link_bytes_per_sec: 1_000_000_000,
            router_latency: SimSpan::from_ns(2),
            input_buffer_flits: 4,
            express: true,
        }
    }

    /// Sets the per-link bandwidth.
    #[must_use]
    pub fn with_link_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.link_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Sets the per-link bandwidth so the topology's bisection bandwidth
    /// equals `bytes_per_sec` (the Fig 13 normalization).
    #[must_use]
    pub fn with_bisection_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.link_bytes_per_sec =
            self.topology.link_bw_for_bisection(self.terminals, bytes_per_sec);
        self
    }

    /// Sets the input buffer depth in flits.
    #[must_use]
    pub fn with_input_buffer_flits(mut self, flits: usize) -> Self {
        self.input_buffer_flits = flits;
        self
    }

    /// Sets the flit size.
    #[must_use]
    pub fn with_flit_bytes(mut self, bytes: u32) -> Self {
        self.flit_bytes = bytes;
        self
    }

    /// Sets the per-hop router latency.
    #[must_use]
    pub fn with_router_latency(mut self, latency: SimSpan) -> Self {
        self.router_latency = latency;
        self
    }

    /// Enables or disables the contention-free express path.
    #[must_use]
    pub fn with_express(mut self, on: bool) -> Self {
        self.express = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_toward_destination() {
        let t = Topology::build(TopologyKind::Mesh1D, 8);
        assert_eq!(t.route(3, 3), 0);
        assert_eq!(t.route(3, 0), 1);
        assert_eq!(t.route(3, 7), 2);
    }

    #[test]
    fn ring_takes_shortest_direction() {
        let t = Topology::build(TopologyKind::Ring, 8);
        assert_eq!(t.route(0, 1), 2); // 1 hop right vs 7 left
        assert_eq!(t.route(0, 7), 1); // 1 hop left vs 7 right
        assert_eq!(t.route(0, 4), 2); // tie -> right
    }

    #[test]
    fn crossbar_goes_through_hub() {
        let t = Topology::build(TopologyKind::Crossbar, 8);
        assert_eq!(t.nodes(), 9);
        assert_eq!(t.route(2, 5), 1); // leaf uplink
        assert_eq!(t.route(8, 5), 5); // hub down-port
        assert_eq!(t.route(2, 2), 0); // self
    }

    #[test]
    fn ports_are_wired_symmetrically() {
        for kind in [TopologyKind::Mesh1D, TopologyKind::Ring, TopologyKind::Crossbar] {
            let t = Topology::build(kind, 8);
            for n in 0..t.nodes() {
                for p in 0..t.ports(n) {
                    if let PortLink::Link { peer, peer_in } = t.output(n, p) {
                        // The peer's output on that same port index must
                        // come back to us (mesh/ring) or be a valid port
                        // (star).
                        assert!(peer < t.nodes());
                        assert!(peer_in < t.ports(peer), "{kind:?} {n}:{p}");
                    }
                }
            }
        }
    }

    #[test]
    fn hop_counts() {
        let mesh = Topology::build(TopologyKind::Mesh1D, 8);
        assert_eq!(mesh.hops(0, 7), 7);
        assert_eq!(mesh.hops(4, 4), 0);
        let ring = Topology::build(TopologyKind::Ring, 8);
        assert_eq!(ring.hops(0, 7), 1);
        assert_eq!(ring.hops(0, 4), 4);
        let xbar = Topology::build(TopologyKind::Crossbar, 8);
        assert_eq!(xbar.hops(0, 7), 2);
    }

    #[test]
    fn bisection_normalization() {
        // 2 GB/s bisection over 8 terminals.
        let b = 2_000_000_000u64;
        assert_eq!(TopologyKind::Mesh1D.link_bw_for_bisection(8, b), b / 2);
        assert_eq!(TopologyKind::Ring.link_bw_for_bisection(8, b), b / 4);
        assert_eq!(TopologyKind::Crossbar.link_bw_for_bisection(8, b), b / 8);
    }

    #[test]
    fn routes_follow_links_to_destination() {
        // Walking the route from every src to every dst terminates at dst.
        for kind in [TopologyKind::Mesh1D, TopologyKind::Ring, TopologyKind::Crossbar] {
            let t = Topology::build(kind, 8);
            for src in 0..t.terminals() {
                for dst in 0..t.terminals() {
                    let mut at = src;
                    let mut hops = 0;
                    loop {
                        let port = t.route(at, dst);
                        match t.output(at, port) {
                            PortLink::Local => break,
                            PortLink::Link { peer, .. } => {
                                at = peer;
                                hops += 1;
                                assert!(hops <= t.nodes(), "{kind:?} loop {src}->{dst}");
                            }
                        }
                    }
                    assert_eq!(at, dst, "{kind:?} route {src}->{dst}");
                    assert_eq!(hops, t.hops(src, dst), "{kind:?} hops {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn mesh2d_routes_xy() {
        // 4x2 grid: nodes 0..3 on row 0, 4..7 on row 1.
        let t = Topology::build(TopologyKind::Mesh2D { cols: 4 }, 8);
        assert_eq!(t.route(0, 3), 2); // +x first
        assert_eq!(t.route(3, 0), 1);
        assert_eq!(t.route(0, 4), 4); // same column -> +y
        assert_eq!(t.route(5, 1), 3);
        assert_eq!(t.route(0, 7), 2); // X before Y
        assert_eq!(t.hops(0, 7), 4);
        assert_eq!(t.hops(0, 5), 2);
    }

    #[test]
    fn mesh2d_routes_terminate_everywhere() {
        let t = Topology::build(TopologyKind::Mesh2D { cols: 4 }, 8);
        for src in 0..8 {
            for dst in 0..8 {
                let mut at = src;
                let mut hops = 0;
                loop {
                    match t.output(at, t.route(at, dst)) {
                        PortLink::Local => break,
                        PortLink::Link { peer, .. } => {
                            at = peer;
                            hops += 1;
                            assert!(hops <= 16, "loop {src}->{dst}");
                        }
                    }
                }
                assert_eq!(at, dst);
                assert_eq!(hops, t.hops(src, dst));
            }
        }
    }

    #[test]
    fn mesh2d_bisection() {
        // 4x2: cut across the 4-column dimension -> 2 rows x 2 dirs = 4.
        assert_eq!(TopologyKind::Mesh2D { cols: 4 }.bisection_channels(8), 4);
        // 4x4: 8 channels.
        assert_eq!(TopologyKind::Mesh2D { cols: 4 }.bisection_channels(16), 8);
    }

    #[test]
    #[should_panic(expected = "fill the 2-D mesh")]
    fn mesh2d_ragged_grid_rejected() {
        let _ = Topology::build(TopologyKind::Mesh2D { cols: 3 }, 8);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_topology_rejected() {
        let _ = Topology::build(TopologyKind::Mesh1D, 1);
    }

    #[test]
    #[should_panic(expected = "not a terminal")]
    fn routing_to_hub_rejected() {
        let t = Topology::build(TopologyKind::Crossbar, 4);
        let _ = t.route(0, 4);
    }
}
