//! Region partitioning of the fNoC for sharded execution.
//!
//! A sharded simulator runs each fNoC *region* — a contiguous block of
//! routers — on its own event-queue shard. Two quantities matter:
//!
//! * the **region map**: which shard owns a router's events, and
//! * the **minimum cross-region latency**: the earliest a flit processed
//!   at one region's router can influence a neighbouring region. A flit
//!   must serialize onto the inter-region link (`flit_bytes` at the link
//!   bandwidth) and traverse the downstream router pipeline before its
//!   effect is visible, so that sum lower-bounds every cross-region
//!   event dependency — the *lookahead* of a conservative parallel
//!   schedule (see `dssd_kernel::shard`).

use dssd_kernel::SimSpan;

use crate::topology::{NocConfig, TopologyKind};

/// A contiguous partition of fNoC routers into shard regions.
///
/// # Example
///
/// ```
/// use dssd_noc::{NocConfig, RegionMap, TopologyKind};
///
/// let cfg = NocConfig::new(TopologyKind::Mesh1D, 8);
/// let map = RegionMap::new(&cfg, 2);
/// assert_eq!(map.regions(), 2);
/// assert_eq!(map.region_of(0), 0);
/// assert_eq!(map.region_of(7), 1);
/// assert!(!map.min_cross_latency(&cfg).is_zero());
/// ```
#[derive(Debug, Clone)]
pub struct RegionMap {
    regions: usize,
    node_region: Vec<usize>,
}

impl RegionMap {
    /// Partitions `config`'s routers into at most `regions` contiguous
    /// blocks (clamped to the terminal count, floor 1). Contiguity
    /// matters for the 1-D mesh — the paper's floorplan — because only
    /// block boundaries carry cross-region links, keeping cross-shard
    /// traffic at `regions - 1` cut points. The crossbar's hub switch is
    /// shared by construction; it joins region 0.
    #[must_use]
    pub fn new(config: &NocConfig, regions: usize) -> Self {
        let regions = regions.clamp(1, config.terminals.max(1));
        let chunk = config.terminals.div_ceil(regions).max(1);
        let mut node_region: Vec<usize> = (0..config.terminals)
            .map(|n| (n / chunk).min(regions - 1))
            .collect();
        if matches!(config.topology, TopologyKind::Crossbar) {
            node_region.push(0); // the hub node, appended after terminals
        }
        RegionMap { regions, node_region }
    }

    /// Number of regions actually formed.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The region owning `node` (terminals and any internal switch).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the mapped topology.
    #[must_use]
    pub fn region_of(&self, node: usize) -> usize {
        self.node_region[node]
    }

    /// The time a single flit needs to serialize onto one link.
    #[must_use]
    pub fn flit_serialization(config: &NocConfig) -> SimSpan {
        SimSpan::for_transfer(u64::from(config.flit_bytes), config.link_bytes_per_sec)
    }

    /// The minimum latency for any event at one region to affect another:
    /// one flit serialization on the boundary link plus the downstream
    /// router pipeline. Always positive (serialization rounds up to a
    /// whole nanosecond), so it is a valid conservative lookahead.
    #[must_use]
    pub fn min_cross_latency(&self, config: &NocConfig) -> SimSpan {
        Self::flit_serialization(config) + config.router_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssd_kernel::SimSpan;

    #[test]
    fn partitions_are_contiguous_and_cover_all_nodes() {
        for terminals in [2, 7, 8, 16, 64] {
            for regions in [1, 2, 3, 8, 100] {
                let cfg = NocConfig::new(TopologyKind::Mesh1D, terminals);
                let map = RegionMap::new(&cfg, regions);
                assert!(map.regions() >= 1 && map.regions() <= terminals.max(1));
                let mut last = 0;
                for n in 0..terminals {
                    let r = map.region_of(n);
                    assert!(r < map.regions());
                    assert!(r >= last, "regions must be contiguous");
                    assert!(r <= last + 1, "regions must not skip");
                    last = r;
                }
                assert_eq!(last, map.regions() - 1, "every region is used");
            }
        }
    }

    #[test]
    fn crossbar_hub_belongs_to_region_zero() {
        let cfg = NocConfig::new(TopologyKind::Crossbar, 8);
        let map = RegionMap::new(&cfg, 4);
        // Node index `terminals` is the hub.
        assert_eq!(map.region_of(8), 0);
    }

    #[test]
    fn lookahead_matches_hand_computation() {
        // 32 B flit at 1 GB/s = 32 ns, plus the 2 ns router pipeline.
        let cfg = NocConfig::new(TopologyKind::Mesh1D, 8);
        let map = RegionMap::new(&cfg, 2);
        assert_eq!(RegionMap::flit_serialization(&cfg), SimSpan::from_ns(32));
        assert_eq!(map.min_cross_latency(&cfg), SimSpan::from_ns(34));
    }

    #[test]
    fn lookahead_is_positive_even_at_extreme_bandwidth() {
        let cfg = NocConfig::new(TopologyKind::Mesh1D, 8)
            .with_link_bandwidth(u64::MAX)
            .with_router_latency(SimSpan::ZERO);
        let map = RegionMap::new(&cfg, 2);
        assert!(!map.min_cross_latency(&cfg).is_zero());
    }
}
