//! Packets and flits.

use dssd_kernel::SimTime;

/// Unique identifier of a packet within one [`Network`](crate::Network).
pub type PacketId = u64;

/// A message to move across the fNoC.
///
/// In the dSSD a packet is one page (plus command/header information) of a
/// global copyback: the paper's Fig 4 step ⑤ "packetization" appends the
/// command information and packet header to the page data.
///
/// # Example
///
/// ```
/// use dssd_noc::Packet;
/// let p = Packet::new(1, 0, 5, 4096).with_tag(42);
/// assert_eq!(p.bytes, 4096);
/// assert_eq!(p.tag, 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique packet id (assigned by the caller; must be unique per network).
    pub id: PacketId,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Payload bytes (header bytes are added by the network config).
    pub bytes: u64,
    /// Caller-defined correlation tag (e.g. the copyback job id).
    pub tag: u64,
}

impl Packet {
    /// Creates a packet with a zero tag.
    #[must_use]
    pub fn new(id: PacketId, src: usize, dst: usize, bytes: u64) -> Self {
        Packet { id, src, dst, bytes, tag: 0 }
    }

    /// Sets the correlation tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit; carries the route.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; releases the wormhole locks.
    Tail,
    /// A single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    #[must_use]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    #[must_use]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit traversing the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Destination node (replicated so every flit can be validated).
    /// Narrow on purpose: flits flow through the event queue by value,
    /// so their size is hot-path memory traffic.
    pub dst: u32,
    /// Head/body/tail position.
    pub kind: FlitKind,
}

/// Per-packet bookkeeping held by the network while a packet is in flight.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PacketState {
    pub(crate) packet: Packet,
    pub(crate) injected_at: SimTime,
    pub(crate) flits_remaining: u32,
    pub(crate) hops: u32,
}

/// Splits a packet into `n` flits given flit and header sizes.
#[must_use]
pub(crate) fn flit_count(payload_bytes: u64, header_bytes: u32, flit_bytes: u32) -> u32 {
    let total = payload_bytes + header_bytes as u64;
    (total.div_ceil(flit_bytes as u64)).max(1) as u32
}

/// The kind of the `i`-th flit out of `n`.
#[must_use]
pub(crate) fn flit_kind(i: u32, n: u32) -> FlitKind {
    match (i, n) {
        (0, 1) => FlitKind::HeadTail,
        (0, _) => FlitKind::Head,
        (i, n) if i + 1 == n => FlitKind::Tail,
        _ => FlitKind::Body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_rounds_up() {
        assert_eq!(flit_count(4096, 16, 32), (4096u32 + 16).div_ceil(32));
        assert_eq!(flit_count(0, 16, 32), 1);
        assert_eq!(flit_count(32, 0, 32), 1);
        assert_eq!(flit_count(33, 0, 32), 2);
    }

    #[test]
    fn flit_kinds_cover_packet() {
        assert_eq!(flit_kind(0, 1), FlitKind::HeadTail);
        assert_eq!(flit_kind(0, 3), FlitKind::Head);
        assert_eq!(flit_kind(1, 3), FlitKind::Body);
        assert_eq!(flit_kind(2, 3), FlitKind::Tail);
    }

    #[test]
    fn head_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(FlitKind::HeadTail.is_head());
        assert!(FlitKind::HeadTail.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Head.is_tail());
    }

    #[test]
    fn packet_builder() {
        let p = Packet::new(9, 1, 2, 100).with_tag(7);
        assert_eq!(p.id, 9);
        assert_eq!(p.src, 1);
        assert_eq!(p.dst, 2);
        assert_eq!(p.tag, 7);
    }
}
